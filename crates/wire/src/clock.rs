//! Exporter clock vetting: the collector never trusts a wire timestamp.
//!
//! NetFlow/IPFIX headers carry three clock claims — a sysuptime (u32
//! milliseconds since exporter boot, wrapping every ~49.7 days), an export
//! wall-clock time, and per-record first/last-switched uptimes. All three
//! are attacker-controlled bytes, and even honest exporters drift, step,
//! and wrap. The rules here are:
//!
//! * the **collector's receive time is authoritative** — a header export
//!   time is accepted as the datagram's event time only when it is
//!   plausible (not in the future beyond [`FUTURE_SLACK_SECS`], not
//!   running backwards against the same stream's previous claim);
//! * an implausible claim is a **soft** defect, never fatal: the datagram
//!   still decodes, its event time is clamped to the receive time, and the
//!   lie is counted under exactly one [`ClockLie`] bucket;
//! * a **zero** time field is the long-standing "not set" convention and
//!   is treated as absent — no lie, event time falls back to receive time;
//! * per-record durations use [`uptime_delta_ms`], which is wrap-aware: a
//!   flow straddling the 2^32 ms sysuptime wrap has a small, correct
//!   delta, while a genuinely backwards pair shows up as an implausibly
//!   huge one and is booked [`ClockLie::ImplausibleDuration`].

/// Ways an exporter's clock claims can lie. Disjoint from
/// [`RejectReason`](crate::RejectReason): clock lies are always soft (the
/// datagram decodes; only its timestamps are distrusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClockLie {
    /// Export time ahead of the collector's clock beyond the slack.
    FutureExport,
    /// Export time behind the same stream's previous claim.
    BackwardsExport,
    /// Sysuptime frozen across [`FROZEN_RUN`]+ datagrams while export
    /// continues — the exporter's tick source is dead.
    FrozenSysuptime,
    /// A record's wrap-aware first→last switched delta exceeds
    /// [`MAX_FLOW_DURATION_MS`] (usually last < first without a wrap).
    ImplausibleDuration,
}

/// Number of distinct clock-lie kinds; sizes per-kind counter arrays.
pub const CLOCK_LIE_COUNT: usize = 4;

/// Every clock-lie kind, in `index()` order.
pub const ALL_CLOCK_LIES: [ClockLie; CLOCK_LIE_COUNT] = [
    ClockLie::FutureExport,
    ClockLie::BackwardsExport,
    ClockLie::FrozenSysuptime,
    ClockLie::ImplausibleDuration,
];

impl ClockLie {
    /// Stable dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            ClockLie::FutureExport => 0,
            ClockLie::BackwardsExport => 1,
            ClockLie::FrozenSysuptime => 2,
            ClockLie::ImplausibleDuration => 3,
        }
    }

    /// Human-readable label for printed counters and scrape lines.
    pub fn as_str(self) -> &'static str {
        match self {
            ClockLie::FutureExport => "future-export",
            ClockLie::BackwardsExport => "backwards-export",
            ClockLie::FrozenSysuptime => "frozen-sysuptime",
            ClockLie::ImplausibleDuration => "implausible-duration",
        }
    }
}

impl core::fmt::Display for ClockLie {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Export times this far ahead of the collector clock are still plausible
/// (clock granularity is whole seconds, so one second of skew is noise).
pub const FUTURE_SLACK_SECS: u64 = 1;

/// Consecutive identical nonzero sysuptimes before the stream's tick
/// source is declared frozen.
pub const FROZEN_RUN: u32 = 3;

/// Longest believable single-flow duration. Routers expire flows after
/// minutes; an hour-plus delta means the first/last pair is garbage, not
/// a long flow.
pub const MAX_FLOW_DURATION_MS: u32 = 3_600_000;

/// Wrap-aware sysuptime delta: milliseconds from `first` to `last` on the
/// u32 millisecond clock. A flow straddling the ~49.7-day wrap (`first`
/// near `u32::MAX`, `last` small) yields the small true delta; a
/// genuinely backwards pair yields a huge one the caller rejects via
/// [`MAX_FLOW_DURATION_MS`].
pub fn uptime_delta_ms(first: u32, last: u32) -> u32 {
    last.wrapping_sub(first)
}

/// Per-stream clock-vetting state. Bounded exactly like sequence
/// tracking: it lives in the session's LRU-evicted stream map.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockState {
    /// Last accepted nonzero export time (seconds).
    pub last_export_secs: u32,
    /// Last seen nonzero sysuptime (ms).
    pub last_sysuptime_ms: u32,
    /// Consecutive datagrams with an identical nonzero sysuptime.
    pub frozen_run: u32,
}

/// The verdict on one datagram's clock claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockVerdict {
    /// The authoritative event time for the datagram's records, ns: the
    /// exporter's export time when plausible, else the receive time.
    pub event_time_ns: u64,
    /// Lies found, by [`ClockLie::index`].
    pub lies: [u64; CLOCK_LIE_COUNT],
    /// 1 if the export time was present but distrusted (clamped to the
    /// receive time).
    pub clamped: u64,
}

impl ClockState {
    /// Vet one datagram's header clock claims against this stream's
    /// history and the collector's receive time. `export_secs` and
    /// `sysuptime_ms` are 0 when the wire did not carry them.
    pub fn vet(&mut self, export_secs: u32, sysuptime_ms: u32, now_ns: u64) -> ClockVerdict {
        let mut v = ClockVerdict { event_time_ns: now_ns, ..Default::default() };
        if export_secs != 0 {
            let export_ns = u64::from(export_secs).saturating_mul(1_000_000_000);
            let now_secs = now_ns / 1_000_000_000;
            if u64::from(export_secs) > now_secs + FUTURE_SLACK_SECS {
                v.lies[ClockLie::FutureExport.index()] += 1;
                v.clamped = 1;
            } else if self.last_export_secs != 0 && export_secs < self.last_export_secs {
                v.lies[ClockLie::BackwardsExport.index()] += 1;
                v.clamped = 1;
            } else {
                v.event_time_ns = export_ns;
            }
            // The stream's history advances even past a lie: a backwards
            // step is booked once, not once per subsequent datagram.
            self.last_export_secs = self.last_export_secs.max(export_secs);
        }
        if sysuptime_ms != 0 {
            if sysuptime_ms == self.last_sysuptime_ms {
                self.frozen_run = self.frozen_run.saturating_add(1);
                if self.frozen_run >= FROZEN_RUN {
                    v.lies[ClockLie::FrozenSysuptime.index()] += 1;
                }
            } else {
                self.frozen_run = 0;
            }
            self.last_sysuptime_ms = sysuptime_ms;
        }
        v
    }

    /// Vet one record's first/last-switched pair; returns the wrap-aware
    /// duration if believable, `None` (and books the lie in `lies`) if
    /// not. Zero pairs are absent: no duration, no lie.
    pub fn vet_record(
        first_ms: u32,
        last_ms: u32,
        lies: &mut [u64; CLOCK_LIE_COUNT],
    ) -> Option<u32> {
        if first_ms == 0 && last_ms == 0 {
            return None;
        }
        let delta = uptime_delta_ms(first_ms, last_ms);
        if delta > MAX_FLOW_DURATION_MS {
            lies[ClockLie::ImplausibleDuration.index()] += 1;
            return None;
        }
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lie_indices_are_dense_and_labels_unique() {
        for (i, l) in ALL_CLOCK_LIES.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        for a in ALL_CLOCK_LIES {
            for b in ALL_CLOCK_LIES {
                if a != b {
                    assert_ne!(a.as_str(), b.as_str());
                }
            }
        }
    }

    #[test]
    fn wrap_straddling_delta_is_small_and_correct() {
        // Flow started 100ms before the 2^32 ms wrap, ended 250ms after.
        let first = u32::MAX - 99;
        let last = 250;
        assert_eq!(uptime_delta_ms(first, last), 350);
        // A plain forward pair is the plain difference.
        assert_eq!(uptime_delta_ms(1_000, 4_500), 3_500);
    }

    #[test]
    fn backwards_pair_reads_as_implausible() {
        let mut lies = [0u64; CLOCK_LIE_COUNT];
        // last < first with no wrap in range: delta ≈ u32::MAX.
        assert_eq!(ClockState::vet_record(5_000, 4_000, &mut lies), None);
        assert_eq!(lies[ClockLie::ImplausibleDuration.index()], 1);
        // Zero pair is absent, not a lie.
        assert_eq!(ClockState::vet_record(0, 0, &mut lies), None);
        assert_eq!(lies[ClockLie::ImplausibleDuration.index()], 1);
    }

    #[test]
    fn absent_export_time_falls_back_to_receive_time() {
        let mut st = ClockState::default();
        let v = st.vet(0, 0, 7_000_000_000);
        assert_eq!(v.event_time_ns, 7_000_000_000);
        assert_eq!(v.lies, [0; CLOCK_LIE_COUNT]);
        assert_eq!(v.clamped, 0);
    }

    #[test]
    fn plausible_export_time_is_trusted() {
        let mut st = ClockState::default();
        // now = 100s; exporter claims 99s — fine.
        let v = st.vet(99, 0, 100_000_000_000);
        assert_eq!(v.event_time_ns, 99_000_000_000);
        assert_eq!(v.clamped, 0);
    }

    #[test]
    fn future_export_clamps_to_receive_time() {
        let mut st = ClockState::default();
        let v = st.vet(1_000, 0, 100_000_000_000);
        assert_eq!(v.event_time_ns, 100_000_000_000, "clamped");
        assert_eq!(v.lies[ClockLie::FutureExport.index()], 1);
        assert_eq!(v.clamped, 1);
    }

    #[test]
    fn backwards_export_clamps_and_books_once() {
        let mut st = ClockState::default();
        st.vet(90, 0, 100_000_000_000);
        let v = st.vet(50, 0, 101_000_000_000);
        assert_eq!(v.lies[ClockLie::BackwardsExport.index()], 1);
        assert_eq!(v.event_time_ns, 101_000_000_000);
        // History held at the high-water mark: the next honest claim at
        // 91s is forward again, not a second backwards lie.
        let v = st.vet(91, 0, 102_000_000_000);
        assert_eq!(v.lies, [0; CLOCK_LIE_COUNT]);
        assert_eq!(v.event_time_ns, 91_000_000_000);
    }

    #[test]
    fn frozen_sysuptime_needs_a_run() {
        let mut st = ClockState::default();
        let mut total = 0u64;
        for i in 0..6u64 {
            let v = st.vet(0, 555, (i + 1) * 1_000_000_000);
            total += v.lies[ClockLie::FrozenSysuptime.index()];
        }
        // Runs 3,4,5 flag (first sight + 2 repeats reach the threshold).
        assert_eq!(total, 3);
        // A moving sysuptime resets the run.
        let v = st.vet(0, 556, 7_000_000_000);
        assert_eq!(v.lies[ClockLie::FrozenSysuptime.index()], 0);
    }
}
