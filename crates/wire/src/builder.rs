//! Well-formed datagram encoders — the reference exporters the golden
//! corpus, the fuzz harness (as mutation seeds), the hostile-exporter
//! model, and the ingest bench all build on.
//!
//! Every builder also exposes an escape hatch (`raw_*`, `*_with_count`,
//! `*_with_length`) so tests can construct *almost*-valid datagrams: the
//! hostile exporter lies precisely where real exporters lie.

use crate::fields::encode_record;
use crate::template::TemplateField;
use crate::translate::FlowSample;
use crate::v5::{V5_HEADER_LEN, V5_MAX_RECORDS, V5_RECORD_LEN};
use crate::v9::V9_HEADER_LEN;

fn push16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Encode a NetFlow v5 datagram; at most [`V5_MAX_RECORDS`] samples are
/// taken.
pub fn v5_datagram(
    flow_sequence: u32,
    engine_type: u8,
    engine_id: u8,
    samples: &[FlowSample],
) -> Vec<u8> {
    let n = samples.len().min(V5_MAX_RECORDS) as u16;
    v5_datagram_with_count(flow_sequence, engine_type, engine_id, samples, n)
}

/// Encode a v5 datagram with an arbitrary (possibly lying) header count.
pub fn v5_datagram_with_count(
    flow_sequence: u32,
    engine_type: u8,
    engine_id: u8,
    samples: &[FlowSample],
    count: u16,
) -> Vec<u8> {
    v5_datagram_with_times(flow_sequence, engine_type, engine_id, samples, count, 0, 0)
}

/// Encode a v5 datagram with explicit header clock claims (and an
/// arbitrary count). The zero-time builders above delegate here, so a
/// zero-clock datagram is byte-identical to the historical encoding.
#[allow(clippy::too_many_arguments)]
pub fn v5_datagram_with_times(
    flow_sequence: u32,
    engine_type: u8,
    engine_id: u8,
    samples: &[FlowSample],
    count: u16,
    sys_uptime: u32,
    unix_secs: u32,
) -> Vec<u8> {
    let taken = samples.len().min(V5_MAX_RECORDS);
    let mut out = Vec::with_capacity(V5_HEADER_LEN + taken * V5_RECORD_LEN);
    push16(&mut out, 5);
    push16(&mut out, count);
    push32(&mut out, sys_uptime);
    push32(&mut out, unix_secs);
    push32(&mut out, 0); // unix_nsecs
    push32(&mut out, flow_sequence);
    out.push(engine_type);
    out.push(engine_id);
    push16(&mut out, 0); // sampling interval
    for s in &samples[..taken] {
        let mut rec = [0u8; V5_RECORD_LEN];
        rec[0..4].copy_from_slice(&s.flow.src.octets());
        rec[4..8].copy_from_slice(&s.flow.dst.octets());
        // 8..12 nexthop = 0
        rec[12..14].copy_from_slice(&s.in_port.to_be_bytes());
        rec[14..16].copy_from_slice(&s.out_port.to_be_bytes());
        rec[16..20].copy_from_slice(&(s.packets.min(u32::MAX as u64) as u32).to_be_bytes());
        rec[20..24].copy_from_slice(&(s.bytes.min(u32::MAX as u64) as u32).to_be_bytes());
        rec[24..28].copy_from_slice(&s.first_ms.to_be_bytes());
        rec[28..32].copy_from_slice(&s.last_ms.to_be_bytes());
        rec[32..34].copy_from_slice(&s.flow.sport.to_be_bytes());
        rec[34..36].copy_from_slice(&s.flow.dport.to_be_bytes());
        rec[37] = s.tcp_flags;
        rec[38] = s.flow.proto.number();
        out.extend_from_slice(&rec);
    }
    out
}

/// Pad a set body to the 4-byte boundary both specs prescribe.
fn pad4(body: &mut Vec<u8>) {
    while !body.len().is_multiple_of(4) {
        body.push(0);
    }
}

/// Incremental NetFlow v9 datagram builder.
#[derive(Debug, Clone)]
pub struct V9Builder {
    source_id: u32,
    sequence: u32,
    sys_uptime: u32,
    unix_secs: u32,
    flowsets: Vec<Vec<u8>>,
    records: u16,
}

impl V9Builder {
    /// Start a datagram for one exporter source (header clocks zero —
    /// the historical "not set" encoding).
    pub fn new(source_id: u32, sequence: u32) -> Self {
        V9Builder {
            source_id,
            sequence,
            sys_uptime: 0,
            unix_secs: 0,
            flowsets: Vec::new(),
            records: 0,
        }
    }

    /// Set the header clock claims (sysuptime ms, export unix seconds).
    pub fn times(mut self, sys_uptime: u32, unix_secs: u32) -> Self {
        self.sys_uptime = sys_uptime;
        self.unix_secs = unix_secs;
        self
    }

    fn flowset(mut self, id: u16, mut body: Vec<u8>, records: u16) -> Self {
        pad4(&mut body);
        let mut fs = Vec::with_capacity(4 + body.len());
        push16(&mut fs, id);
        push16(&mut fs, (4 + body.len()) as u16);
        fs.extend_from_slice(&body);
        self.flowsets.push(fs);
        self.records = self.records.saturating_add(records);
        self
    }

    /// Append a flowset with an arbitrary id and raw body (counts as zero
    /// records — callers lying about counts use `build_with_count`).
    pub fn raw_flowset(self, id: u16, body: &[u8]) -> Self {
        self.flowset(id, body.to_vec(), 0)
    }

    /// Announce a template (flowset id 0).
    pub fn template(self, tid: u16, fields: &[TemplateField]) -> Self {
        let mut body = Vec::new();
        push16(&mut body, tid);
        push16(&mut body, fields.len() as u16);
        for f in fields {
            push16(&mut body, f.field_id);
            push16(&mut body, f.length);
        }
        self.flowset(0, body, 1)
    }

    /// Announce an options template (flowset id 1).
    pub fn options_template(
        self,
        tid: u16,
        scope: &[TemplateField],
        options: &[TemplateField],
    ) -> Self {
        let mut body = Vec::new();
        push16(&mut body, tid);
        push16(&mut body, (scope.len() * 4) as u16);
        push16(&mut body, (options.len() * 4) as u16);
        for f in scope.iter().chain(options) {
            push16(&mut body, f.field_id);
            push16(&mut body, f.length);
        }
        self.flowset(1, body, 1)
    }

    /// Append a data flowset from pre-encoded record bytes.
    pub fn data(self, tid: u16, rows: &[Vec<u8>]) -> Self {
        let n = rows.len() as u16;
        let mut body = Vec::new();
        for r in rows {
            body.extend_from_slice(r);
        }
        self.flowset(tid, body, n)
    }

    /// Append a data flowset of flow samples encoded under the base
    /// flow template ([`crate::fields::base_flow_fields`]).
    pub fn data_samples(self, tid: u16, samples: &[FlowSample]) -> Self {
        let fields = crate::fields::base_flow_fields();
        let rows: Vec<Vec<u8>> = samples.iter().map(|s| encode_record(&fields, s)).collect();
        self.data(tid, &rows)
    }

    /// Finish with the honest record count.
    pub fn build(self) -> Vec<u8> {
        let records = self.records;
        self.build_with_count(records)
    }

    /// Finish with an arbitrary (possibly lying) header count.
    pub fn build_with_count(self, count: u16) -> Vec<u8> {
        let body_len: usize = self.flowsets.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(V9_HEADER_LEN + body_len);
        push16(&mut out, 9);
        push16(&mut out, count);
        push32(&mut out, self.sys_uptime);
        push32(&mut out, self.unix_secs);
        push32(&mut out, self.sequence);
        push32(&mut out, self.source_id);
        for fs in &self.flowsets {
            out.extend_from_slice(fs);
        }
        out
    }
}

/// Incremental IPFIX message builder.
#[derive(Debug, Clone)]
pub struct IpfixBuilder {
    domain: u32,
    sequence: u32,
    export_time: u32,
    sets: Vec<Vec<u8>>,
}

impl IpfixBuilder {
    /// Start a message for one observation domain (export time zero —
    /// the historical "not set" encoding).
    pub fn new(domain: u32, sequence: u32) -> Self {
        IpfixBuilder { domain, sequence, export_time: 0, sets: Vec::new() }
    }

    /// Set the header export time (unix seconds).
    pub fn export_time(mut self, secs: u32) -> Self {
        self.export_time = secs;
        self
    }

    fn set(mut self, id: u16, mut body: Vec<u8>) -> Self {
        pad4(&mut body);
        let mut s = Vec::with_capacity(4 + body.len());
        push16(&mut s, id);
        push16(&mut s, (4 + body.len()) as u16);
        s.extend_from_slice(&body);
        self.sets.push(s);
        self
    }

    /// Append a set with an arbitrary id and raw body.
    pub fn raw_set(self, id: u16, body: &[u8]) -> Self {
        self.set(id, body.to_vec())
    }

    fn push_field_specs(body: &mut Vec<u8>, fields: &[TemplateField]) {
        for f in fields {
            match f.enterprise {
                Some(ent) => {
                    push16(body, f.field_id | 0x8000);
                    push16(body, f.length);
                    push32(body, ent);
                }
                None => {
                    push16(body, f.field_id);
                    push16(body, f.length);
                }
            }
        }
    }

    /// Announce a template (set id 2).
    pub fn template(self, tid: u16, fields: &[TemplateField]) -> Self {
        let mut body = Vec::new();
        push16(&mut body, tid);
        push16(&mut body, fields.len() as u16);
        Self::push_field_specs(&mut body, fields);
        self.set(2, body)
    }

    /// Announce an options template (set id 3): scope fields first.
    pub fn options_template(
        self,
        tid: u16,
        scope: &[TemplateField],
        options: &[TemplateField],
    ) -> Self {
        let mut body = Vec::new();
        push16(&mut body, tid);
        push16(&mut body, (scope.len() + options.len()) as u16);
        push16(&mut body, scope.len() as u16);
        let all: Vec<TemplateField> = scope.iter().chain(options).copied().collect();
        Self::push_field_specs(&mut body, &all);
        self.set(3, body)
    }

    /// Append a data set from pre-encoded record bytes.
    pub fn data(self, tid: u16, rows: &[Vec<u8>]) -> Self {
        let mut body = Vec::new();
        for r in rows {
            body.extend_from_slice(r);
        }
        self.set(tid, body)
    }

    /// Append a data set of flow samples encoded under the base flow
    /// template.
    pub fn data_samples(self, tid: u16, samples: &[FlowSample]) -> Self {
        let fields = crate::fields::base_flow_fields();
        let rows: Vec<Vec<u8>> = samples.iter().map(|s| encode_record(&fields, s)).collect();
        self.data(tid, &rows)
    }

    /// Finish with the honest message length.
    pub fn build(self) -> Vec<u8> {
        let len = 16 + self.sets.iter().map(Vec::len).sum::<usize>();
        self.build_with_length(len as u16)
    }

    /// Finish with an arbitrary (possibly lying) message length.
    pub fn build_with_length(self, length: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.sets.iter().map(Vec::len).sum::<usize>());
        push16(&mut out, 10);
        push16(&mut out, length);
        push32(&mut out, self.export_time);
        push32(&mut out, self.sequence);
        push32(&mut out, self.domain);
        for s in &self.sets {
            out.extend_from_slice(s);
        }
        out
    }
}
