//! Bounded, deterministic template store for NetFlow v9 / IPFIX decoding.
//!
//! Template-based protocols hand the *exporter* control over decoder state:
//! every template record asks the collector to remember a layout. A hostile
//! exporter can therefore try to grow our memory without limit — distinct
//! template ids, distinct observation domains, giant field lists. This cache
//! caps every axis:
//!
//! * at most [`TemplateCacheConfig::max_templates`] templates per
//!   observation domain (LRU-evicted, like the vector/zensight collectors);
//! * at most [`TemplateCacheConfig::max_domains`] observation domains
//!   (whole-domain LRU eviction — the v9 `source_id` is a 32-bit
//!   attacker-controlled value, so domains must be bounded too);
//! * at most [`TemplateCacheConfig::max_fields`] fields and
//!   [`TemplateCacheConfig::max_record_len`] bytes per record per template;
//! * templates not referenced for
//!   [`TemplateCacheConfig::template_timeout_ns`] expire.
//!
//! Recency is a logical tick, not wall time, so eviction order is a pure
//! function of the operation sequence — the determinism harness relies on
//! this. Storage is `BTreeMap` for the same reason: iteration order never
//! depends on hasher seeds.

use std::collections::BTreeMap;

/// IPFIX "variable length" marker in a template field spec (RFC 7011 §7).
pub const VARLEN: u16 = 65535;

/// One field spec inside a template: what to decode and how wide it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateField {
    /// Information element id (v9 field type / IPFIX IE id, enterprise bit
    /// stripped).
    pub field_id: u16,
    /// Encoded length in bytes, or [`VARLEN`].
    pub length: u16,
    /// IPFIX enterprise number, if the enterprise bit was set.
    pub enterprise: Option<u32>,
}

impl TemplateField {
    /// A standard (non-enterprise) field.
    pub fn std(field_id: u16, length: u16) -> Self {
        TemplateField { field_id, length, enterprise: None }
    }

    /// True for IPFIX variable-length fields.
    pub fn is_varlen(&self) -> bool {
        self.length == VARLEN
    }
}

/// A decoded template: the record layout a data set with this id follows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id (must be >= 256; lower ids name set types).
    pub id: u16,
    /// Field specs in wire order (scope fields first for options
    /// templates).
    pub fields: Vec<TemplateField>,
    /// Number of leading scope fields; > 0 marks an options template,
    /// whose data records are exporter metadata, not flow records.
    pub scope_fields: u16,
    /// When this template was installed or last refreshed (caller clock).
    installed_ns: u64,
    /// Logical recency tick for LRU eviction.
    touch: u64,
}

impl Template {
    /// Build a template (not yet installed anywhere).
    pub fn new(id: u16, fields: Vec<TemplateField>, scope_fields: u16) -> Self {
        Template { id, fields, scope_fields, installed_ns: 0, touch: 0 }
    }

    /// True if data records under this template are option records.
    pub fn is_options(&self) -> bool {
        self.scope_fields > 0
    }

    /// Total record length if every field is fixed-width, else `None`.
    pub fn fixed_record_len(&self) -> Option<usize> {
        let mut total = 0usize;
        for f in &self.fields {
            if f.is_varlen() {
                return None;
            }
            total += f.length as usize;
        }
        Some(total)
    }

    /// Smallest number of bytes any record under this template can occupy
    /// (varlen fields cost at least their 1-byte length prefix).
    pub fn min_record_len(&self) -> usize {
        self.fields.iter().map(|f| if f.is_varlen() { 1 } else { f.length as usize }).sum()
    }
}

/// Bounds on template-cache growth. Defaults follow the vector NetFlow
/// source exemplar (SNIPPETS.md): 1000 templates per observation domain,
/// 1-hour template timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateCacheConfig {
    /// Maximum templates kept per observation domain (LRU beyond this).
    pub max_templates: usize,
    /// Maximum observation domains tracked (whole-domain LRU beyond this).
    pub max_domains: usize,
    /// Nanoseconds since last reference after which a template expires;
    /// 0 disables expiry.
    pub template_timeout_ns: u64,
    /// Maximum fields per template; templates claiming more are rejected.
    pub max_fields: usize,
    /// Maximum fixed record length in bytes; templates describing longer
    /// records are rejected.
    pub max_record_len: usize,
}

impl Default for TemplateCacheConfig {
    fn default() -> Self {
        TemplateCacheConfig {
            max_templates: 1000,
            max_domains: 64,
            template_timeout_ns: 3_600_000_000_000,
            max_fields: 128,
            max_record_len: 2048,
        }
    }
}

/// Cache activity counters; all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// New templates accepted.
    pub installed: u64,
    /// Re-announcements of an id already cached (refreshes its clock).
    pub refreshed: u64,
    /// Templates evicted to stay under `max_templates`.
    pub evicted_lru: u64,
    /// Whole domains evicted to stay under `max_domains`.
    pub evicted_domains: u64,
    /// Templates dropped because they outlived `template_timeout_ns`.
    pub expired: u64,
    /// Template announcements refused by the validity bounds.
    pub rejected: u64,
}

/// What [`TemplateCache::install`] did with an announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallOutcome {
    /// New template accepted.
    Installed,
    /// Existing id re-announced; definition and clock refreshed.
    Refreshed,
    /// Announcement violated the validity bounds and was refused.
    Rejected,
}

#[derive(Debug, Default)]
struct Domain {
    templates: BTreeMap<u16, Template>,
    touch: u64,
}

/// The bounded per-observation-domain template store.
#[derive(Debug)]
pub struct TemplateCache {
    cfg: TemplateCacheConfig,
    domains: BTreeMap<u32, Domain>,
    tick: u64,
    stats: TemplateCacheStats,
}

impl TemplateCache {
    /// Empty cache with the given bounds.
    pub fn new(cfg: TemplateCacheConfig) -> Self {
        TemplateCache {
            cfg,
            domains: BTreeMap::new(),
            tick: 0,
            stats: TemplateCacheStats::default(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> &TemplateCacheConfig {
        &self.cfg
    }

    /// Activity counters.
    pub fn stats(&self) -> &TemplateCacheStats {
        &self.stats
    }

    /// Validity check for an announced template, against the configured
    /// bounds. Rejection reasons are structural — nothing here depends on
    /// cache occupancy.
    fn valid(&self, tpl: &Template) -> bool {
        if tpl.id < 256 {
            return false;
        }
        if tpl.fields.is_empty() || tpl.fields.len() > self.cfg.max_fields {
            return false;
        }
        if (tpl.scope_fields as usize) > tpl.fields.len() {
            return false;
        }
        for f in &tpl.fields {
            if !f.is_varlen() && (f.length == 0 || f.length as usize > self.cfg.max_record_len) {
                return false;
            }
        }
        if let Some(len) = tpl.fixed_record_len() {
            if len == 0 || len > self.cfg.max_record_len {
                return false;
            }
        } else if tpl.min_record_len() > self.cfg.max_record_len {
            return false;
        }
        true
    }

    /// Install or refresh a template announcement for `domain`.
    pub fn install(&mut self, domain: u32, mut tpl: Template, now_ns: u64) -> InstallOutcome {
        if !self.valid(&tpl) {
            self.stats.rejected += 1;
            return InstallOutcome::Rejected;
        }
        self.tick += 1;
        tpl.installed_ns = now_ns;
        tpl.touch = self.tick;

        if !self.domains.contains_key(&domain) && self.domains.len() >= self.cfg.max_domains {
            // Evict the least recently touched whole domain.
            if let Some((&victim, _)) = self.domains.iter().min_by_key(|(id, d)| (d.touch, **id)) {
                self.domains.remove(&victim);
                self.stats.evicted_domains += 1;
            }
        }
        let tick = self.tick;
        let max_templates = self.cfg.max_templates.max(1);
        let dom = self.domains.entry(domain).or_default();
        dom.touch = tick;

        let refreshed = dom.templates.contains_key(&tpl.id);
        if !refreshed && dom.templates.len() >= max_templates {
            // Evict the least recently touched template in this domain.
            if let Some((&victim, _)) = dom.templates.iter().min_by_key(|(id, t)| (t.touch, **id)) {
                dom.templates.remove(&victim);
                self.stats.evicted_lru += 1;
            }
        }
        dom.templates.insert(tpl.id, tpl);
        if refreshed {
            self.stats.refreshed += 1;
            InstallOutcome::Refreshed
        } else {
            self.stats.installed += 1;
            InstallOutcome::Installed
        }
    }

    /// Look up a template, touching its recency and enforcing expiry.
    pub fn get(&mut self, domain: u32, id: u16, now_ns: u64) -> Option<&Template> {
        self.tick += 1;
        let tick = self.tick;
        let timeout = self.cfg.template_timeout_ns;
        let dom = self.domains.get_mut(&domain)?;
        let stale = match dom.templates.get(&id) {
            None => return None,
            Some(t) => timeout > 0 && now_ns.saturating_sub(t.installed_ns) > timeout,
        };
        if stale {
            dom.templates.remove(&id);
            self.stats.expired += 1;
            return None;
        }
        dom.touch = tick;
        let t = dom.templates.get_mut(&id).expect("checked above");
        t.touch = tick;
        Some(&*t)
    }

    /// Drop every template that outlived the timeout; returns how many.
    pub fn sweep(&mut self, now_ns: u64) -> u64 {
        let timeout = self.cfg.template_timeout_ns;
        if timeout == 0 {
            return 0;
        }
        let mut dropped = 0;
        for dom in self.domains.values_mut() {
            let before = dom.templates.len();
            dom.templates.retain(|_, t| now_ns.saturating_sub(t.installed_ns) <= timeout);
            dropped += (before - dom.templates.len()) as u64;
        }
        self.domains.retain(|_, d| !d.templates.is_empty());
        self.stats.expired += dropped;
        dropped
    }

    /// Templates currently cached for one domain.
    pub fn domain_len(&self, domain: u32) -> usize {
        self.domains.get(&domain).map_or(0, |d| d.templates.len())
    }

    /// Largest per-domain occupancy — the value the `max_templates` bound
    /// caps.
    pub fn max_domain_len(&self) -> usize {
        self.domains.values().map(|d| d.templates.len()).max().unwrap_or(0)
    }

    /// Number of observation domains tracked.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Templates cached across all domains.
    pub fn total_len(&self) -> usize {
        self.domains.values().map(|d| d.templates.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpl(id: u16) -> Template {
        Template::new(id, vec![TemplateField::std(8, 4), TemplateField::std(12, 4)], 0)
    }

    fn cache(max_templates: usize) -> TemplateCache {
        TemplateCache::new(TemplateCacheConfig { max_templates, ..Default::default() })
    }

    #[test]
    fn install_get_roundtrip() {
        let mut c = cache(10);
        assert_eq!(c.install(1, tpl(256), 0), InstallOutcome::Installed);
        let t = c.get(1, 256, 0).expect("installed");
        assert_eq!(t.fixed_record_len(), Some(8));
        assert!(c.get(1, 257, 0).is_none());
        assert!(c.get(2, 256, 0).is_none());
    }

    #[test]
    fn refresh_is_not_a_new_install() {
        let mut c = cache(10);
        c.install(1, tpl(256), 0);
        assert_eq!(c.install(1, tpl(256), 5), InstallOutcome::Refreshed);
        assert_eq!(c.stats().installed, 1);
        assert_eq!(c.stats().refreshed, 1);
        assert_eq!(c.domain_len(1), 1);
    }

    #[test]
    fn lru_eviction_keeps_bound_and_drops_coldest() {
        let mut c = cache(3);
        for id in 256..259 {
            c.install(1, tpl(id), 0);
        }
        // Touch 256 so 257 becomes coldest.
        c.get(1, 256, 0);
        c.install(1, tpl(300), 0);
        assert_eq!(c.domain_len(1), 3);
        assert!(c.get(1, 257, 0).is_none(), "coldest evicted");
        assert!(c.get(1, 256, 0).is_some());
        assert!(c.get(1, 300, 0).is_some());
        assert_eq!(c.stats().evicted_lru, 1);
    }

    #[test]
    fn domain_flood_is_bounded() {
        let mut c =
            TemplateCache::new(TemplateCacheConfig { max_domains: 4, ..Default::default() });
        for domain in 0..100u32 {
            c.install(domain, tpl(256), 0);
        }
        assert_eq!(c.domain_count(), 4);
        assert_eq!(c.stats().evicted_domains, 96);
    }

    #[test]
    fn stale_templates_expire_on_get_and_sweep() {
        let mut c = TemplateCache::new(TemplateCacheConfig {
            template_timeout_ns: 100,
            ..Default::default()
        });
        c.install(1, tpl(256), 0);
        c.install(1, tpl(257), 0);
        assert!(c.get(1, 256, 101).is_none(), "expired on access");
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.sweep(500), 1, "sweep reaps the rest");
        assert_eq!(c.total_len(), 0);
    }

    #[test]
    fn refresh_resets_the_expiry_clock() {
        let mut c = TemplateCache::new(TemplateCacheConfig {
            template_timeout_ns: 100,
            ..Default::default()
        });
        c.install(1, tpl(256), 0);
        c.install(1, tpl(256), 90);
        assert!(c.get(1, 256, 150).is_some(), "refresh moved the clock");
    }

    #[test]
    fn invalid_templates_rejected() {
        let mut c = cache(10);
        // id below 256
        assert_eq!(c.install(1, tpl(7), 0), InstallOutcome::Rejected);
        // zero fields
        assert_eq!(c.install(1, Template::new(256, vec![], 0), 0), InstallOutcome::Rejected);
        // zero-length field
        assert_eq!(
            c.install(1, Template::new(256, vec![TemplateField::std(8, 0)], 0), 0),
            InstallOutcome::Rejected
        );
        // record longer than max_record_len
        assert_eq!(
            c.install(1, Template::new(256, vec![TemplateField::std(8, 4000)], 0), 0),
            InstallOutcome::Rejected
        );
        // more scope fields than fields
        assert_eq!(
            c.install(1, Template::new(256, vec![TemplateField::std(8, 4)], 2), 0),
            InstallOutcome::Rejected
        );
        // too many fields
        let many = (0..200).map(|i| TemplateField::std(i, 1)).collect();
        assert_eq!(c.install(1, Template::new(256, many, 0), 0), InstallOutcome::Rejected);
        assert_eq!(c.stats().rejected, 6);
        assert_eq!(c.total_len(), 0);
    }

    #[test]
    fn varlen_template_has_no_fixed_len() {
        let t =
            Template::new(256, vec![TemplateField::std(8, 4), TemplateField::std(95, VARLEN)], 0);
        assert_eq!(t.fixed_record_len(), None);
        assert_eq!(t.min_record_len(), 5);
        let mut c = cache(10);
        assert_eq!(c.install(1, t, 0), InstallOutcome::Installed);
    }
}
