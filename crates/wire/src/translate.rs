//! Translate decoded flow records into the 24-byte FET event model.
//!
//! A NetFlow/IPFIX flow record is a *flow summary*, not a flow event; the
//! mapping into [`EventRecord`] follows what the record can actually attest:
//!
//! * RFC 7270 `forwardingStatus` (field 89) with status `dropped` →
//!   [`EventType::PipelineDrop`] with the reason code mapped onto the
//!   nearest [`DropCode`];
//! * egress ifIndex 0 (the long-standing v5/v9 "no output interface"
//!   convention) → `PipelineDrop` / [`DropCode::TableMiss`] — the flow was
//!   blackholed;
//! * everything else → [`EventType::PathChange`] carrying the
//!   (ingress, egress) interface pair, which is exactly the signal the
//!   paper's path-change event class encodes.
//!
//! The 4-byte event hash is computed here (FNV-1a over the 13-byte flow key
//! plus a murmur-style avalanche) because wire records arrive without the
//! data-plane pre-computed hash the in-simulator pipeline provides.

use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::flow::{FlowKey, IpProtocol, FLOW_KEY_LEN};
use fet_packet::Ipv4Addr;

/// A protocol-neutral decoded flow record: the common denominator of a
/// NetFlow v5 record and a v9/IPFIX data record under the base template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSample {
    /// The 5-tuple.
    pub flow: FlowKey,
    /// Ingress interface index (`INPUT_SNMP`).
    pub in_port: u16,
    /// Egress interface index (`OUTPUT_SNMP`); 0 means unresolved.
    pub out_port: u16,
    /// Packet count for the flow.
    pub packets: u64,
    /// Byte count for the flow.
    pub bytes: u64,
    /// Cumulative TCP flags.
    pub tcp_flags: u8,
    /// RFC 7270 forwarding status byte, if the record carried field 89.
    pub forwarding_status: Option<u8>,
    /// Sysuptime (ms) at the flow's first packet; 0 = not carried. A u32
    /// millisecond clock wraps every ~49.7 days, so consumers must use
    /// [`uptime_delta_ms`](crate::clock::uptime_delta_ms), never `last -
    /// first`.
    pub first_ms: u32,
    /// Sysuptime (ms) at the flow's last packet; 0 = not carried.
    pub last_ms: u32,
}

impl Default for FlowSample {
    fn default() -> Self {
        FlowSample {
            flow: FlowKey {
                src: Ipv4Addr::from_octets([0, 0, 0, 0]),
                dst: Ipv4Addr::from_octets([0, 0, 0, 0]),
                sport: 0,
                dport: 0,
                proto: IpProtocol::from_number(0),
            },
            in_port: 0,
            out_port: 0,
            packets: 0,
            bytes: 0,
            tcp_flags: 0,
            forwarding_status: None,
            first_ms: 0,
            last_ms: 0,
        }
    }
}

/// RFC 7270 forwarding-status byte: upper 2 bits are the status.
const FWD_STATUS_DROPPED: u8 = 0b10;

impl FlowSample {
    /// True if this record attests the flow was dropped.
    pub fn is_dropped(&self) -> bool {
        match self.forwarding_status {
            Some(fs) => (fs >> 6) == FWD_STATUS_DROPPED,
            None => self.out_port == 0,
        }
    }
}

/// FNV-1a over the 13-byte flow key, finished with a murmur-style
/// avalanche — the same construction the analytics engine uses for shard
/// hashing, so wire-sourced hashes have the same mixing quality the
/// data-plane hash would.
pub fn flow_hash(flow: &FlowKey) -> u32 {
    let mut buf = [0u8; FLOW_KEY_LEN];
    flow.write_to(&mut buf);
    let mut h: u32 = 0x811c_9dc5;
    for &b in &buf {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Map an RFC 7270 drop reason code (low 6 bits of forwardingStatus) onto
/// the nearest FET [`DropCode`].
fn drop_code(reason: u8) -> DropCode {
    match reason {
        1 | 2 => DropCode::AclDeny,    // ACL deny / drop
        3 | 4 => DropCode::TableMiss,  // unroutable / adjacency
        5 => DropCode::MtuExceeded,    // fragmentation needed & DF set
        6..=8 => DropCode::ParseError, // bad checksum / lengths
        9 => DropCode::TtlExpired,
        10 | 11 => DropCode::BufferFull, // policer / WRED
        14 => DropCode::PortDown,        // bad output interface
        15 => DropCode::Overload,        // hardware
        _ => DropCode::TableMiss,
    }
}

/// Interface indexes are 16-bit (and wider in IPFIX); the 1-byte detail
/// ports saturate at 0xff, the "unresolved" sentinel the event format
/// already uses.
fn port8(p: u16) -> u8 {
    u8::try_from(p).unwrap_or(0xff)
}

/// Translate one decoded flow record into a FET event.
pub fn translate(s: &FlowSample) -> EventRecord {
    let detail = if s.is_dropped() {
        let code = match s.forwarding_status {
            Some(fs) if (fs >> 6) == FWD_STATUS_DROPPED => drop_code(fs & 0x3f),
            _ => DropCode::TableMiss,
        };
        EventDetail::Drop { ingress_port: port8(s.in_port), egress_port: port8(s.out_port), code }
    } else {
        EventDetail::PathChange { ingress_port: port8(s.in_port), egress_port: port8(s.out_port) }
    };
    let ty = match detail {
        EventDetail::Drop { .. } => EventType::PipelineDrop,
        _ => EventType::PathChange,
    };
    EventRecord {
        ty,
        flow: s.flow,
        detail,
        counter: u16::try_from(s.packets).unwrap_or(u16::MAX),
        hash: flow_hash(&s.flow),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowSample {
        FlowSample {
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([192, 168, 0, 1]),
                1000,
                Ipv4Addr::from_octets([192, 168, 0, 2]),
                2000,
            ),
            in_port: 3,
            out_port: 7,
            packets: 12,
            bytes: 1200,
            tcp_flags: 0x10,
            forwarding_status: None,
            first_ms: 0,
            last_ms: 0,
        }
    }

    #[test]
    fn forwarded_flow_is_path_change() {
        let ev = translate(&sample());
        assert_eq!(ev.ty, EventType::PathChange);
        assert_eq!(ev.detail, EventDetail::PathChange { ingress_port: 3, egress_port: 7 });
        assert_eq!(ev.counter, 12);
        assert_eq!(ev.hash, flow_hash(&sample().flow));
    }

    #[test]
    fn zero_output_interface_is_a_blackhole_drop() {
        let mut s = sample();
        s.out_port = 0;
        let ev = translate(&s);
        assert_eq!(ev.ty, EventType::PipelineDrop);
        assert_eq!(
            ev.detail,
            EventDetail::Drop { ingress_port: 3, egress_port: 0, code: DropCode::TableMiss }
        );
    }

    #[test]
    fn forwarding_status_dropped_maps_reason_codes() {
        let cases = [
            (0x81, DropCode::AclDeny),
            (0x83, DropCode::TableMiss),
            (0x85, DropCode::MtuExceeded),
            (0x86, DropCode::ParseError),
            (0x89, DropCode::TtlExpired),
            (0x8a, DropCode::BufferFull),
            (0x8e, DropCode::PortDown),
            (0x8f, DropCode::Overload),
            (0x80, DropCode::TableMiss),
        ];
        for (fs, want) in cases {
            let mut s = sample();
            s.forwarding_status = Some(fs);
            let ev = translate(&s);
            assert_eq!(ev.ty, EventType::PipelineDrop, "fs={fs:#x}");
            assert!(
                matches!(ev.detail, EventDetail::Drop { code, .. } if code == want),
                "fs={fs:#x}"
            );
        }
    }

    #[test]
    fn forwarded_status_overrides_zero_out_port_heuristic() {
        // An explicit "forwarded" status wins even when OUTPUT_SNMP is 0.
        let mut s = sample();
        s.out_port = 0;
        s.forwarding_status = Some(0x40);
        assert_eq!(translate(&s).ty, EventType::PathChange);
    }

    #[test]
    fn wide_values_saturate() {
        let mut s = sample();
        s.in_port = 700;
        s.packets = 1 << 30;
        let ev = translate(&s);
        assert_eq!(ev.counter, u16::MAX);
        assert!(matches!(ev.detail, EventDetail::PathChange { ingress_port: 0xff, .. }));
    }

    #[test]
    fn events_roundtrip_the_24_byte_format() {
        for fs in [None, Some(0x40), Some(0x82)] {
            let mut s = sample();
            s.forwarding_status = fs;
            let ev = translate(&s);
            let back = EventRecord::read_from(&ev.to_bytes()).expect("roundtrip");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn hash_differs_across_flows() {
        let a = flow_hash(&sample().flow);
        let b = flow_hash(&sample().flow.reversed());
        assert_ne!(a, b);
    }
}
