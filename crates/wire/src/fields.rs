//! The v9 / IPFIX information elements the translator understands, plus the
//! panic-free record codec used by both parsers and the datagram builders.
//!
//! Unknown and enterprise-scoped fields are *skipped, not refused*: a record
//! decodes as long as its field lengths fit the buffer, and only the
//! elements below contribute to the resulting [`FlowSample`].

use crate::template::{Template, TemplateField};
use crate::translate::FlowSample;
use fet_packet::flow::IpProtocol;
use fet_packet::Ipv4Addr;

/// IN_BYTES — octet count.
pub const IN_BYTES: u16 = 1;
/// IN_PKTS — packet count.
pub const IN_PKTS: u16 = 2;
/// PROTOCOL — IP protocol number.
pub const PROTOCOL: u16 = 4;
/// TCP_FLAGS — cumulative TCP flags.
pub const TCP_FLAGS: u16 = 6;
/// L4_SRC_PORT — transport source port.
pub const L4_SRC_PORT: u16 = 7;
/// IPV4_SRC_ADDR — source address.
pub const IPV4_SRC_ADDR: u16 = 8;
/// INPUT_SNMP — ingress interface index.
pub const INPUT_SNMP: u16 = 10;
/// L4_DST_PORT — transport destination port.
pub const L4_DST_PORT: u16 = 11;
/// IPV4_DST_ADDR — destination address.
pub const IPV4_DST_ADDR: u16 = 12;
/// OUTPUT_SNMP — egress interface index (0 = unresolved / blackholed).
pub const OUTPUT_SNMP: u16 = 14;
/// LAST_SWITCHED — sysuptime (ms) at the flow's last packet.
pub const LAST_SWITCHED: u16 = 21;
/// FIRST_SWITCHED — sysuptime (ms) at the flow's first packet.
pub const FIRST_SWITCHED: u16 = 22;
/// FORWARDING_STATUS — RFC 7270 forwarding status + reason code.
pub const FORWARDING_STATUS: u16 = 89;

/// Big-endian unsigned read of 1–8 bytes; longer fields keep the low 8.
fn be_uint(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for &b in bytes.iter().rev().take(8).rev() {
        v = (v << 8) | b as u64;
    }
    v
}

/// Decode one record laid out by `tpl` from the front of `buf`.
///
/// Returns the sample and the bytes consumed, or `None` if the buffer is
/// too short (a truncated record). Never panics on any input.
pub fn decode_record(tpl: &Template, buf: &[u8]) -> Option<(FlowSample, usize)> {
    let mut off = 0usize;
    let mut s = FlowSample::default();
    for f in &tpl.fields {
        let flen = if f.is_varlen() {
            let l = *buf.get(off)? as usize;
            off += 1;
            if l == 255 {
                let hi = *buf.get(off)?;
                let lo = *buf.get(off + 1)?;
                off += 2;
                ((hi as usize) << 8) | lo as usize
            } else {
                l
            }
        } else {
            f.length as usize
        };
        let end = off.checked_add(flen)?;
        if end > buf.len() {
            return None;
        }
        let val = &buf[off..end];
        if f.enterprise.is_none() {
            apply_field(&mut s, f.field_id, val);
        }
        off = end;
    }
    Some((s, off))
}

fn apply_field(s: &mut FlowSample, id: u16, val: &[u8]) {
    match id {
        IPV4_SRC_ADDR if val.len() == 4 => {
            s.flow.src = Ipv4Addr::from_octets([val[0], val[1], val[2], val[3]]);
        }
        IPV4_DST_ADDR if val.len() == 4 => {
            s.flow.dst = Ipv4Addr::from_octets([val[0], val[1], val[2], val[3]]);
        }
        L4_SRC_PORT if !val.is_empty() => s.flow.sport = be_uint(val) as u16,
        L4_DST_PORT if !val.is_empty() => s.flow.dport = be_uint(val) as u16,
        PROTOCOL if !val.is_empty() => {
            s.flow.proto = IpProtocol::from_number(be_uint(val) as u8);
        }
        TCP_FLAGS if !val.is_empty() => s.tcp_flags = be_uint(val) as u8,
        INPUT_SNMP if !val.is_empty() => s.in_port = be_uint(val) as u16,
        OUTPUT_SNMP if !val.is_empty() => s.out_port = be_uint(val) as u16,
        IN_PKTS if !val.is_empty() => s.packets = be_uint(val),
        IN_BYTES if !val.is_empty() => s.bytes = be_uint(val),
        FIRST_SWITCHED if !val.is_empty() => s.first_ms = be_uint(val) as u32,
        LAST_SWITCHED if !val.is_empty() => s.last_ms = be_uint(val) as u32,
        FORWARDING_STATUS if !val.is_empty() => {
            s.forwarding_status = Some(be_uint(val) as u8);
        }
        _ => {}
    }
}

/// Encode `sample` under a field layout (the builder-side inverse of
/// [`decode_record`]). Unknown fields are zero-filled; varlen fields are
/// emitted empty (a single 0-length prefix byte).
pub fn encode_record(fields: &[TemplateField], sample: &FlowSample) -> Vec<u8> {
    let mut out = Vec::new();
    for f in fields {
        if f.is_varlen() {
            out.push(0);
            continue;
        }
        let len = f.length as usize;
        let val: u64 = if f.enterprise.is_some() {
            0
        } else {
            match f.field_id {
                IPV4_SRC_ADDR => u32::from_be_bytes(sample.flow.src.octets()) as u64,
                IPV4_DST_ADDR => u32::from_be_bytes(sample.flow.dst.octets()) as u64,
                L4_SRC_PORT => sample.flow.sport as u64,
                L4_DST_PORT => sample.flow.dport as u64,
                PROTOCOL => sample.flow.proto.number() as u64,
                TCP_FLAGS => sample.tcp_flags as u64,
                INPUT_SNMP => sample.in_port as u64,
                OUTPUT_SNMP => sample.out_port as u64,
                IN_PKTS => sample.packets,
                IN_BYTES => sample.bytes,
                FIRST_SWITCHED => sample.first_ms as u64,
                LAST_SWITCHED => sample.last_ms as u64,
                FORWARDING_STATUS => sample.forwarding_status.unwrap_or(0x40) as u64,
                _ => 0,
            }
        };
        let be = val.to_be_bytes();
        if len <= 8 {
            out.extend_from_slice(&be[8 - len..]);
        } else {
            out.extend(std::iter::repeat_n(0u8, len - 8));
            out.extend_from_slice(&be);
        }
    }
    out
}

/// The canonical flow template the builders and the hostile-exporter model
/// announce: every element the translator reads, in a fixed order.
pub fn base_flow_fields() -> Vec<TemplateField> {
    vec![
        TemplateField::std(IPV4_SRC_ADDR, 4),
        TemplateField::std(IPV4_DST_ADDR, 4),
        TemplateField::std(L4_SRC_PORT, 2),
        TemplateField::std(L4_DST_PORT, 2),
        TemplateField::std(PROTOCOL, 1),
        TemplateField::std(TCP_FLAGS, 1),
        TemplateField::std(INPUT_SNMP, 2),
        TemplateField::std(OUTPUT_SNMP, 2),
        TemplateField::std(IN_PKTS, 4),
        TemplateField::std(IN_BYTES, 4),
        TemplateField::std(FORWARDING_STATUS, 1),
    ]
}

/// `base_flow_fields` record length in bytes.
pub fn base_flow_record_len() -> usize {
    base_flow_fields().iter().map(|f| f.length as usize).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::VARLEN;
    use fet_packet::flow::FlowKey;

    fn sample() -> FlowSample {
        FlowSample {
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 1]),
                4321,
                Ipv4Addr::from_octets([10, 0, 0, 2]),
                443,
            ),
            in_port: 3,
            out_port: 7,
            packets: 1200,
            bytes: 90_000,
            tcp_flags: 0x18,
            forwarding_status: Some(0x40),
            first_ms: 0,
            last_ms: 0,
        }
    }

    #[test]
    fn switched_times_roundtrip_when_templated() {
        let fields = vec![
            TemplateField::std(IPV4_SRC_ADDR, 4),
            TemplateField::std(FIRST_SWITCHED, 4),
            TemplateField::std(LAST_SWITCHED, 4),
        ];
        let tpl = Template::new(256, fields.clone(), 0);
        let mut s = sample();
        s.first_ms = u32::MAX - 10; // straddles the sysuptime wrap
        s.last_ms = 500;
        let bytes = encode_record(&fields, &s);
        let (out, _) = decode_record(&tpl, &bytes).expect("decodes");
        assert_eq!(out.first_ms, u32::MAX - 10);
        assert_eq!(out.last_ms, 500);
    }

    #[test]
    fn encode_decode_roundtrip_base_fields() {
        let fields = base_flow_fields();
        let tpl = Template::new(256, fields.clone(), 0);
        let bytes = encode_record(&fields, &sample());
        assert_eq!(bytes.len(), base_flow_record_len());
        let (out, used) = decode_record(&tpl, &bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(out, sample());
    }

    #[test]
    fn truncated_record_is_none_not_panic() {
        let fields = base_flow_fields();
        let tpl = Template::new(256, fields.clone(), 0);
        let bytes = encode_record(&fields, &sample());
        for cut in 0..bytes.len() {
            assert!(decode_record(&tpl, &bytes[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn varlen_fields_skip_cleanly() {
        let tpl = Template::new(
            256,
            vec![
                TemplateField::std(IPV4_SRC_ADDR, 4),
                TemplateField::std(0x5000, VARLEN),
                TemplateField::std(L4_DST_PORT, 2),
            ],
            0,
        );
        // 4-byte addr, varlen len=3 + 3 payload bytes, 2-byte port.
        let buf = [10, 1, 1, 1, 3, 0xaa, 0xbb, 0xcc, 0x01, 0xbb];
        let (s, used) = decode_record(&tpl, &buf).expect("decodes");
        assert_eq!(used, buf.len());
        assert_eq!(s.flow.src.octets(), [10, 1, 1, 1]);
        assert_eq!(s.flow.dport, 443);
    }

    #[test]
    fn varlen_two_byte_length_form() {
        let tpl = Template::new(256, vec![TemplateField::std(0x5000, VARLEN)], 0);
        let mut buf = vec![255, 0x01, 0x00];
        buf.extend(std::iter::repeat_n(0u8, 256));
        let (_, used) = decode_record(&tpl, &buf).expect("decodes");
        assert_eq!(used, 3 + 256);
        // Truncated long form: length says 256 but payload is short.
        assert!(decode_record(&tpl, &buf[..100]).is_none());
    }

    #[test]
    fn oversized_numeric_fields_keep_low_bytes() {
        let tpl = Template::new(256, vec![TemplateField::std(IN_PKTS, 10)], 0);
        let mut buf = vec![0u8; 10];
        buf[9] = 42;
        let (s, _) = decode_record(&tpl, &buf).expect("decodes");
        assert_eq!(s.packets, 42);
    }

    #[test]
    fn enterprise_fields_are_skipped() {
        let tpl = Template::new(
            256,
            vec![TemplateField { field_id: IN_PKTS, length: 4, enterprise: Some(9) }],
            0,
        );
        let (s, _) = decode_record(&tpl, &[0, 0, 0, 9]).expect("decodes");
        assert_eq!(s.packets, 0, "enterprise-scoped IN_PKTS must not apply");
    }
}
