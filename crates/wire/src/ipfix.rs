//! IPFIX (RFC 7011), aka "NetFlow v10": the IETF-standardized successor.
//!
//! Differences from v9 the parser must honor: the header carries the exact
//! message length (a second framing claim to verify), the sequence number
//! counts *data records* rather than datagrams, template set ids move to
//! 2/3, field specs may carry a 4-byte enterprise number (high bit of the
//! field id), and data records may contain variable-length fields.

use crate::reason::{RejectReason, REASON_COUNT};
use crate::sets::{decode_data_set, MAX_PAD};
use crate::template::{InstallOutcome, Template, TemplateCache, TemplateField};
use crate::translate::FlowSample;

/// Fixed IPFIX message header length.
pub const IPFIX_HEADER_LEN: usize = 16;
/// Template set id.
pub const IPFIX_SET_TEMPLATE: u16 = 2;
/// Options-template set id.
pub const IPFIX_SET_OPTIONS: u16 = 3;
/// Smallest data set id.
pub const IPFIX_SET_DATA_MIN: u16 = 256;

/// A decoded IPFIX message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpfixDatagram {
    /// Observation domain id.
    pub domain: u32,
    /// Count of data records the exporter sent before this message.
    pub sequence: u32,
    /// Export timestamp (seconds).
    pub export_time: u32,
    /// Data records actually walked (flow + option records; templates are
    /// not data records in IPFIX).
    pub data_records: u64,
    /// Decoded flow records.
    pub samples: Vec<FlowSample>,
    /// Truncated or uncountable (unknown-template) records.
    pub malformed: u64,
    /// Soft reject counters by [`RejectReason::index`].
    pub soft: [u64; REASON_COUNT],
    /// Templates accepted (installed or refreshed) from this message.
    pub templates_installed: u64,
}

fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

fn be32(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Read one field spec (with optional enterprise number) at `off`; returns
/// the field and the new offset, or `None` if truncated.
fn field_spec(body: &[u8], off: usize) -> Option<(TemplateField, usize)> {
    if body.len().checked_sub(off)? < 4 {
        return None;
    }
    let raw_id = be16(body, off);
    let length = be16(body, off + 2);
    if raw_id & 0x8000 != 0 {
        if body.len() - off < 8 {
            return None;
        }
        let enterprise = be32(body, off + 4);
        Some((
            TemplateField { field_id: raw_id & 0x7fff, length, enterprise: Some(enterprise) },
            off + 8,
        ))
    } else {
        Some((TemplateField { field_id: raw_id, length, enterprise: None }, off + 4))
    }
}

/// Walk an IPFIX template or options-template set body.
fn parse_template_set(
    body: &[u8],
    options: bool,
    cache: &mut TemplateCache,
    domain: u32,
    now_ns: u64,
    soft: &mut [u64; REASON_COUNT],
    installed: &mut u64,
) {
    let header = if options { 6 } else { 4 };
    let mut off = 0usize;
    while body.len() - off > MAX_PAD {
        if body.len() - off < header {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let tid = be16(body, off);
        let field_count = be16(body, off + 2) as usize;
        let scope_count = if options { be16(body, off + 4) as usize } else { 0 };
        off += header;
        if field_count == 0 || scope_count > field_count {
            soft[RejectReason::BadTemplate.index()] += 1;
            return;
        }
        let mut fields = Vec::with_capacity(field_count);
        for _ in 0..field_count {
            match field_spec(body, off) {
                Some((f, next)) => {
                    fields.push(f);
                    off = next;
                }
                None => {
                    soft[RejectReason::BadTemplate.index()] += 1;
                    return;
                }
            }
        }
        match cache.install(domain, Template::new(tid, fields, scope_count as u16), now_ns) {
            InstallOutcome::Rejected => soft[RejectReason::BadTemplate.index()] += 1,
            _ => *installed += 1,
        }
    }
}

/// Parse an IPFIX message against (and updating) the session template
/// cache.
pub fn parse(
    buf: &[u8],
    cache: &mut TemplateCache,
    now_ns: u64,
) -> Result<IpfixDatagram, RejectReason> {
    if buf.len() < 2 {
        return Err(RejectReason::TruncatedHeader);
    }
    if be16(buf, 0) != 10 {
        return Err(RejectReason::BadVersion);
    }
    if buf.len() < IPFIX_HEADER_LEN {
        return Err(RejectReason::TruncatedHeader);
    }
    let msg_len = be16(buf, 2) as usize;
    // The header claims its own length; a claim shorter than the header or
    // longer than the buffer is a framing lie.
    if msg_len < IPFIX_HEADER_LEN || msg_len > buf.len() {
        return Err(RejectReason::LengthLie);
    }
    let buf = &buf[..msg_len];
    let export_time = be32(buf, 4);
    let sequence = be32(buf, 8);
    let domain = be32(buf, 12);

    let mut dg = IpfixDatagram {
        domain,
        sequence,
        export_time,
        data_records: 0,
        samples: Vec::new(),
        malformed: 0,
        soft: [0; REASON_COUNT],
        templates_installed: 0,
    };

    let mut off = IPFIX_HEADER_LEN;
    while off < buf.len() {
        if buf.len() - off <= MAX_PAD {
            break; // trailing alignment padding
        }
        if buf.len() - off < 4 {
            dg.soft[RejectReason::TruncatedRecord.index()] += 1;
            break;
        }
        let set_id = be16(buf, off);
        let set_len = be16(buf, off + 2) as usize;
        if set_len < 4 || off + set_len > buf.len() {
            return Err(RejectReason::LengthLie);
        }
        let body = &buf[off + 4..off + set_len];
        match set_id {
            IPFIX_SET_TEMPLATE | IPFIX_SET_OPTIONS => parse_template_set(
                body,
                set_id == IPFIX_SET_OPTIONS,
                cache,
                domain,
                now_ns,
                &mut dg.soft,
                &mut dg.templates_installed,
            ),
            id if id < IPFIX_SET_DATA_MIN => {
                dg.soft[RejectReason::ReservedSet.index()] += 1;
            }
            tid => match cache.get(domain, tid, now_ns) {
                Some(tpl) => {
                    let tpl = tpl.clone();
                    let o = decode_data_set(&tpl, body, &mut dg.samples, &mut dg.soft);
                    dg.data_records += o.records;
                    dg.malformed += o.malformed;
                }
                None => {
                    // IPFIX has no per-message record count to reconcile
                    // against, so an unknown-template set is booked as (at
                    // least) one malformed record — a conservative floor.
                    dg.soft[RejectReason::MissingTemplate.index()] += 1;
                    dg.malformed += 1;
                }
            },
        }
        off += set_len;
    }
    Ok(dg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IpfixBuilder;
    use crate::fields::{base_flow_fields, encode_record, IN_PKTS};
    use crate::template::{TemplateCacheConfig, VARLEN};
    use crate::test_support::sample;

    fn cache() -> TemplateCache {
        TemplateCache::new(TemplateCacheConfig::default())
    }

    #[test]
    fn template_then_data_decodes() {
        let mut c = cache();
        let dg = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(1), sample(2)])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.samples, vec![sample(1), sample(2)]);
        assert_eq!(got.data_records, 2);
        assert_eq!(got.malformed, 0);
        assert_eq!(got.domain, 9);
    }

    #[test]
    fn length_lies_are_fatal() {
        let mut c = cache();
        let dg = IpfixBuilder::new(9, 0).template(256, &base_flow_fields()).build();
        // Claimed length beyond the buffer.
        let lying = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .build_with_length(dg.len() as u16 + 40);
        assert_eq!(parse(&lying, &mut c, 0), Err(RejectReason::LengthLie));
        // Claimed length below the header.
        let tiny = IpfixBuilder::new(9, 0).build_with_length(8);
        assert_eq!(parse(&tiny, &mut c, 0), Err(RejectReason::LengthLie));
    }

    #[test]
    fn message_length_truncates_trailing_bytes() {
        let mut c = cache();
        let mut dg = IpfixBuilder::new(9, 0)
            .template(256, &base_flow_fields())
            .data_samples(256, &[sample(1)])
            .build();
        dg.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0xde, 0xad]);
        let got = parse(&dg, &mut c, 0).expect("parses to the claimed length");
        assert_eq!(got.samples.len(), 1);
        assert_eq!(got.malformed, 0);
    }

    #[test]
    fn enterprise_fields_roundtrip_through_templates() {
        let mut c = cache();
        let fields = vec![
            TemplateField::std(IN_PKTS, 4),
            TemplateField { field_id: 77, length: 2, enterprise: Some(0x1234) },
        ];
        let dg = IpfixBuilder::new(9, 0)
            .template(256, &fields)
            .data(256, &[vec![0, 0, 0, 5, 0xaa, 0xbb]])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.samples.len(), 1);
        assert_eq!(got.samples[0].packets, 5);
        let tpl = c.get(9, 256, 0).expect("installed");
        assert_eq!(tpl.fields[1].enterprise, Some(0x1234));
    }

    #[test]
    fn varlen_data_records_decode() {
        let mut c = cache();
        let fields = vec![TemplateField::std(IN_PKTS, 4), TemplateField::std(0x5001, VARLEN)];
        let rows = vec![
            vec![0, 0, 0, 1, 2, 0x61, 0x62], // pkts=1, varlen "ab"
            vec![0, 0, 0, 2, 0],             // pkts=2, varlen empty
        ];
        let dg = IpfixBuilder::new(9, 0).template(256, &fields).data(256, &rows).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.data_records, 2);
        assert_eq!(got.samples[0].packets, 1);
        assert_eq!(got.samples[1].packets, 2);
    }

    #[test]
    fn unknown_template_set_is_floor_counted() {
        let mut c = cache();
        let dg = IpfixBuilder::new(9, 0).data_samples(300, &[sample(1)]).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert!(got.samples.is_empty());
        assert_eq!(got.soft[RejectReason::MissingTemplate.index()], 1);
        assert_eq!(got.malformed, 1);
    }

    #[test]
    fn options_template_scope_beyond_fields_is_bad() {
        let mut c = cache();
        // options template: tid=300, field_count=1, scope_count=2 (> count)
        let body = [1, 44, 0, 1, 0, 2, 0, 1, 0, 4];
        let dg = IpfixBuilder::new(9, 0).raw_set(IPFIX_SET_OPTIONS, &body).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.soft[RejectReason::BadTemplate.index()], 1);
        assert_eq!(c.total_len(), 0);
    }

    #[test]
    fn options_data_yields_no_samples() {
        let mut c = cache();
        let scope = [TemplateField::std(1, 4)];
        let opts = [TemplateField::std(41, 2)];
        let dg = IpfixBuilder::new(9, 0)
            .options_template(300, &scope, &opts)
            .data(300, &[vec![0, 0, 0, 1, 0, 9]])
            .build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert!(got.samples.is_empty());
        assert_eq!(got.data_records, 1);
    }

    #[test]
    fn truncated_record_tail_is_malformed() {
        let mut c = cache();
        let t = IpfixBuilder::new(9, 0).template(256, &base_flow_fields()).build();
        parse(&t, &mut c, 0).expect("template");
        let mut row = encode_record(&base_flow_fields(), &sample(1));
        row.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7]);
        let dg = IpfixBuilder::new(9, 1).data(256, &[row]).build();
        let got = parse(&dg, &mut c, 0).expect("parses");
        assert_eq!(got.samples.len(), 1);
        assert_eq!(got.malformed, 1);
        assert_eq!(got.soft[RejectReason::TruncatedRecord.index()], 1);
    }

    #[test]
    fn fatal_header_rejects() {
        let mut c = cache();
        assert_eq!(parse(&[], &mut c, 0), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0, 10, 0], &mut c, 0), Err(RejectReason::TruncatedHeader));
        assert_eq!(parse(&[0, 11, 0, 0], &mut c, 0), Err(RejectReason::BadVersion));
    }
}
