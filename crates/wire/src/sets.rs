//! Data-set decoding shared by the v9 and IPFIX parsers.

use crate::fields::decode_record;
use crate::reason::{RejectReason, REASON_COUNT};
use crate::template::Template;
use crate::translate::FlowSample;

/// Both specs allow zero-padding a set to a 4-byte boundary; a tail longer
/// than this cannot be padding and is a truncated record.
pub(crate) const MAX_PAD: usize = 3;

/// What decoding one data set produced.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SetOutcome {
    /// Complete records walked (flow or option records).
    pub records: u64,
    /// Truncated partial records at the set tail.
    pub malformed: u64,
}

/// Decode every record in a data-set body under `tpl`.
///
/// Flow records are appended to `samples`; option records (scope > 0) are
/// walked for accounting but produce no samples. A tail shorter than one
/// record is padding if ≤ [`MAX_PAD`] bytes, otherwise one malformed
/// (truncated) record.
pub(crate) fn decode_data_set(
    tpl: &Template,
    body: &[u8],
    samples: &mut Vec<FlowSample>,
    soft: &mut [u64; REASON_COUNT],
) -> SetOutcome {
    let mut out = SetOutcome::default();
    let mut off = 0usize;
    while off < body.len() {
        match decode_record(tpl, &body[off..]) {
            Some((s, used)) if used > 0 => {
                if !tpl.is_options() {
                    samples.push(s);
                }
                out.records += 1;
                off += used;
            }
            _ => {
                if body.len() - off > MAX_PAD {
                    soft[RejectReason::TruncatedRecord.index()] += 1;
                    out.malformed += 1;
                }
                break;
            }
        }
    }
    out
}
