// Gated: requires the external `proptest` crate (offline builds cannot
// fetch it). Re-add the dev-dependency and build with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for simulator invariants: MMU byte conservation, fault
//! determinism, and tx-time monotonicity.

use fet_netsim::link::{BurstDrop, LinkDirection, LinkOutcome};
use fet_netsim::mmu::{Mmu, MmuConfig, MmuVerdict};
use fet_netsim::time::tx_time_ns;
use proptest::prelude::*;

// Standalone constructor mirroring Link::new's internals for direction
// testing (LinkDirection fields are public enough via Link).
fn direction(seed: u64) -> LinkDirection {
    fet_netsim::link::Link::new(100.0, 0, seed).ab
}

proptest! {
    /// MMU conservation: used bytes always equals the sum of queue depths,
    /// and never exceeds the pool.
    #[test]
    fn mmu_conserves_bytes(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..2, 64u64..2_000, any::<bool>()),
            1..300,
        ),
    ) {
        let cfg = MmuConfig {
            total_bytes: 50_000,
            alpha: 2.0,
            pfc_xoff_bytes: 10_000,
            pfc_xon_bytes: 5_000,
            queues_per_port: 2,
        };
        let mut mmu = Mmu::new(4, cfg);
        // Shadow depths to drive legal releases.
        let mut depth = [[0u64; 2]; 4];
        for (port, queue, bytes, enqueue) in ops {
            let (p, q) = (usize::from(port), usize::from(queue));
            if enqueue {
                if mmu.admit(port, queue, bytes) == MmuVerdict::Admit {
                    depth[p][q] += bytes;
                }
            } else if depth[p][q] > 0 {
                let take = depth[p][q].min(bytes);
                mmu.release(port, queue, take);
                depth[p][q] -= take;
            }
            // Invariants after every op.
            let total: u64 = depth.iter().flatten().sum();
            prop_assert_eq!(mmu.free_bytes(), cfg.total_bytes - total);
            for pp in 0..4u8 {
                for qq in 0..2u8 {
                    prop_assert_eq!(
                        mmu.depth(pp, qq),
                        depth[usize::from(pp)][usize::from(qq)]
                    );
                }
            }
        }
    }

    /// Fault judgment is deterministic per seed and independent of wall
    /// time between calls.
    #[test]
    fn link_faults_deterministic(seed in any::<u64>(), prob in 0.0f64..0.5) {
        let mut a = direction(seed);
        let mut b = direction(seed);
        a.faults.drop_prob = prob;
        b.faults.drop_prob = prob;
        for t in 0..500u64 {
            prop_assert_eq!(a.judge(t), b.judge(t * 17 + 3));
        }
    }

    /// A burst of n drops exactly n frames once armed, regardless of
    /// arrival times.
    #[test]
    fn burst_drops_exactly_n(
        n in 1u32..50,
        arm in 0u64..1_000,
        times in proptest::collection::vec(0u64..10_000, 60..200),
    ) {
        let mut d = direction(9);
        d.faults.burst_drop = Some(BurstDrop { at_ns: arm, count: n, corrupt: false });
        let mut sorted = times.clone();
        sorted.sort_unstable();
        // Ensure enough post-arm frames exist for the burst to complete.
        prop_assume!(sorted.iter().filter(|&&t| t >= arm).count() >= n as usize);
        let dropped = sorted
            .iter()
            .filter(|&&t| d.judge(t) == LinkOutcome::SilentDrop)
            .count();
        prop_assert_eq!(dropped, n as usize);
    }

    /// Serialization time is monotone in size and inversely so in rate.
    #[test]
    fn tx_time_monotone(bytes in 1usize..10_000, gbps in 1.0f64..400.0) {
        let t = tx_time_ns(bytes, gbps);
        prop_assert!(t >= 1);
        prop_assert!(tx_time_ns(bytes + 100, gbps) >= t);
        prop_assert!(tx_time_ns(bytes, gbps + 10.0) <= t);
    }
}
