//! Links: bandwidth, propagation delay, and fault injection.
//!
//! Each link is full-duplex; fault injection is configured per direction so
//! experiments can corrupt only, say, Agg1→ToR2. Faults come in three
//! flavours matching the paper's inter-switch failure modes (§3.3):
//!
//! * random **silent drop** (decaying transmitter, connector contamination);
//! * random **corruption** (the frame arrives but fails FCS and is discarded
//!   at the downstream MAC);
//! * scripted **burst drops** ("drop the next N frames after time T") used
//!   to probe the ring-buffer capacity limits (paper Fig. 15).

use crate::corrupt::{corrupt_buffer, CorruptionSpec};
use crate::rng::Pcg32;

/// What the link did to a frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOutcome {
    /// Delivered intact.
    Delivered,
    /// Vanished silently — downstream sees nothing.
    SilentDrop,
    /// Delivered with an FCS error — downstream MAC discards it.
    Corrupted,
}

/// Fault configuration for one link direction.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is corrupted.
    pub corrupt_prob: f64,
    /// Scripted burst: after `at_ns`, silently drop the next `count` frames.
    pub burst_drop: Option<BurstDrop>,
    /// When set, a corrupted frame's bytes are actually damaged and the
    /// frame is **delivered** as if the damage escaped the FCS — the
    /// residual-corruption model that forces downstream parsers (and the
    /// telemetry CRC trailers) to face real garbage. When `None` (the
    /// default), corruption keeps its classic behaviour: the frame arrives
    /// with an FCS error and dies at the downstream MAC.
    pub corrupt_bytes: Option<CorruptionSpec>,
}

/// A scripted consecutive-drop burst.
#[derive(Debug, Clone, Copy)]
pub struct BurstDrop {
    /// Burst arms at this time.
    pub at_ns: u64,
    /// Number of consecutive frames to drop.
    pub count: u32,
    /// Corrupt instead of silently dropping.
    pub corrupt: bool,
}

/// Per-direction link state.
#[derive(Debug, Clone)]
pub struct LinkDirection {
    /// Fault configuration.
    pub faults: FaultSpec,
    rng: Pcg32,
    /// Dedicated RNG for byte damage so enabling `corrupt_bytes` never
    /// perturbs the drop/corrupt draws of `judge`.
    corrupt_rng: Pcg32,
    burst_remaining: u32,
    burst_armed: bool,
    /// Frames offered to this direction.
    pub frames_offered: u64,
    /// Frames lost or corrupted by this direction.
    pub frames_faulted: u64,
    /// Frames whose bytes were actually mutated (corrupt_bytes mode).
    pub frames_mutated: u64,
    /// Total bits flipped into delivered frames (corrupt_bytes mode).
    pub bits_flipped: u64,
}

impl LinkDirection {
    fn new(seed: u64, stream: u64) -> Self {
        LinkDirection {
            faults: FaultSpec::default(),
            rng: Pcg32::new(seed, stream),
            corrupt_rng: Pcg32::new(seed, stream ^ 0x4350),
            burst_remaining: 0,
            burst_armed: false,
            frames_offered: 0,
            frames_faulted: 0,
            frames_mutated: 0,
            bits_flipped: 0,
        }
    }

    /// Apply byte damage to a frame judged `Corrupted` when the
    /// residual-corruption model is enabled. Returns `true` when the frame
    /// should be delivered (bytes mutated, FCS missed it) and `false` when
    /// classic FCS-kill semantics apply.
    pub fn mutate_corrupted(&mut self, frame: &mut Vec<u8>) -> bool {
        let Some(spec) = self.faults.corrupt_bytes else {
            return false;
        };
        let tally = corrupt_buffer(&spec, &mut self.corrupt_rng, frame);
        if tally.touched() {
            self.frames_mutated += 1;
        }
        self.bits_flipped += u64::from(tally.bits_flipped);
        true
    }

    /// Decide the fate of a frame entering this direction at `now_ns`.
    pub fn judge(&mut self, now_ns: u64) -> LinkOutcome {
        self.frames_offered += 1;
        if let Some(b) = self.faults.burst_drop {
            if !self.burst_armed && now_ns >= b.at_ns {
                self.burst_armed = true;
                self.burst_remaining = b.count;
            }
            if self.burst_armed && self.burst_remaining > 0 {
                self.burst_remaining -= 1;
                self.frames_faulted += 1;
                return if b.corrupt { LinkOutcome::Corrupted } else { LinkOutcome::SilentDrop };
            }
        }
        if self.rng.chance(self.faults.drop_prob) {
            self.frames_faulted += 1;
            return LinkOutcome::SilentDrop;
        }
        if self.rng.chance(self.faults.corrupt_prob) {
            self.frames_faulted += 1;
            return LinkOutcome::Corrupted;
        }
        LinkOutcome::Delivered
    }
}

/// A full-duplex link between two (node, port) endpoints.
#[derive(Debug, Clone)]
pub struct Link {
    /// Bandwidth, Gbps.
    pub gbps: f64,
    /// One-way propagation delay, ns.
    pub prop_ns: u64,
    /// Faults/state in the a→b direction.
    pub ab: LinkDirection,
    /// Faults/state in the b→a direction.
    pub ba: LinkDirection,
}

impl Link {
    /// Create a healthy link.
    pub fn new(gbps: f64, prop_ns: u64, seed: u64) -> Self {
        Link { gbps, prop_ns, ab: LinkDirection::new(seed, 101), ba: LinkDirection::new(seed, 202) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_link_delivers_everything() {
        let mut d = LinkDirection::new(1, 1);
        for t in 0..1000 {
            assert_eq!(d.judge(t), LinkOutcome::Delivered);
        }
        assert_eq!(d.frames_faulted, 0);
        assert_eq!(d.frames_offered, 1000);
    }

    #[test]
    fn drop_probability_takes_effect() {
        let mut d = LinkDirection::new(2, 2);
        d.faults.drop_prob = 0.1;
        let dropped = (0..10_000).filter(|&t| d.judge(t) == LinkOutcome::SilentDrop).count();
        assert!((800..1200).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn corruption_probability_takes_effect() {
        let mut d = LinkDirection::new(3, 3);
        d.faults.corrupt_prob = 0.05;
        let corrupted = (0..10_000).filter(|&t| d.judge(t) == LinkOutcome::Corrupted).count();
        assert!((350..650).contains(&corrupted), "corrupted {corrupted}");
    }

    #[test]
    fn burst_drops_exactly_n_after_t() {
        let mut d = LinkDirection::new(4, 4);
        d.faults.burst_drop = Some(BurstDrop { at_ns: 100, count: 5, corrupt: false });
        // Before the arm time everything passes.
        for t in 0..100 {
            assert_eq!(d.judge(t), LinkOutcome::Delivered);
        }
        // The next 5 frames vanish.
        for t in 100..105 {
            assert_eq!(d.judge(t), LinkOutcome::SilentDrop);
        }
        // Then recovery.
        for t in 105..200 {
            assert_eq!(d.judge(t), LinkOutcome::Delivered);
        }
        assert_eq!(d.frames_faulted, 5);
    }

    #[test]
    fn burst_can_corrupt() {
        let mut d = LinkDirection::new(5, 5);
        d.faults.burst_drop = Some(BurstDrop { at_ns: 0, count: 2, corrupt: true });
        assert_eq!(d.judge(0), LinkOutcome::Corrupted);
        assert_eq!(d.judge(1), LinkOutcome::Corrupted);
        assert_eq!(d.judge(2), LinkOutcome::Delivered);
    }

    #[test]
    fn corrupt_bytes_mutates_and_escapes_fcs() {
        let mut d = LinkDirection::new(6, 6);
        d.faults.corrupt_prob = 1.0;
        d.faults.corrupt_bytes = Some(CorruptionSpec::bit_flips(0.05));
        assert_eq!(d.judge(0), LinkOutcome::Corrupted);
        let orig = vec![0u8; 256];
        let mut frame = orig.clone();
        // Residual model: delivered (true), bytes damaged.
        assert!(d.mutate_corrupted(&mut frame));
        assert_ne!(frame, orig, "0.05 * 256 bytes should flip something");
        assert!(d.frames_mutated > 0 && d.bits_flipped > 0);
        // Without the spec, classic FCS-kill semantics.
        let mut d2 = LinkDirection::new(6, 6);
        let mut frame2 = orig.clone();
        assert!(!d2.mutate_corrupted(&mut frame2));
        assert_eq!(frame2, orig);
    }

    #[test]
    fn corrupt_bytes_does_not_perturb_judge_draws() {
        let run = |with_bytes: bool| {
            let mut d = LinkDirection::new(7, 7);
            d.faults.drop_prob = 0.1;
            d.faults.corrupt_prob = 0.1;
            if with_bytes {
                d.faults.corrupt_bytes = Some(CorruptionSpec::bit_flips(0.5));
            }
            (0..1000)
                .map(|t| {
                    let o = d.judge(t);
                    if o == LinkOutcome::Corrupted {
                        d.mutate_corrupted(&mut vec![0u8; 64]);
                    }
                    o
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = Link::new(100.0, 500, 9);
        l.ab.faults.drop_prob = 1.0;
        assert_eq!(l.ab.judge(0), LinkOutcome::SilentDrop);
        assert_eq!(l.ba.judge(0), LinkOutcome::Delivered);
    }
}
