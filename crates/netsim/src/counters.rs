//! Per-port counters — the substrate SNMP-style baselines poll.

/// Counters maintained by every port of every device, mirroring the MIB
/// variables (ifInOctets, ifOutOctets, discard counters…) that Case-2 of
//  the paper shows operators combing through.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortCounters {
    /// Frames received.
    pub rx_pkts: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames transmitted.
    pub tx_pkts: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Frames dropped by the ingress/egress pipeline (all reasons).
    pub pipeline_drops: u64,
    /// Frames dropped by the MMU (congestion).
    pub mmu_drops: u64,
    /// Frames discarded at the MAC for FCS errors (corruption).
    pub fcs_errors: u64,
    /// PFC pause frames received.
    pub pfc_rx: u64,
    /// PFC pause frames sent.
    pub pfc_tx: u64,
}

impl PortCounters {
    /// All drops visible at this port, as an interface-level discard
    /// counter would aggregate them.
    pub fn total_drops(&self) -> u64 {
        self.pipeline_drops + self.mmu_drops + self.fcs_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate() {
        let c =
            PortCounters { pipeline_drops: 3, mmu_drops: 2, fcs_errors: 1, ..Default::default() };
        assert_eq!(c.total_drops(), 6);
    }

    #[test]
    fn default_is_zero() {
        let c = PortCounters::default();
        assert_eq!(c.rx_pkts, 0);
        assert_eq!(c.total_drops(), 0);
    }
}
