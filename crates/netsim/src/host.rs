//! Hosts: rate-paced traffic generation, UDP echo responders for probe
//! traffic, per-flow receive accounting, and optional NIC telemetry.
//!
//! The paper's testbed servers carry Netronome SmartNICs that run NetSeer's
//! inter-switch drop detection for the edge links; a [`Host`] can carry the
//! same [`SwitchMonitor`] implementation on its single NIC port.

use crate::counters::PortCounters;
use crate::monitor::{Actions, EgressCtx, HookVerdict, IngressCtx, MgmtReport, SwitchMonitor};
use fet_packet::builder::{build_data_packet_in, classify, extract_flow, FrameKind};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::tcp::flags;
use fet_packet::FrameArena;
use fet_packet::{FlowKey, IpProtocol};
use fet_pdp::PacketMeta;
use std::collections::{HashMap, VecDeque};

/// Destination UDP port recognized as "echo this back" (probe responder).
pub const PROBE_ECHO_PORT: u16 = 7;

/// Host configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The host's IPv4 address.
    pub ip: Ipv4Addr,
    /// NIC line rate, Gbps.
    pub nic_gbps: f64,
    /// NIC transmit queue capacity, bytes.
    pub txq_cap_bytes: u64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            ip: Ipv4Addr::from_octets([10, 0, 0, 1]),
            nic_gbps: 25.0,
            txq_cap_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One application flow a host will transmit.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// 5-tuple (source must be this host).
    pub key: FlowKey,
    /// Total application bytes to send.
    pub total_bytes: u64,
    /// Payload bytes per packet.
    pub pkt_payload: usize,
    /// Pacing rate, Gbps.
    pub rate_gbps: f64,
    /// Start time, ns.
    pub start_ns: u64,
    /// DSCP marking (selects the fabric priority queue).
    pub dscp: u8,
}

/// Transmit-side progress of a flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowProgress {
    /// Bytes handed to the NIC so far.
    pub sent_bytes: u64,
    /// Packets emitted.
    pub pkts_sent: u64,
    /// True once the FIN-marked last packet was emitted.
    pub done: bool,
}

/// Receive-side statistics per flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxStats {
    /// Bytes received (frame payload lengths).
    pub bytes: u64,
    /// Packets received.
    pub pkts: u64,
    /// First arrival, ns.
    pub first_ns: u64,
    /// Last arrival, ns.
    pub last_ns: u64,
    /// FIN observed (flow completed in order).
    pub fin_seen: bool,
}

/// One measured probe RTT sample.
#[derive(Debug, Clone, Copy)]
pub struct ProbeSample {
    /// When the probe was sent, ns.
    pub sent_ns: u64,
    /// Round-trip time, ns.
    pub rtt_ns: u64,
    /// Probe target.
    pub target: Ipv4Addr,
}

/// Effects of host packet processing, for the engine.
#[derive(Debug, Default)]
pub struct HostEffects {
    /// True when the NIC TX queue gained frames and may need a kick.
    pub kick: bool,
    /// Management-plane reports from the NIC monitor.
    pub reports: Vec<MgmtReport>,
}

/// A simulated server.
pub struct Host {
    /// Device id.
    pub id: u32,
    /// Configuration.
    pub config: HostConfig,
    /// Flow transmit schedule.
    pub flows: Vec<(FlowSpec, FlowProgress)>,
    /// NIC counters.
    pub counters: PortCounters,
    /// Per-flow receive stats.
    pub rx_flows: HashMap<FlowKey, RxStats>,
    /// Probe RTT samples (Pingmesh substrate).
    pub probe_samples: Vec<ProbeSample>,
    /// Probes sent but not yet answered: probe id → sent time.
    outstanding_probes: HashMap<u16, (u64, Ipv4Addr)>,
    next_probe_id: u16,
    /// Lost-probe count (for probe loss statistics).
    pub probes_lost: u64,
    /// Optional NIC telemetry (NetSeer-on-SmartNIC).
    pub monitor: Option<Box<dyn SwitchMonitor>>,
    txq: VecDeque<Vec<u8>>,
    txq_bytes: u64,
    /// TX serializer busy flag (engine-managed).
    pub port_busy: bool,
    /// PFC pause deadline for the NIC (0 = not paused).
    pub paused_until: u64,
    /// Frames dropped because the TX queue overflowed.
    pub txq_drops: u64,
    /// Recycled frame buffers: emissions draw from here, consumed
    /// arrivals retire into it — steady-state sources never allocate.
    arena: FrameArena,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("ip", &self.config.ip)
            .finish_non_exhaustive()
    }
}

impl Host {
    /// Create a host.
    pub fn new(id: u32, config: HostConfig) -> Self {
        Host {
            id,
            config,
            flows: Vec::new(),
            counters: PortCounters::default(),
            rx_flows: HashMap::new(),
            probe_samples: Vec::new(),
            outstanding_probes: HashMap::new(),
            next_probe_id: 20_000,
            probes_lost: 0,
            monitor: None,
            txq: VecDeque::new(),
            txq_bytes: 0,
            port_busy: false,
            paused_until: 0,
            txq_drops: 0,
            arena: FrameArena::new(),
        }
    }

    /// Register a flow to transmit. Returns its index for scheduling.
    pub fn add_flow(&mut self, spec: FlowSpec) -> usize {
        self.flows.push((spec, FlowProgress::default()));
        self.flows.len() - 1
    }

    /// Emit the next packet of flow `idx`. Returns the inter-packet gap to
    /// the next emission (ns), or `None` when the flow just finished.
    /// The frame lands in the NIC TX queue (`kick` the port afterwards).
    pub fn emit_flow_packet(&mut self, idx: usize, _now_ns: u64) -> Option<u64> {
        let (spec, prog) = &mut self.flows[idx];
        if prog.done {
            return None;
        }
        let remaining = spec.total_bytes - prog.sent_bytes;
        let payload = (spec.pkt_payload as u64).min(remaining) as usize;
        let is_first = prog.sent_bytes == 0;
        let is_last = remaining <= spec.pkt_payload as u64;
        let tcp_flags = match spec.key.proto {
            IpProtocol::Tcp => {
                let mut f = flags::ACK;
                if is_first {
                    f |= flags::SYN;
                }
                if is_last {
                    f |= flags::FIN;
                }
                f
            }
            _ => 0,
        };
        let frame =
            build_data_packet_in(&mut self.arena, &spec.key, payload, tcp_flags, spec.dscp, 64);
        prog.sent_bytes += payload as u64;
        prog.pkts_sent += 1;
        if is_last {
            prog.done = true;
        }
        let gap = crate::time::tx_time_ns(frame.len(), spec.rate_gbps);
        let done = prog.done;
        self.enqueue_tx(frame);
        if done {
            None
        } else {
            Some(gap)
        }
    }

    /// Push a frame into the NIC TX queue (drops on overflow).
    pub fn enqueue_tx(&mut self, frame: Vec<u8>) -> bool {
        if self.txq_bytes + frame.len() as u64 > self.config.txq_cap_bytes {
            self.txq_drops += 1;
            return false;
        }
        self.txq_bytes += frame.len() as u64;
        self.txq.push_back(frame);
        true
    }

    /// Dequeue the next frame for transmission, honoring PFC pause and
    /// running the NIC egress telemetry hook.
    pub fn dequeue_tx(&mut self, now_ns: u64) -> Option<(Vec<u8>, Vec<MgmtReport>)> {
        if now_ns < self.paused_until {
            return None;
        }
        let mut frame = self.txq.pop_front()?;
        self.txq_bytes -= frame.len() as u64;
        let mut reports = Vec::new();
        if let Some(m) = self.monitor.as_mut() {
            let mut meta = PacketMeta::arriving(0, now_ns, frame.len());
            meta.egress_ts_ns = now_ns;
            meta.flow = extract_flow(&frame);
            let ctx = EgressCtx {
                now_ns,
                node: self.id,
                port: 0,
                queue: 0,
                peer_tagged: true,
                meta: &meta,
            };
            let mut actions = Actions::new();
            m.on_egress(&ctx, &mut frame, &mut actions);
            reports = actions.reports;
            for e in actions.emit {
                self.enqueue_tx(e.frame);
            }
        }
        self.counters.tx_pkts += 1;
        self.counters.tx_bytes += frame.len() as u64;
        Some((frame, reports))
    }

    /// True when the TX queue holds frames and is not paused.
    pub fn has_transmittable(&self, now_ns: u64) -> bool {
        !self.txq.is_empty() && now_ns >= self.paused_until
    }

    /// Handle an arriving frame.
    pub fn handle_arrival(&mut self, now_ns: u64, frame: Vec<u8>, fcs_error: bool) -> HostEffects {
        let mut fx = HostEffects::default();
        self.counters.rx_pkts += 1;
        self.counters.rx_bytes += frame.len() as u64;
        if fcs_error {
            self.counters.fcs_errors += 1;
            return fx;
        }

        let mut frame = frame;
        if let Some(m) = self.monitor.as_mut() {
            let ctx = IngressCtx { now_ns, node: self.id, port: 0, peer_tagged: true };
            let mut actions = Actions::new();
            let verdict = m.on_ingress(&ctx, &mut frame, &mut actions);
            fx.reports.extend(actions.reports);
            for e in actions.emit {
                fx.kick |= self.enqueue_tx(e.frame);
            }
            if verdict == HookVerdict::Consume {
                return fx;
            }
        }

        match classify(&frame) {
            FrameKind::Pfc => {
                self.counters.pfc_rx += 1;
                if let Ok(pfc) = fet_packet::pfc::PfcFrame::new_checked(
                    &frame[fet_packet::ETHERNET_HEADER_LEN..],
                ) {
                    for prio in 0..fet_packet::pfc::PFC_CLASSES {
                        if pfc.pauses(prio) {
                            let dur = fet_packet::pfc::quanta_to_ns(
                                pfc.timer(prio),
                                self.config.nic_gbps,
                            );
                            self.paused_until = self.paused_until.max(now_ns + dur);
                        } else if pfc.resumes(prio) {
                            self.paused_until = 0;
                            fx.kick = true;
                        }
                    }
                }
            }
            FrameKind::Ipv4 => {
                if let Some(flow) = extract_flow(&frame) {
                    self.receive_data(now_ns, &frame, flow, &mut fx);
                }
            }
            _ => {}
        }
        // The frame terminates here (hosts never forward); retire its
        // buffer so the next emission reuses it instead of allocating.
        self.arena.put(frame);
        fx
    }

    fn receive_data(&mut self, now_ns: u64, frame: &[u8], flow: FlowKey, fx: &mut HostEffects) {
        // Probe responder: echo UDP packets aimed at the echo port.
        if flow.proto == IpProtocol::Udp && flow.dport == PROBE_ECHO_PORT {
            let reply_key = flow.reversed();
            let reply = build_data_packet_in(&mut self.arena, &reply_key, 8, 0, 46 << 2 >> 2, 64);
            fx.kick |= self.enqueue_tx(reply);
            return;
        }
        // Probe reply: match an outstanding probe by id (our sport).
        if flow.proto == IpProtocol::Udp && flow.sport == PROBE_ECHO_PORT {
            if let Some((sent, target)) = self.outstanding_probes.remove(&flow.dport) {
                self.probe_samples.push(ProbeSample {
                    sent_ns: sent,
                    rtt_ns: now_ns - sent,
                    target,
                });
            }
            return;
        }
        // Ordinary data: account it.
        let s = self
            .rx_flows
            .entry(flow)
            .or_insert_with(|| RxStats { first_ns: now_ns, ..Default::default() });
        s.bytes += frame.len() as u64;
        s.pkts += 1;
        s.last_ns = now_ns;
        if flow.proto == IpProtocol::Tcp {
            if let Ok(t) = fet_packet::tcp::TcpSegment::new_checked(
                &frame[fet_packet::ETHERNET_HEADER_LEN + fet_packet::IPV4_HEADER_LEN..],
            ) {
                if t.is_fin() {
                    s.fin_seen = true;
                }
            }
        }
    }

    /// Send one probe to `target`. Returns true if enqueued (kick the port).
    pub fn send_probe(&mut self, now_ns: u64, target: Ipv4Addr) -> bool {
        let id = self.next_probe_id;
        self.next_probe_id = self.next_probe_id.wrapping_add(1).max(20_000);
        let key = FlowKey::udp(self.config.ip, id, target, PROBE_ECHO_PORT);
        let frame = build_data_packet_in(&mut self.arena, &key, 8, 0, 0, 64);
        self.outstanding_probes.insert(id, (now_ns, target));
        self.enqueue_tx(frame)
    }

    /// Expire probes older than `timeout_ns` (counted as lost).
    pub fn expire_probes(&mut self, now_ns: u64, timeout_ns: u64) {
        let before = self.outstanding_probes.len();
        self.outstanding_probes.retain(|_, (sent, _)| now_ns.saturating_sub(*sent) < timeout_ns);
        self.probes_lost += (before - self.outstanding_probes.len()) as u64;
    }

    /// Total bytes currently waiting in the TX queue.
    pub fn txq_depth_bytes(&self) -> u64 {
        self.txq_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::builder::build_data_packet;

    fn host() -> Host {
        Host::new(
            7,
            HostConfig {
                ip: Ipv4Addr::from_octets([10, 0, 0, 5]),
                nic_gbps: 25.0,
                txq_cap_bytes: 1 << 20,
            },
        )
    }

    fn spec(total: u64, pkt: usize) -> FlowSpec {
        FlowSpec {
            key: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, 0, 5]),
                1234,
                Ipv4Addr::from_octets([10, 0, 1, 9]),
                80,
            ),
            total_bytes: total,
            pkt_payload: pkt,
            rate_gbps: 10.0,
            start_ns: 0,
            dscp: 0,
        }
    }

    #[test]
    fn flow_emission_paces_and_finishes() {
        let mut h = host();
        let idx = h.add_flow(spec(2_500, 1_000));
        // 3 packets: 1000 + 1000 + 500.
        assert!(h.emit_flow_packet(idx, 0).is_some());
        assert!(h.emit_flow_packet(idx, 0).is_some());
        assert_eq!(h.emit_flow_packet(idx, 0), None);
        assert!(h.flows[idx].1.done);
        assert_eq!(h.flows[idx].1.pkts_sent, 3);
        assert_eq!(h.flows[idx].1.sent_bytes, 2_500);
        // Emitting a finished flow is a no-op.
        assert_eq!(h.emit_flow_packet(idx, 0), None);
        assert_eq!(h.flows[idx].1.pkts_sent, 3);
    }

    #[test]
    fn syn_and_fin_are_marked() {
        let mut h = host();
        let idx = h.add_flow(spec(2_000, 1_000));
        let _ = h.emit_flow_packet(idx, 0);
        let _ = h.emit_flow_packet(idx, 0);
        let (first, _) = h.dequeue_tx(0).unwrap();
        let (last, _) = h.dequeue_tx(0).unwrap();
        let t = |f: &Vec<u8>| {
            fet_packet::tcp::TcpSegment::new_checked(
                &f[fet_packet::ETHERNET_HEADER_LEN + fet_packet::IPV4_HEADER_LEN..],
            )
            .unwrap()
            .flags()
        };
        assert!(t(&first) & flags::SYN != 0);
        assert!(t(&first) & flags::FIN == 0);
        assert!(t(&last) & flags::FIN != 0);
    }

    #[test]
    fn rx_accounting_tracks_flow() {
        let mut h = host();
        let key = FlowKey::tcp(Ipv4Addr::from_octets([10, 0, 9, 9]), 5, h.config.ip, 80);
        let f1 = build_data_packet(&key, 500, flags::SYN, 0, 60);
        let f2 = build_data_packet(&key, 500, flags::FIN, 0, 60);
        let _ = h.handle_arrival(100, f1, false);
        let _ = h.handle_arrival(200, f2, false);
        let s = h.rx_flows[&key];
        assert_eq!(s.pkts, 2);
        assert_eq!(s.first_ns, 100);
        assert_eq!(s.last_ns, 200);
        assert!(s.fin_seen);
    }

    #[test]
    fn probe_echo_roundtrip() {
        let mut a = host();
        let mut b = Host::new(
            8,
            HostConfig { ip: Ipv4Addr::from_octets([10, 0, 1, 9]), ..HostConfig::default() },
        );
        assert!(a.send_probe(1_000, b.config.ip));
        let (probe, _) = a.dequeue_tx(1_000).unwrap();
        // b echoes.
        let fx = b.handle_arrival(2_000, probe, false);
        assert!(fx.kick);
        let (reply, _) = b.dequeue_tx(2_000).unwrap();
        // a measures RTT.
        let _ = a.handle_arrival(3_500, reply, false);
        assert_eq!(a.probe_samples.len(), 1);
        assert_eq!(a.probe_samples[0].rtt_ns, 2_500);
        assert_eq!(a.probe_samples[0].target, b.config.ip);
    }

    #[test]
    fn probe_expiry_counts_losses() {
        let mut a = host();
        a.send_probe(0, Ipv4Addr::from_octets([10, 0, 1, 9]));
        a.expire_probes(2_000_000, 1_000_000);
        assert_eq!(a.probes_lost, 1);
        assert_eq!(a.probe_samples.len(), 0);
    }

    #[test]
    fn txq_overflow_drops() {
        let mut h = Host::new(1, HostConfig { txq_cap_bytes: 100, ..HostConfig::default() });
        assert!(h.enqueue_tx(vec![0; 80]));
        assert!(!h.enqueue_tx(vec![0; 80]));
        assert_eq!(h.txq_drops, 1);
    }

    #[test]
    fn pfc_pause_blocks_nic() {
        let mut h = host();
        h.enqueue_tx(vec![0; 64]);
        let pause = fet_packet::builder::build_pfc_frame(0, 1000);
        let _ = h.handle_arrival(0, pause, false);
        assert!(h.paused_until > 0);
        assert!(h.dequeue_tx(1).is_none());
        assert!(!h.has_transmittable(1));
        let resume = fet_packet::builder::build_pfc_frame(0, 0);
        let fx = h.handle_arrival(2, resume, false);
        assert!(fx.kick);
        assert!(h.dequeue_tx(3).is_some());
    }

    #[test]
    fn corrupted_frame_counted_not_processed() {
        let mut h = host();
        let key = FlowKey::tcp(Ipv4Addr::from_octets([10, 0, 9, 9]), 5, h.config.ip, 80);
        let f = build_data_packet(&key, 100, 0, 0, 60);
        let _ = h.handle_arrival(0, f, true);
        assert_eq!(h.counters.fcs_errors, 1);
        assert!(h.rx_flows.is_empty());
    }
}
