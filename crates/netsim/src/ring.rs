//! Lock-free synchronization primitives for the parallel executor:
//! bounded SPSC rings for cross-shard event hand-off and an atomic
//! epoch-counter barrier.
//!
//! Both replace `std::sync::mpsc` channels on the parallel hot path.
//! An mpsc send is an allocation plus a mutex-protected queue operation;
//! the rings below are one slot write and one `Release` store, and the
//! barrier is one `fetch_add` plus a bounded spin.
//!
//! # Memory-ordering contract (see DESIGN.md §16)
//!
//! [`SpscRing`] has exactly one producer and one consumer (in the
//! executor: `rings[src][dst]` is written only by worker `src` and
//! drained only by worker `dst`):
//!
//! * the producer loads `head` with `Acquire` (so it observes slot reads
//!   the consumer made before releasing them for reuse), writes the
//!   slot, then stores `tail` with `Release` — publishing the slot
//!   contents;
//! * the consumer loads `tail` with `Acquire` (pairing with the
//!   producer's `Release`, making the slot write visible), reads the
//!   slots, then stores `head` with `Release` — returning them.
//!
//! A **full** ring never blocks: blocking would deadlock the executor's
//! BSP schedule, where the consumer only drains *after* the next
//! barrier. The producer instead diverts to a mutex-guarded overflow
//! vector and counts a stall; the consumer appends the overflow after
//! the ring, preserving per-pair FIFO order (once the ring is full it
//! stays full until the next drain, so ring entries strictly precede
//! overflow entries). Stall counts are deterministic for a fixed shard
//! count and ring capacity because the BSP schedule is.
//!
//! [`EpochBarrier`] is a sense-free generation barrier: arrival is
//! `fetch_add(AcqRel)` on `arrived`; the last arriver resets `arrived`
//! (Relaxed — no thread touches it again this generation) and bumps
//! `epoch` with `Release`; waiters spin on `epoch` with `Acquire`.
//! The AcqRel arrival makes every pre-barrier write of every thread
//! visible to the last arriver, and the Release/Acquire epoch hand-off
//! extends that visibility to all waiters — so data published before
//! `wait()` (ring contents, floor slots) may be read freely after it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Pads and aligns to a cache line so the producer-owned and
/// consumer-owned indices never false-share.
#[repr(align(128))]
struct CacheAligned<T>(T);

/// Bounded single-producer single-consumer ring with a non-blocking
/// mutex-guarded overflow lane (see module docs for the contract).
pub(crate) struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Next slot to read; written only by the consumer.
    head: CacheAligned<AtomicUsize>,
    /// Next slot to write; written only by the producer.
    tail: CacheAligned<AtomicUsize>,
    /// Spill lane for pushes against a full ring.
    overflow: Mutex<Vec<T>>,
    /// Pushes that found the ring full and took the overflow lane.
    stalls: AtomicU64,
}

// SAFETY: the UnsafeCell slots are accessed under the SPSC protocol
// proven by the head/tail orderings above; one producer thread and one
// consumer thread never touch the same slot concurrently.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Ring with capacity `cap` rounded up to a power of two (min 2).
    pub(crate) fn new(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        SpscRing {
            buf: (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
            mask: cap - 1,
            head: CacheAligned(AtomicUsize::new(0)),
            tail: CacheAligned(AtomicUsize::new(0)),
            overflow: Mutex::new(Vec::new()),
            stalls: AtomicU64::new(0),
        }
    }

    /// Producer side: enqueue `v`. Never blocks; a full ring diverts to
    /// the overflow lane and counts a stall.
    pub(crate) fn push(&self, v: T) {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            self.overflow.lock().expect("overflow lane poisoned").push(v);
            return;
        }
        // SAFETY: `tail - head <= mask` means slot `tail & mask` is not
        // owned by the consumer; only this (sole) producer writes it.
        unsafe { (*self.buf[tail & self.mask].get()).write(v) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: move every queued element (ring first, then
    /// overflow — per-pair FIFO) into `out`. Returns the count moved.
    pub(crate) fn drain_into(&self, out: &mut Vec<T>) -> u64 {
        let mut n = 0u64;
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) were published by the
            // producer's Release store of `tail`; only this (sole)
            // consumer reads them.
            out.push(unsafe { (*self.buf[i & self.mask].get()).assume_init_read() });
            i = i.wrapping_add(1);
            n += 1;
        }
        self.head.0.store(tail, Ordering::Release);
        let mut spilled = self.overflow.lock().expect("overflow lane poisoned");
        n += spilled.len() as u64;
        out.append(&mut spilled);
        n
    }

    /// Total pushes that found the ring full (overflow-lane trips).
    pub(crate) fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut i = head;
        while i != tail {
            // SAFETY: exclusive access; [head, tail) slots are initialized.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Spin-then-park barrier for a fixed party count, reusable across
/// generations.
///
/// The fast path is pure atomics: arrival is one `fetch_add`, release is
/// one epoch bump, and waiters spin briefly expecting the release within
/// a few hundred cycles (true when every worker has its own core). If
/// the release does not arrive within the spin budget — or the host has
/// fewer cores than parties, where spinning would steal the CPU from the
/// very thread being waited on — waiters park on a condvar. The releaser
/// always bumps the epoch *before* taking the lock and notifying, and
/// parkers re-check the epoch under the lock, so no wakeup is lost.
pub(crate) struct EpochBarrier {
    arrived: AtomicUsize,
    epoch: AtomicU64,
    parties: usize,
    /// Spin iterations before parking; 0 when cores < parties.
    spin_budget: u32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl EpochBarrier {
    /// Barrier releasing when `parties` threads have called `wait`.
    pub(crate) fn new(parties: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        EpochBarrier {
            arrived: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            parties,
            spin_budget: if cores > parties { 1 << 10 } else { 0 },
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Epochs completed so far (generation counter).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Block until all parties arrive. Establishes happens-before from
    /// every pre-wait write to every post-wait read.
    pub(crate) fn wait(&self) {
        let gen = self.epoch.load(Ordering::Relaxed);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Reset before the Release bump: stragglers of this
            // generation never touch `arrived` again, and newcomers of
            // the next generation can only arrive after observing the
            // bump below.
            self.arrived.store(0, Ordering::Relaxed);
            self.epoch.fetch_add(1, Ordering::Release);
            // Taking the lock orders this release against any parker
            // between its epoch re-check and its cv.wait (it holds the
            // lock for both), so notify_all cannot be missed.
            drop(self.lock.lock().expect("barrier lock poisoned"));
            self.cv.notify_all();
            return;
        }
        for _ in 0..self.spin_budget {
            if self.epoch.load(Ordering::Acquire) != gen {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().expect("barrier lock poisoned");
        while self.epoch.load(Ordering::Acquire) == gen {
            guard = self.cv.wait(guard).expect("barrier lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn spsc_fifo_within_capacity() {
        let r: SpscRing<u32> = SpscRing::new(8);
        for v in 0..8 {
            r.push(v);
        }
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(r.stalls(), 0);
    }

    #[test]
    fn full_ring_overflows_without_losing_order() {
        let r: SpscRing<u32> = SpscRing::new(4);
        for v in 0..11 {
            r.push(v);
        }
        assert_eq!(r.stalls(), 7, "pushes 4..11 overflow a 4-slot ring");
        let mut out = Vec::new();
        assert_eq!(r.drain_into(&mut out), 11);
        assert_eq!(out, (0..11).collect::<Vec<_>>(), "ring then overflow preserves FIFO");
        // Ring is reusable after a drain.
        r.push(99);
        out.clear();
        assert_eq!(r.drain_into(&mut out), 1);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let r: SpscRing<u8> = SpscRing::new(5);
        for v in 0..8 {
            r.push(v); // 5 → 8 slots, so no stalls
        }
        assert_eq!(r.stalls(), 0);
    }

    #[test]
    fn drop_releases_undrained_elements() {
        // Vec<u8> payloads: miri/leak-checkers would flag a leak here.
        let r: SpscRing<Vec<u8>> = SpscRing::new(4);
        r.push(vec![1; 100]);
        r.push(vec![2; 100]);
        drop(r);
    }

    #[test]
    fn spsc_cross_thread_transfer() {
        let r: SpscRing<u64> = SpscRing::new(64);
        let done = AtomicBool::new(false);
        const N: u64 = 100_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for v in 0..N {
                    r.push(v);
                }
                done.store(true, Ordering::Release);
            });
            s.spawn(|| {
                let mut got: Vec<u64> = Vec::new();
                loop {
                    let finished = done.load(Ordering::Acquire);
                    r.drain_into(&mut got);
                    if finished && got.len() as u64 == N {
                        break;
                    }
                    std::hint::spin_loop();
                }
                // Every element exactly once. Ring entries are FIFO but a
                // drain can interleave with overflow spills, so sort.
                got.sort_unstable();
                assert_eq!(got, (0..N).collect::<Vec<_>>());
            });
        });
    }

    #[test]
    fn barrier_rounds_are_lockstep() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 200;
        let b = EpochBarrier::new(PARTIES);
        let counters: Vec<AtomicU64> = (0..ROUNDS).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for (i, c) in counters.iter().enumerate() {
                        c.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        // After the barrier every party's increment for
                        // round i must be visible.
                        assert_eq!(c.load(Ordering::Relaxed), PARTIES as u64, "round {i}");
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(b.epoch(), (ROUNDS * 2) as u64);
    }
}
