//! Seeded per-device virtual clocks for time-fault experiments.
//!
//! Every fault class so far (loss, crashes, corruption, overload, hostile
//! bytes) stops exactly at time: device event stamps, watchdog heartbeats
//! and analytics windows all assume one perfect global clock. This module
//! makes wrong clocks a first-class, deterministic fault: a [`ClockSpec`]
//! describes a fleet-wide *envelope* of clock misbehaviour (offset, drift,
//! periodic steps, freeze), and each device draws its concrete parameters
//! from a dedicated [`Pcg32`] stream keyed by `(seed, device)`.
//!
//! Two invariants keep the rest of the system honest:
//!
//! * **Global time stays the ordering authority.** A [`DeviceClock`] only
//!   rewrites *recorded stamps*; scheduling, cadences and transport all
//!   keep running on simulator time, so serial/parallel determinism and
//!   the event *set* of a run are untouched by clock faults — only the
//!   timestamps written into events differ.
//! * **Inactive specs are draw-free.** `ClockSpec::default()` constructs
//!   an identity clock without consuming a single RNG draw, so every
//!   pre-existing seed reproduces bit-for-bit.

use crate::rng::Pcg32;

/// Dedicated RNG stream for per-device clock parameter draws ("CK").
pub const CLOCK_STREAM: u64 = 0x434b;

/// Fleet-wide clock-fault envelope. Each field bounds the *magnitude* of
/// one misbehaviour; per-device signs and exact values are drawn
/// deterministically in [`DeviceClock::new`]. All-zero (the default)
/// means a perfect clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClockSpec {
    /// Maximum absolute initial offset from global time, ns. Each device
    /// draws a fixed offset uniformly from `[-offset_ns, +offset_ns]`.
    pub offset_ns: u64,
    /// Maximum absolute frequency error, parts-per-million. Each device
    /// draws a fixed drift uniformly from `[-drift_ppm, +drift_ppm]`;
    /// skew then grows linearly with global time.
    pub drift_ppm: u32,
    /// Period of discrete clock steps (NTP slews, leap smears), ns.
    /// 0 disables stepping.
    pub step_every_ns: u64,
    /// Maximum absolute step magnitude, ns. Every `step_every_ns` the
    /// local clock jumps by the device's drawn step (same signed value
    /// each period, so steps accumulate monotonically per device).
    pub step_ns: u64,
    /// Probability a device's clock freezes entirely (a wedged PTP
    /// daemon): local time stops advancing at `freeze_after_ns`.
    pub freeze_prob: f64,
    /// Global time at which frozen clocks stop, ns.
    pub freeze_after_ns: u64,
}

impl ClockSpec {
    /// A perfect clock: no offset, drift, steps or freezes.
    pub const fn none() -> Self {
        ClockSpec {
            offset_ns: 0,
            drift_ppm: 0,
            step_every_ns: 0,
            step_ns: 0,
            freeze_prob: 0.0,
            freeze_after_ns: 0,
        }
    }

    /// True when any clock fault can fire. Inactive specs build identity
    /// clocks without consuming RNG draws.
    pub fn is_active(&self) -> bool {
        self.offset_ns > 0
            || self.drift_ppm > 0
            || (self.step_every_ns > 0 && self.step_ns > 0)
            || self.freeze_prob > 0.0
    }

    /// Upper bound on `|local - global|` over `[0, horizon_ns]` for *any*
    /// device drawn from this spec, assuming no freeze fired. Useful for
    /// choosing analytics lateness bounds that must cover a whole fleet.
    pub fn max_abs_skew_ns(&self, horizon_ns: u64) -> u64 {
        let drift = (u128::from(horizon_ns) * u128::from(self.drift_ppm)) / 1_000_000;
        let steps = match horizon_ns.checked_div(self.step_every_ns) {
            Some(n) => u128::from(n) * u128::from(self.step_ns),
            None => 0,
        };
        (u128::from(self.offset_ns) + drift + steps).min(u128::from(u64::MAX)) as u64
    }
}

/// One device's concrete virtual clock: a pure function from global
/// simulator time to the device's local reading. Integer math throughout
/// so identical parameters give identical stamps on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceClock {
    /// Fixed initial offset, ns (signed).
    offset_ns: i64,
    /// Fixed frequency error, ppm (signed).
    drift_ppm: i64,
    /// Step period, ns (0 = no steps).
    step_every_ns: u64,
    /// Signed per-period step, ns.
    step_ns: i64,
    /// Global time past which the local clock stops ([`u64::MAX`] = never).
    freeze_at_ns: u64,
    /// False for the identity clock (no faults drawn).
    active: bool,
}

impl Default for DeviceClock {
    fn default() -> Self {
        DeviceClock::identity()
    }
}

impl DeviceClock {
    /// The perfect clock: `local_time(t) == t` for all `t`.
    pub const fn identity() -> Self {
        DeviceClock {
            offset_ns: 0,
            drift_ppm: 0,
            step_every_ns: 0,
            step_ns: 0,
            freeze_at_ns: u64::MAX,
            active: false,
        }
    }

    /// Draw this device's concrete clock parameters from the spec.
    ///
    /// Inactive specs return [`DeviceClock::identity`] **without creating
    /// an RNG** — the draw-free path that keeps pre-existing seeds
    /// reproducing bit-for-bit. Active specs draw on a per-device
    /// [`CLOCK_STREAM`] generator, so enabling clock faults never
    /// perturbs any other subsystem's stream.
    pub fn new(spec: &ClockSpec, seed: u64, device: u32) -> Self {
        if !spec.is_active() {
            return DeviceClock::identity();
        }
        let mut rng =
            Pcg32::new(seed ^ (u64::from(device).wrapping_mul(0x9e37_79b9) << 13), CLOCK_STREAM);
        let offset_ns = draw_signed(&mut rng, spec.offset_ns);
        let drift_ppm = draw_signed(&mut rng, u64::from(spec.drift_ppm));
        let step_ns = if spec.step_every_ns > 0 { draw_signed(&mut rng, spec.step_ns) } else { 0 };
        let freeze_at_ns =
            if rng.chance(spec.freeze_prob) { spec.freeze_after_ns } else { u64::MAX };
        DeviceClock {
            offset_ns,
            drift_ppm,
            step_every_ns: spec.step_every_ns,
            step_ns,
            freeze_at_ns,
            active: true,
        }
    }

    /// Is this the identity clock?
    pub fn is_identity(&self) -> bool {
        !self.active
    }

    /// Did this device's clock freeze?
    pub fn is_frozen(&self) -> bool {
        self.freeze_at_ns != u64::MAX
    }

    /// The device's local reading of global time `global_ns`.
    ///
    /// Pure saturating integer math: `local = t + offset + t·drift/1e6 +
    /// ⌊t/period⌋·step`, with `t` capped at the freeze point. Negative
    /// excursions clamp at 0 (a clock cannot report before the epoch).
    pub fn local_time(&self, global_ns: u64) -> u64 {
        if !self.active {
            return global_ns;
        }
        let t = global_ns.min(self.freeze_at_ns);
        let mut local = t as i128 + i128::from(self.offset_ns);
        local += (t as i128 * i128::from(self.drift_ppm)) / 1_000_000;
        if let Some(n) = t.checked_div(self.step_every_ns) {
            local += n as i128 * i128::from(self.step_ns);
        }
        local.clamp(0, u64::MAX as i128) as u64
    }

    /// Signed skew `local - global` at `global_ns`, saturating at the
    /// `i64` range.
    pub fn skew_at(&self, global_ns: u64) -> i64 {
        let local = i128::from(self.local_time(global_ns));
        (local - global_ns as i128).clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
    }

    /// A stable 64-bit digest of the drawn parameters, for determinism
    /// fingerprints: identical clocks hash identically on every shard
    /// count, and the identity clock hashes to 0.
    pub fn fingerprint(&self) -> u64 {
        if !self.active {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.offset_ns as u64,
            self.drift_ppm as u64,
            self.step_every_ns,
            self.step_ns as u64,
            self.freeze_at_ns,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Uniform signed draw in `[-max, +max]`. Draws exactly twice (magnitude,
/// sign) so the per-device draw count is independent of the spec values.
fn draw_signed(rng: &mut Pcg32, max: u64) -> i64 {
    let max = max.min(i64::MAX as u64);
    let mag = rng.next_u64() % (max + 1);
    if rng.next_u32() & 1 == 1 {
        -(mag as i64)
    } else {
        mag as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_inactive_and_identity() {
        let spec = ClockSpec::default();
        assert!(!spec.is_active());
        assert_eq!(spec, ClockSpec::none());
        let clock = DeviceClock::new(&spec, 42, 7);
        assert!(clock.is_identity());
        for t in [0u64, 1, 1_000_000, u64::MAX] {
            assert_eq!(clock.local_time(t), t);
            assert_eq!(clock.skew_at(t.min(u64::MAX / 2)), 0);
        }
        assert_eq!(clock.fingerprint(), 0);
    }

    #[test]
    fn same_seed_same_clock_different_devices_differ() {
        let spec = ClockSpec { offset_ns: 1_000_000, drift_ppm: 200, ..ClockSpec::none() };
        let a = DeviceClock::new(&spec, 99, 3);
        let b = DeviceClock::new(&spec, 99, 3);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let clocks: Vec<DeviceClock> = (0..16).map(|d| DeviceClock::new(&spec, 99, d)).collect();
        assert!(clocks.windows(2).any(|w| w[0] != w[1]), "devices must draw independently");
    }

    #[test]
    fn offset_and_drift_shape_the_skew() {
        let spec = ClockSpec { offset_ns: 500, ..ClockSpec::none() };
        let c = DeviceClock::new(&spec, 5, 1);
        // Pure offset: skew constant over time.
        assert_eq!(c.skew_at(0), c.skew_at(1_000_000_000));
        assert!(c.skew_at(0).unsigned_abs() <= 500);

        let spec = ClockSpec { drift_ppm: 1000, ..ClockSpec::none() };
        let mut found_drift = false;
        for d in 0..8 {
            let c = DeviceClock::new(&spec, 5, d);
            let early = c.skew_at(1_000_000);
            let late = c.skew_at(1_000_000_000);
            if early != 0 {
                found_drift = true;
                // 1000 ppm over 1s = ±1ms; drift grows linearly.
                assert!(late.unsigned_abs() <= 1_000_000, "skew {late}");
                assert_eq!(late.signum(), early.signum());
                assert!(late.unsigned_abs() >= early.unsigned_abs());
            }
        }
        assert!(found_drift, "at least one device should draw non-zero drift");
    }

    #[test]
    fn steps_accumulate_per_period() {
        let spec = ClockSpec { step_every_ns: 1_000, step_ns: 100, ..ClockSpec::none() };
        for d in 0..8 {
            let c = DeviceClock::new(&spec, 11, d);
            let s1 = c.skew_at(1_500);
            let s5 = c.skew_at(5_500);
            // 1 period vs 5 periods elapsed: skew scales with the count.
            assert_eq!(s5, s1 * 5, "device {d}");
        }
    }

    #[test]
    fn frozen_clock_stops() {
        let spec = ClockSpec {
            offset_ns: 10,
            freeze_prob: 1.0,
            freeze_after_ns: 2_000,
            ..ClockSpec::none()
        };
        let c = DeviceClock::new(&spec, 7, 0);
        assert!(c.is_frozen());
        let frozen = c.local_time(2_000);
        assert_eq!(c.local_time(3_000), frozen);
        assert_eq!(c.local_time(u64::MAX), frozen);
        assert!(c.local_time(1_000) <= frozen);
    }

    #[test]
    fn local_time_is_monotone_without_negative_steps() {
        let spec = ClockSpec { offset_ns: 5_000, drift_ppm: 500, ..ClockSpec::none() };
        for d in 0..8 {
            let c = DeviceClock::new(&spec, 13, d);
            let mut prev = c.local_time(0);
            for t in (0..2_000_000u64).step_by(10_007) {
                let now = c.local_time(t);
                assert!(now >= prev, "device {d} went backwards at {t}");
                prev = now;
            }
        }
    }

    #[test]
    fn spec_bound_covers_every_drawn_device() {
        let spec = ClockSpec {
            offset_ns: 10_000,
            drift_ppm: 2_000,
            step_every_ns: 100_000,
            step_ns: 1_000,
            ..ClockSpec::none()
        };
        let horizon = 10_000_000u64;
        let bound = spec.max_abs_skew_ns(horizon);
        for d in 0..32 {
            let c = DeviceClock::new(&spec, 21, d);
            for t in (0..=horizon).step_by(997_001) {
                assert!(
                    c.skew_at(t).unsigned_abs() <= bound,
                    "device {d} t {t} skew {} bound {bound}",
                    c.skew_at(t)
                );
            }
        }
    }

    #[test]
    fn clamps_at_zero_never_panics() {
        let spec = ClockSpec { offset_ns: u64::from(u32::MAX) * 4, ..ClockSpec::none() };
        for d in 0..8 {
            let c = DeviceClock::new(&spec, 3, d);
            let _ = c.local_time(0);
            let _ = c.local_time(u64::MAX);
        }
    }
}
