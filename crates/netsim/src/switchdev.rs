//! The simulated programmable switch: ingress pipeline (parse → ACL → TTL →
//! LPM route → ECMP), shared-buffer MMU, per-priority egress queues with
//! PFC, and the monitor hook points listed in [`crate::monitor`].

use crate::counters::PortCounters;
use crate::mmu::{Mmu, MmuConfig, MmuVerdict};
use crate::monitor::{
    Actions, EgressCtx, HookVerdict, IngressCtx, MgmtReport, RoutedCtx, SwitchMonitor,
};
use crate::tracer::{GroundTruth, GtEvent};
use fet_packet::builder::{classify, extract_flow, FrameKind};
use fet_packet::ethernet::ETHERNET_HEADER_LEN;
use fet_packet::event::{DropCode, EventType};
use fet_packet::ipv4::{Ipv4Addr, Ipv4Packet};
use fet_packet::pfc::{quanta_to_ns, PfcFrame, PFC_CLASSES};
use fet_packet::FlowKey;
use fet_pdp::table::{AclAction, AclTable, LpmTable};
use fet_pdp::{HashUnit, PacketMeta};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Number of egress priority queues per port.
pub const QUEUES: u8 = 8;

/// The queue used for monitor-emitted high-priority traffic
/// (loss notifications ride "an independent queue in high priority").
pub const HIGH_PRIO_QUEUE: u8 = 7;

/// Finite packet-processing capacity (middlebox model, paper §3.7).
/// A device with one drops packets it cannot process in time — the
/// "buffer overflow" class of local middlebox events.
#[derive(Debug, Clone, Copy)]
pub struct ProcessingModel {
    /// Processing throughput, Gbps.
    pub gbps: f64,
    /// Backlog the processing queue absorbs, bytes.
    pub buffer_bytes: u64,
}

/// Static switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of front-panel ports.
    pub ports: u8,
    /// MTU, bytes (frames larger than this are pipeline-dropped).
    pub mtu: usize,
    /// MMU configuration.
    pub mmu: MmuConfig,
    /// Queuing delay above which a packet is a congestion event, ns.
    pub congestion_threshold_ns: u64,
    /// Bitmask of PFC-protected (lossless) priorities.
    pub pfc_priorities: u8,
    /// PFC pause quanta sent when crossing XOFF.
    pub pfc_quanta: u16,
    /// ECMP hash seed (per-switch, like a per-device hash rotation).
    pub ecmp_seed: u32,
    /// Optional processing-capacity limit (None = ASIC line rate).
    /// Middleboxes (firewalls, load balancers) set this; overload drops
    /// are reported with [`DropCode::Overload`].
    pub processing: Option<ProcessingModel>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 32,
            mtu: 1600,
            mmu: MmuConfig::default(),
            congestion_threshold_ns: 20 * crate::time::MICROS,
            pfc_priorities: 0,
            pfc_quanta: 4096,
            ecmp_seed: 1,
            processing: None,
        }
    }
}

/// Effects an arrival produced, for the engine to act on.
#[derive(Debug, Default)]
pub struct ArrivalEffects {
    /// Ports that enqueued traffic and may need a dequeue scheduled.
    pub kick_ports: Vec<u8>,
    /// PFC frames to transmit immediately (bypass queues, MAC control).
    pub pfc_frames: Vec<(u8, Vec<u8>)>,
    /// Management-plane reports from the monitor.
    pub reports: Vec<MgmtReport>,
}

/// Result of dequeuing one frame for transmission.
#[derive(Debug)]
pub struct DequeueResult {
    /// The (possibly monitor-rewritten) frame to put on the wire.
    pub frame: Vec<u8>,
    /// Extra effects (PFC resumes, monitor actions).
    pub effects: ArrivalEffects,
}

/// One simulated switch.
pub struct SwitchDevice {
    /// Device id (assigned by the engine).
    pub id: u32,
    /// Human-readable name (e.g. "tor0", "agg1", "core0").
    pub name: String,
    /// Configuration.
    pub config: SwitchConfig,
    /// IPv4 routing table: destination prefix → ECMP port set.
    pub routes: LpmTable<Vec<u8>>,
    /// Ingress ACL.
    pub acl: AclTable,
    /// Port link state (true = up).
    pub port_up: Vec<bool>,
    /// Ports whose peer also runs telemetry (sequence tagging applies).
    pub tag_ports: Vec<bool>,
    /// Per-port counters.
    pub counters: Vec<PortCounters>,
    /// The attached telemetry monitor, if any.
    pub monitor: Option<Box<dyn SwitchMonitor>>,
    mmu: Mmu,
    queues: Vec<VecDeque<(Vec<u8>, PacketMeta)>>,
    /// TX pause deadline per (port, prio); 0 = not paused.
    paused_until: Vec<u64>,
    /// For each (egress port, prio) crossing XOFF: the ingress ports we
    /// paused, with the time their pause expires (PAUSE is refreshed while
    /// the queue stays above XOFF; XON resumes exactly these ports).
    paused_upstreams: HashMap<(u8, u8), HashMap<u8, u64>>,
    ecmp_hash: HashUnit,
    /// Middlebox processing serializer (None for plain switches).
    processor: Option<fet_pdp::RateLimitedChannel>,
    /// Exact per-flow (ingress, egress) map for the ground-truth oracle's
    /// path-change record (unbounded — this is the oracle, not the DUT).
    gt_paths: HashMap<FlowKey, (u8, u8)>,
    /// Whether each port's serializer is currently busy.
    pub port_busy: Vec<bool>,
}

impl std::fmt::Debug for SwitchDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchDevice")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl SwitchDevice {
    /// Create a switch.
    pub fn new(id: u32, name: impl Into<String>, config: SwitchConfig) -> Self {
        let ports = usize::from(config.ports);
        let mmu = Mmu::new(config.ports, config.mmu);
        SwitchDevice {
            id,
            name: name.into(),
            routes: LpmTable::new(),
            acl: AclTable::new(),
            port_up: vec![true; ports],
            tag_ports: vec![false; ports],
            counters: vec![PortCounters::default(); ports],
            monitor: None,
            mmu,
            queues: (0..ports * usize::from(QUEUES)).map(|_| VecDeque::new()).collect::<Vec<_>>(),
            paused_until: vec![0; ports * PFC_CLASSES],
            paused_upstreams: HashMap::new(),
            ecmp_hash: HashUnit::new("ecmp", config.ecmp_seed, 32),
            processor: config
                .processing
                .map(|p| fet_pdp::RateLimitedChannel::new("processing", p.gbps, p.buffer_bytes)),
            gt_paths: HashMap::new(),
            port_busy: vec![false; ports],
            config,
        }
    }

    /// Attach a telemetry monitor.
    pub fn set_monitor(&mut self, m: Box<dyn SwitchMonitor>) {
        self.monitor = Some(m);
    }

    /// Detach the telemetry monitor (a switch-CPU crash). Frames keep
    /// forwarding while the monitor is away — the data plane does not stop
    /// when the CPU dies — but nothing is observed, tagged, or reported
    /// until a monitor is reattached via
    /// [`set_monitor`](SwitchDevice::set_monitor). The periodic monitor
    /// timer keeps firing (and finding no monitor), so reattachment needs
    /// no re-arming.
    pub fn take_monitor(&mut self) -> Option<Box<dyn SwitchMonitor>> {
        self.monitor.take()
    }

    fn qidx(&self, port: u8, queue: u8) -> usize {
        usize::from(port) * usize::from(QUEUES) + usize::from(queue)
    }

    /// Is TX currently paused for (port, prio)?
    pub fn tx_paused(&self, now_ns: u64, port: u8, prio: u8) -> bool {
        now_ns < self.paused_until[self.qidx(port, prio)]
    }

    /// Queue depth in packets for diagnostics.
    pub fn queue_len(&self, port: u8, queue: u8) -> usize {
        self.queues[self.qidx(port, queue)].len()
    }

    /// MMU accessor for diagnostics.
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    fn record_drop(
        &self,
        gt: &mut GroundTruth,
        now_ns: u64,
        ty: EventType,
        flow: Option<FlowKey>,
        code: DropCode,
        acl_rule: Option<u32>,
    ) {
        gt.record(GtEvent {
            time_ns: now_ns,
            device: self.id,
            ty,
            flow,
            drop_code: Some(code),
            acl_rule,
        });
    }

    /// Handle a frame arriving on `port` at `now_ns`.
    pub fn handle_arrival(
        &mut self,
        now_ns: u64,
        port: u8,
        mut frame: Vec<u8>,
        fcs_error: bool,
        gt: &mut GroundTruth,
    ) -> ArrivalEffects {
        let mut fx = ArrivalEffects::default();
        let p = usize::from(port);
        self.counters[p].rx_pkts += 1;
        self.counters[p].rx_bytes += frame.len() as u64;

        // Corrupted frames die at the MAC; nothing downstream of the MAC —
        // including the monitor — ever sees them (paper §3.3).
        if fcs_error {
            self.counters[p].fcs_errors += 1;
            return fx;
        }

        let mut meta = PacketMeta::arriving(port, now_ns, frame.len());

        // Monitor ingress hook (strip sequence tags, consume notifications).
        let mut actions = Actions::new();
        if let Some(m) = self.monitor.as_mut() {
            let ctx = IngressCtx { now_ns, node: self.id, port, peer_tagged: self.tag_ports[p] };
            let verdict = m.on_ingress(&ctx, &mut frame, &mut actions);
            self.apply_actions(now_ns, actions, gt, &mut fx);
            if verdict == HookVerdict::Consume {
                return fx;
            }
            meta.frame_len = frame.len();
        } else {
            // Hop-local sequence tags are parsed out by the ASIC data plane;
            // that happens whether or not a switch CPU (monitor) is attached.
            // A crashed/detached monitor must therefore never leak a tag to
            // the next hop — only the *observation* stops during downtime.
            use fet_packet::ethernet::{EtherType, EthernetFrame};
            if EthernetFrame::new_unchecked(&frame).ethertype() == EtherType::NetSeerSeq
                && fet_packet::builder::strip_seqtag_in_place(&mut frame).is_ok()
            {
                meta.frame_len = frame.len();
            }
        }

        match classify(&frame) {
            FrameKind::Pfc => {
                self.handle_pfc(now_ns, port, &frame, &mut fx);
                fx
            }
            FrameKind::Ipv4 => {
                self.ingress_pipeline(now_ns, port, frame, meta, gt, &mut fx);
                fx
            }
            FrameKind::LossNotification => {
                // A notification not consumed by a monitor (none attached):
                // nothing useful to do — count it as handled.
                fx
            }
            FrameKind::Cebp | FrameKind::Other => {
                // CEBPs never appear on external wires; garbage is dropped.
                self.counters[p].pipeline_drops += 1;
                self.record_drop(
                    gt,
                    now_ns,
                    EventType::PipelineDrop,
                    None,
                    DropCode::ParseError,
                    None,
                );
                fx
            }
        }
    }

    fn handle_pfc(&mut self, now_ns: u64, port: u8, frame: &[u8], fx: &mut ArrivalEffects) {
        self.counters[usize::from(port)].pfc_rx += 1;
        let Ok(pfc) = PfcFrame::new_checked(&frame[ETHERNET_HEADER_LEN..]) else {
            return;
        };
        for prio in 0..PFC_CLASSES {
            let i = self.qidx(port, prio as u8);
            if pfc.pauses(prio) {
                let dur = quanta_to_ns(pfc.timer(prio), 100.0);
                self.paused_until[i] = now_ns + dur;
                if let Some(m) = self.monitor.as_mut() {
                    m.on_pause_state(now_ns, port, prio as u8, true);
                }
            } else if pfc.resumes(prio) {
                self.paused_until[i] = 0;
                if let Some(m) = self.monitor.as_mut() {
                    m.on_pause_state(now_ns, port, prio as u8, false);
                }
                fx.kick_ports.push(port);
            }
        }
    }

    fn ingress_pipeline(
        &mut self,
        now_ns: u64,
        port: u8,
        frame: Vec<u8>,
        meta: PacketMeta,
        gt: &mut GroundTruth,
        fx: &mut ArrivalEffects,
    ) {
        let ictx = IngressCtx {
            now_ns,
            node: self.id,
            port,
            peer_tagged: self.tag_ports[usize::from(port)],
        };
        let Some(flow) = extract_flow(&frame) else {
            self.pipeline_drop(now_ns, &ictx, &frame, None, DropCode::ParseError, None, 0, gt, fx);
            return;
        };

        // Middlebox processing capacity: a device that cannot keep up
        // drops the packet locally (§3.7's "buffer overflow" event).
        if let Some(proc) = self.processor.as_mut() {
            if proc.offer(now_ns, frame.len()).is_none() {
                self.pipeline_drop(
                    now_ns,
                    &ictx,
                    &frame,
                    Some(flow),
                    DropCode::Overload,
                    None,
                    0,
                    gt,
                    fx,
                );
                return;
            }
        }

        // ACL.
        let (verdict, rule_id) = self.acl.evaluate(&flow);
        if verdict == AclAction::Deny {
            self.pipeline_drop(
                now_ns,
                &ictx,
                &frame,
                Some(flow),
                DropCode::AclDeny,
                None,
                rule_id,
                gt,
                fx,
            );
            return;
        }

        // TTL.
        let mut frame = frame;
        {
            let off = self.l3_offset(&frame);
            let mut ip = Ipv4Packet::new_unchecked(&mut frame[off..]);
            if ip.ttl() <= 1 {
                ip.decrement_ttl();
                self.pipeline_drop(
                    now_ns,
                    &ictx,
                    &frame,
                    Some(flow),
                    DropCode::TtlExpired,
                    None,
                    0,
                    gt,
                    fx,
                );
                return;
            }
            ip.decrement_ttl();
        }

        // Route.
        let Some(ecmp) = self.routes.lookup(flow.dst).filter(|v| !v.is_empty()).cloned() else {
            self.pipeline_drop(
                now_ns,
                &ictx,
                &frame,
                Some(flow),
                DropCode::TableMiss,
                None,
                0,
                gt,
                fx,
            );
            return;
        };
        let egress_port = ecmp[self.ecmp_hash.hash_flow(&flow) as usize % ecmp.len()];
        if !self.port_up[usize::from(egress_port)] {
            self.pipeline_drop(
                now_ns,
                &ictx,
                &frame,
                Some(flow),
                DropCode::PortDown,
                Some(egress_port),
                0,
                gt,
                fx,
            );
            return;
        }

        // MTU.
        if frame.len() > self.config.mtu {
            self.pipeline_drop(
                now_ns,
                &ictx,
                &frame,
                Some(flow),
                DropCode::MtuExceeded,
                Some(egress_port),
                0,
                gt,
                fx,
            );
            return;
        }

        let queue = {
            let off = self.l3_offset(&frame);
            let ip = Ipv4Packet::new_unchecked(&frame[off..]);
            ip.dscp() >> 3
        };

        // Ground truth: path change (first packet of a flow, or port pair
        // changed).
        let prev = self.gt_paths.insert(flow, (port, egress_port));
        if prev != Some((port, egress_port)) {
            gt.record(GtEvent {
                time_ns: now_ns,
                device: self.id,
                ty: EventType::PathChange,
                flow: Some(flow),
                drop_code: None,
                acl_rule: None,
            });
        }

        let queue_paused = self.tx_paused(now_ns, egress_port, queue);
        let rctx = RoutedCtx {
            now_ns,
            node: self.id,
            ingress_port: port,
            egress_port,
            queue,
            queue_paused,
            flow,
        };

        // Ground truth: pause event (packet heading to a paused queue).
        if queue_paused {
            gt.record(GtEvent {
                time_ns: now_ns,
                device: self.id,
                ty: EventType::Pause,
                flow: Some(flow),
                drop_code: None,
                acl_rule: None,
            });
        }

        let mut actions = Actions::new();
        if let Some(m) = self.monitor.as_mut() {
            m.on_routed(&rctx, &frame, &mut actions);
        }
        self.apply_actions(now_ns, actions, gt, fx);

        // MMU admission.
        let mut meta = meta;
        meta.egress_port = Some(egress_port);
        meta.queue = queue;
        meta.flow = Some(flow);
        meta.frame_len = frame.len();
        self.enqueue(now_ns, frame, meta, rctx, gt, fx);
    }

    /// Try to enqueue a frame whose routing is already resolved (also used
    /// for monitor-emitted frames).
    fn enqueue(
        &mut self,
        now_ns: u64,
        frame: Vec<u8>,
        meta: PacketMeta,
        rctx: RoutedCtx,
        gt: &mut GroundTruth,
        fx: &mut ArrivalEffects,
    ) {
        let eport = rctx.egress_port;
        let queue = rctx.queue;
        match self.mmu.admit(eport, queue, frame.len() as u64) {
            MmuVerdict::Admit => {
                let qi = self.qidx(eport, queue);
                self.queues[qi].push_back((frame, meta));
                fx.kick_ports.push(eport);
                // PFC XOFF: pause the contributing ingress port, and keep
                // refreshing the pause while the queue stays above XOFF
                // (real PFC re-arms before the quanta expire).
                if self.config.pfc_priorities & (1 << queue) != 0
                    && self.mmu.above_xoff(eport, queue)
                {
                    let pause_ns = fet_packet::pfc::quanta_to_ns(self.config.pfc_quanta, 100.0);
                    let ups = self.paused_upstreams.entry((eport, queue)).or_default();
                    let entry = ups.entry(rctx.ingress_port).or_insert(0);
                    // Refresh once 60% of the previous pause has elapsed.
                    if now_ns + (pause_ns * 2 / 5) >= *entry {
                        *entry = now_ns + pause_ns;
                        let pfc = fet_packet::builder::build_pfc_frame(
                            usize::from(queue),
                            self.config.pfc_quanta,
                        );
                        self.counters[usize::from(rctx.ingress_port)].pfc_tx += 1;
                        fx.pfc_frames.push((rctx.ingress_port, pfc));
                    }
                }
            }
            MmuVerdict::Drop => {
                self.counters[usize::from(eport)].mmu_drops += 1;
                // Monitor-emitted frames (meta.flow unset) are not data
                // traffic: losing one is a telemetry capacity limit, not a
                // ground-truth flow event.
                if meta.flow.is_some() {
                    self.record_drop(
                        gt,
                        now_ns,
                        EventType::MmuDrop,
                        Some(rctx.flow),
                        DropCode::BufferFull,
                        None,
                    );
                    let mut actions = Actions::new();
                    if let Some(m) = self.monitor.as_mut() {
                        m.on_mmu_drop(&rctx, &frame, &mut actions);
                    }
                    self.apply_actions(now_ns, actions, gt, fx);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn pipeline_drop(
        &mut self,
        now_ns: u64,
        ictx: &IngressCtx,
        frame: &[u8],
        flow: Option<FlowKey>,
        code: DropCode,
        egress_port: Option<u8>,
        acl_rule: u32,
        gt: &mut GroundTruth,
        fx: &mut ArrivalEffects,
    ) {
        self.counters[usize::from(ictx.port)].pipeline_drops += 1;
        self.record_drop(
            gt,
            now_ns,
            EventType::PipelineDrop,
            flow,
            code,
            (code == DropCode::AclDeny).then_some(acl_rule),
        );
        let mut actions = Actions::new();
        if let Some(m) = self.monitor.as_mut() {
            m.on_pipeline_drop(ictx, frame, flow, code, egress_port, acl_rule, &mut actions);
        }
        self.apply_actions(now_ns, actions, gt, fx);
    }

    /// Apply actions produced outside the packet path (timer hooks).
    pub fn apply_external_actions(
        &mut self,
        now_ns: u64,
        actions: Actions,
        gt: &mut GroundTruth,
        fx: &mut ArrivalEffects,
    ) {
        self.apply_actions(now_ns, actions, gt, fx);
    }

    /// Apply monitor actions: enqueue emitted frames, forward reports.
    fn apply_actions(
        &mut self,
        now_ns: u64,
        actions: Actions,
        gt: &mut GroundTruth,
        fx: &mut ArrivalEffects,
    ) {
        fx.reports.extend(actions.reports);
        for e in actions.emit {
            if usize::from(e.out_port) >= usize::from(self.config.ports)
                || !self.port_up[usize::from(e.out_port)]
            {
                continue;
            }
            let queue = if e.high_priority { HIGH_PRIO_QUEUE } else { 0 };
            let flow = extract_flow(&e.frame).unwrap_or(FlowKey::tcp(
                Ipv4Addr::from_u32(0),
                0,
                Ipv4Addr::from_u32(0),
                0,
            ));
            let mut meta = PacketMeta::arriving(e.out_port, now_ns, e.frame.len());
            meta.egress_port = Some(e.out_port);
            meta.queue = queue;
            let rctx = RoutedCtx {
                now_ns,
                node: self.id,
                ingress_port: e.out_port,
                egress_port: e.out_port,
                queue,
                queue_paused: false,
                flow,
            };
            self.enqueue(now_ns, e.frame, meta, rctx, gt, fx);
        }
    }

    /// Offset of the IPv4 header inside the frame (skips a sequence tag).
    fn l3_offset(&self, frame: &[u8]) -> usize {
        use fet_packet::ethernet::{EtherType, EthernetFrame};
        let eth = EthernetFrame::new_unchecked(frame);
        if eth.ethertype() == EtherType::NetSeerSeq {
            ETHERNET_HEADER_LEN + fet_packet::SEQTAG_LEN
        } else {
            ETHERNET_HEADER_LEN
        }
    }

    /// Dequeue the next frame from `port` for transmission, if any.
    /// Picks the highest-priority unpaused non-empty queue.
    pub fn dequeue(
        &mut self,
        now_ns: u64,
        port: u8,
        gt: &mut GroundTruth,
    ) -> Option<DequeueResult> {
        let mut fx = ArrivalEffects::default();
        let chosen = (0..QUEUES).rev().find(|&q| {
            !self.queues[self.qidx(port, q)].is_empty() && !self.tx_paused(now_ns, port, q)
        })?;
        let qi = self.qidx(port, chosen);
        let (mut frame, mut meta) = self.queues[qi].pop_front()?;
        self.mmu.release(port, chosen, frame.len() as u64);

        // PFC XON: resume upstreams we had paused, now that we drained.
        if self.config.pfc_priorities & (1 << chosen) != 0 && self.mmu.below_xon(port, chosen) {
            if let Some(ups) = self.paused_upstreams.remove(&(port, chosen)) {
                for up in ups.into_keys() {
                    let pfc = fet_packet::builder::build_pfc_frame(usize::from(chosen), 0);
                    self.counters[usize::from(up)].pfc_tx += 1;
                    fx.pfc_frames.push((up, pfc));
                }
            }
        }

        meta.egress_ts_ns = now_ns;

        // Ground truth: congestion (queuing delay over threshold). Only data
        // traffic counts — monitor-emitted frames carry a zero flow.
        if meta.flow.is_some() && meta.queuing_delay_ns() > self.config.congestion_threshold_ns {
            gt.record(GtEvent {
                time_ns: now_ns,
                device: self.id,
                ty: EventType::Congestion,
                flow: meta.flow,
                drop_code: None,
                acl_rule: None,
            });
        }

        let mut actions = Actions::new();
        if let Some(m) = self.monitor.as_mut() {
            let ctx = EgressCtx {
                now_ns,
                node: self.id,
                port,
                queue: chosen,
                peer_tagged: self.tag_ports[usize::from(port)],
                meta: &meta,
            };
            m.on_egress(&ctx, &mut frame, &mut actions);
        }
        self.apply_actions(now_ns, actions, gt, &mut fx);

        let pc = &mut self.counters[usize::from(port)];
        pc.tx_pkts += 1;
        pc.tx_bytes += frame.len() as u64;

        Some(DequeueResult { frame, effects: fx })
    }

    /// True if any queue on `port` could transmit right now.
    pub fn has_transmittable(&self, now_ns: u64, port: u8) -> bool {
        (0..QUEUES).any(|q| {
            !self.queues[self.qidx(port, q)].is_empty() && !self.tx_paused(now_ns, port, q)
        })
    }

    /// Earliest pause expiry among nonempty paused queues of `port`
    /// (engine schedules a retry then).
    pub fn earliest_pause_expiry(&self, now_ns: u64, port: u8) -> Option<u64> {
        (0..QUEUES)
            .filter(|&q| !self.queues[self.qidx(port, q)].is_empty())
            .map(|q| self.paused_until[self.qidx(port, q)])
            .filter(|&t| t > now_ns)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::builder::build_data_packet;
    use fet_packet::tcp::flags;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::from_octets([a, b, c, d])
    }

    fn flow() -> FlowKey {
        FlowKey::tcp(ip(10, 0, 0, 1), 1000, ip(10, 0, 1, 1), 80)
    }

    fn sw() -> SwitchDevice {
        let mut s = SwitchDevice::new(0, "sw0", SwitchConfig::default());
        s.routes.insert(ip(10, 0, 1, 0), 24, vec![2]);
        s
    }

    #[test]
    fn forwards_routed_packet() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, flags::SYN, 0, 64);
        let fx = s.handle_arrival(0, 1, pkt, false, &mut gt);
        assert_eq!(fx.kick_ports, vec![2]);
        assert_eq!(s.queue_len(2, 0), 1);
        let out = s.dequeue(0, 2, &mut gt).unwrap();
        assert!(extract_flow(&out.frame).is_some());
        assert_eq!(s.counters[2].tx_pkts, 1);
        // TTL decremented in flight.
        let ipp = Ipv4Packet::new_unchecked(&out.frame[ETHERNET_HEADER_LEN..]);
        assert_eq!(ipp.ttl(), 63);
    }

    #[test]
    fn route_miss_is_pipeline_drop() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let other = FlowKey::tcp(ip(10, 0, 0, 1), 1, ip(172, 16, 0, 1), 80);
        let pkt = build_data_packet(&other, 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        assert_eq!(s.counters[1].pipeline_drops, 1);
        assert_eq!(gt.count(EventType::PipelineDrop), 1);
        assert_eq!(gt.events()[0].drop_code, Some(DropCode::TableMiss));
    }

    #[test]
    fn ttl_expiry_drops() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 1);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        let drops: Vec<_> = gt.events().iter().filter_map(|e| e.drop_code).collect();
        assert_eq!(drops, vec![DropCode::TtlExpired]);
    }

    #[test]
    fn acl_deny_drops_with_rule_id() {
        use fet_pdp::table::{AclAction, AclRule};
        let mut s = sw();
        s.acl.install(AclRule {
            rule_id: 42,
            priority: 1,
            src: None,
            dst: None,
            sport: None,
            dport: Some(80),
            proto: None,
            action: AclAction::Deny,
        });
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        assert_eq!(gt.events()[0].drop_code, Some(DropCode::AclDeny));
        assert_eq!(gt.events()[0].acl_rule, Some(42));
    }

    #[test]
    fn port_down_drops() {
        let mut s = sw();
        s.port_up[2] = false;
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        assert_eq!(gt.events()[0].drop_code, Some(DropCode::PortDown));
    }

    #[test]
    fn oversize_frame_drops() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 1700, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        assert_eq!(gt.events()[0].drop_code, Some(DropCode::MtuExceeded));
    }

    #[test]
    fn fcs_error_dies_at_mac() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let fx = s.handle_arrival(0, 1, pkt, true, &mut gt);
        assert!(fx.kick_ports.is_empty());
        assert_eq!(s.counters[1].fcs_errors, 1);
        // No pipeline drop recorded — corruption is recorded at the link.
        assert_eq!(gt.events().len(), 0);
    }

    #[test]
    fn first_packet_records_path_change_gt() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt.clone(), false, &mut gt);
        assert_eq!(gt.count(EventType::PathChange), 1);
        // Second packet of the same flow: no new event.
        let _ = s.handle_arrival(10, 1, pkt, false, &mut gt);
        assert_eq!(gt.count(EventType::PathChange), 1);
    }

    #[test]
    fn congestion_gt_when_delay_exceeds_threshold() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        // Dequeue 30us later (> 20us threshold).
        let _ = s.dequeue(30 * crate::time::MICROS, 2, &mut gt).unwrap();
        assert_eq!(gt.count(EventType::Congestion), 1);
    }

    #[test]
    fn mmu_exhaustion_records_mmu_drop() {
        let mut cfg = SwitchConfig::default();
        cfg.mmu.total_bytes = 2_000;
        cfg.mmu.alpha = 10.0;
        let mut s = SwitchDevice::new(0, "s", cfg);
        s.routes.insert(ip(10, 0, 1, 0), 24, vec![2]);
        let mut gt = GroundTruth::new();
        for _ in 0..10 {
            let pkt = build_data_packet(&flow(), 400, 0, 0, 64);
            let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        }
        assert!(gt.count(EventType::MmuDrop) > 0);
        assert!(s.counters[2].mmu_drops > 0);
    }

    #[test]
    fn pfc_pause_blocks_dequeue_until_expiry() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        // Receive a PAUSE for priority 0 on port 2.
        let pfc = fet_packet::builder::build_pfc_frame(0, 1000);
        let _ = s.handle_arrival(10, 2, pfc, false, &mut gt);
        assert!(s.tx_paused(11, 2, 0));
        assert!(s.dequeue(11, 2, &mut gt).is_none());
        let expiry = s.earliest_pause_expiry(11, 2).unwrap();
        assert!(expiry > 11);
        // After expiry it flows again.
        assert!(s.dequeue(expiry + 1, 2, &mut gt).is_some());
    }

    #[test]
    fn pfc_resume_frame_unblocks() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        let pause = fet_packet::builder::build_pfc_frame(0, 60000);
        let _ = s.handle_arrival(10, 2, pause, false, &mut gt);
        assert!(s.dequeue(20, 2, &mut gt).is_none());
        let resume = fet_packet::builder::build_pfc_frame(0, 0);
        let fx = s.handle_arrival(30, 2, resume, false, &mut gt);
        assert!(fx.kick_ports.contains(&2));
        assert!(s.dequeue(31, 2, &mut gt).is_some());
    }

    #[test]
    fn pause_gt_recorded_for_packets_to_paused_queue() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pause = fet_packet::builder::build_pfc_frame(0, 60000);
        let _ = s.handle_arrival(0, 2, pause, false, &mut gt);
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(10, 1, pkt, false, &mut gt);
        assert_eq!(gt.count(EventType::Pause), 1);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn xoff_emits_pause_to_upstream() {
        let mut cfg = SwitchConfig::default();
        cfg.pfc_priorities = 0x01;
        cfg.mmu.pfc_xoff_bytes = 300;
        cfg.mmu.pfc_xon_bytes = 100;
        let mut s = SwitchDevice::new(0, "s", cfg);
        s.routes.insert(ip(10, 0, 1, 0), 24, vec![2]);
        let mut gt = GroundTruth::new();
        let mut sent_pfc = false;
        for _ in 0..5 {
            let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
            let fx = s.handle_arrival(0, 1, pkt, false, &mut gt);
            sent_pfc |= !fx.pfc_frames.is_empty();
        }
        assert!(sent_pfc, "XOFF crossing should emit PFC");
        assert!(s.counters[1].pfc_tx >= 1);
        // Draining emits a resume.
        let mut resumed = false;
        for t in 0..5 {
            if let Some(r) = s.dequeue(t, 2, &mut gt) {
                resumed |= !r.effects.pfc_frames.is_empty();
            }
        }
        assert!(resumed, "XON crossing should emit resume");
    }

    #[test]
    fn high_priority_queue_preempts() {
        let mut s = sw();
        let mut gt = GroundTruth::new();
        let pkt = build_data_packet(&flow(), 100, 0, 0, 64);
        let _ = s.handle_arrival(0, 1, pkt, false, &mut gt);
        // A high-DSCP packet lands in a higher queue and leaves first.
        let urgent = build_data_packet(&flow(), 100, 0, 63, 64);
        let _ = s.handle_arrival(1, 1, urgent, false, &mut gt);
        let first = s.dequeue(2, 2, &mut gt).unwrap();
        let ipp = Ipv4Packet::new_unchecked(&first.frame[ETHERNET_HEADER_LEN..]);
        assert_eq!(ipp.dscp(), 63);
    }
}
