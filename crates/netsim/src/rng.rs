//! Deterministic PCG-32 random number generator.
//!
//! The simulator's reproducibility contract requires every stochastic
//! decision (link faults, ECMP seeds in workloads) to flow from explicit
//! seeds — never from global or time-based entropy.

/// PCG-XSH-RR 64/32 (O'Neill 2014).
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Seed the generator; `stream` selects an independent sequence.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 { state: 0, inc: (stream << 1) | 1 };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Next 32 uniform random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Returns 0 for bound 0.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection-free approximation is fine here;
        // simulator fairness does not need exact uniformity at this scale.
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 1);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(7, 7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_values() {
        let mut r = Pcg32::new(7, 7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Pcg32::new(1, 1);
        assert!(!r.chance(0.0));
        for _ in 0..100 {
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = Pcg32::new(3, 3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn chance_rate_roughly_right() {
        let mut r = Pcg32::new(9, 9);
        let hits = (0..100_000).filter(|_| r.chance(0.01)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }
}
