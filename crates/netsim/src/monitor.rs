//! The monitor hook interface — the boundary between the simulated switch
//! hardware and any telemetry system running on it.
//!
//! NetSeer (crates/core) and every baseline (crates/baselines) implement
//! [`SwitchMonitor`]. The switch calls the hooks at the same points a
//! programmable pipeline would expose:
//!
//! | hook               | pipeline position                               |
//! |--------------------|-------------------------------------------------|
//! | `on_ingress`       | after the ingress MAC, before parsing/routing — may rewrite the frame (strip a seq tag) or consume it (a notification addressed to this switch) |
//! | `on_routed`        | end of the ingress pipeline: flow, ports, queue and pause state resolved |
//! | `on_pipeline_drop` | wherever the pipeline kills a packet            |
//! | `on_mmu_drop`      | the MMU's drop path (NetSeer redirects this)    |
//! | `on_egress`        | egress pipeline at dequeue: queuing delay known — may rewrite the frame (insert a seq tag) |
//! | `on_timer`         | periodic control-plane tick (CPU pacing, expiry) |
//!
//! Hooks communicate back through [`Actions`]: frames to transmit (e.g.
//! loss notifications on a high-priority queue) and management-plane
//! reports whose bytes are metered for the overhead figures.

use crate::counters::PortCounters;
use fet_packet::event::DropCode;
use fet_packet::FlowKey;
use fet_pdp::PacketMeta;
use std::any::Any;

/// Context for ingress-side hooks.
#[derive(Debug, Clone, Copy)]
pub struct IngressCtx {
    /// Simulation time, ns.
    pub now_ns: u64,
    /// This device's id.
    pub node: u32,
    /// Arrival port.
    pub port: u8,
    /// True when the upstream neighbor runs telemetry too (frames on this
    /// port are expected to carry sequence tags).
    pub peer_tagged: bool,
}

/// Context after routing: everything the end of the ingress pipeline knows.
#[derive(Debug, Clone, Copy)]
pub struct RoutedCtx {
    /// Simulation time, ns.
    pub now_ns: u64,
    /// This device's id.
    pub node: u32,
    /// Arrival port.
    pub ingress_port: u8,
    /// Chosen egress port.
    pub egress_port: u8,
    /// Egress priority queue.
    pub queue: u8,
    /// True if that queue is currently PFC-paused.
    pub queue_paused: bool,
    /// The packet's flow.
    pub flow: FlowKey,
}

/// Context for the egress pipeline (at dequeue).
#[derive(Debug, Clone, Copy)]
pub struct EgressCtx<'a> {
    /// Simulation time, ns.
    pub now_ns: u64,
    /// This device's id.
    pub node: u32,
    /// Egress port.
    pub port: u8,
    /// Egress queue the packet waited in.
    pub queue: u8,
    /// True when the downstream neighbor runs telemetry (insert seq tags).
    pub peer_tagged: bool,
    /// Packet metadata (timestamps filled in; queuing delay available).
    pub meta: &'a PacketMeta,
}

/// What `on_ingress` decided about the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookVerdict {
    /// Keep processing the (possibly rewritten) frame.
    Continue,
    /// The monitor consumed the frame (e.g. a loss notification); the
    /// switch stops processing it.
    Consume,
}

/// A frame the monitor asks the switch to transmit.
#[derive(Debug, Clone)]
pub struct EmitFrame {
    /// Egress port to send on.
    pub out_port: u8,
    /// Complete Ethernet frame.
    pub frame: Vec<u8>,
    /// Send on the dedicated high-priority queue (notifications).
    pub high_priority: bool,
}

/// A management-plane report (metered for overhead accounting; contents
/// stay inside the monitor's own state).
#[derive(Debug, Clone)]
pub struct MgmtReport {
    /// Report size on the management network, bytes.
    pub bytes: usize,
    /// What kind of report (for per-step breakdowns).
    pub kind: &'static str,
}

/// Out-parameters for all hooks.
#[derive(Debug, Default)]
pub struct Actions {
    /// Frames to transmit.
    pub emit: Vec<EmitFrame>,
    /// Management-plane reports.
    pub reports: Vec<MgmtReport>,
}

impl Actions {
    /// Fresh empty action set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a frame for transmission.
    pub fn emit(&mut self, out_port: u8, frame: Vec<u8>, high_priority: bool) {
        self.emit.push(EmitFrame { out_port, frame, high_priority });
    }

    /// Meter a management-plane report.
    pub fn report(&mut self, bytes: usize, kind: &'static str) {
        self.reports.push(MgmtReport { bytes, kind });
    }

    /// True when nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.emit.is_empty() && self.reports.is_empty()
    }
}

/// The telemetry interface implemented by NetSeer and all baselines.
#[allow(unused_variables)]
pub trait SwitchMonitor: Any + Send {
    /// Frame arrived (after MAC, before parse). May rewrite or consume.
    fn on_ingress(
        &mut self,
        ctx: &IngressCtx,
        frame: &mut Vec<u8>,
        out: &mut Actions,
    ) -> HookVerdict {
        HookVerdict::Continue
    }

    /// Routing resolved (end of ingress pipeline).
    fn on_routed(&mut self, ctx: &RoutedCtx, frame: &[u8], out: &mut Actions) {}

    /// The pipeline dropped a packet.
    #[allow(clippy::too_many_arguments)]
    fn on_pipeline_drop(
        &mut self,
        ctx: &IngressCtx,
        frame: &[u8],
        flow: Option<FlowKey>,
        code: DropCode,
        egress_port: Option<u8>,
        acl_rule: u32,
        out: &mut Actions,
    ) {
    }

    /// The MMU dropped (or, under NetSeer, redirected) a packet.
    fn on_mmu_drop(&mut self, ctx: &RoutedCtx, frame: &[u8], out: &mut Actions) {}

    /// Egress pipeline at dequeue (queuing delay known). May rewrite.
    fn on_egress(&mut self, ctx: &EgressCtx<'_>, frame: &mut Vec<u8>, out: &mut Actions) {}

    /// PFC pause state of (port, priority) changed.
    fn on_pause_state(&mut self, now_ns: u64, port: u8, prio: u8, paused: bool) {}

    /// Periodic control-plane tick.
    fn on_timer(&mut self, now_ns: u64, counters: &[PortCounters], out: &mut Actions) {}

    /// Requested tick interval, ns (None = no timer).
    fn timer_interval_ns(&self) -> Option<u64> {
        None
    }

    /// Downcast support for experiment harnesses.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl SwitchMonitor for Nop {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn default_hooks_do_nothing() {
        let mut m = Nop;
        let ctx = IngressCtx { now_ns: 0, node: 0, port: 0, peer_tagged: false };
        let mut frame = vec![0u8; 64];
        let mut out = Actions::new();
        assert_eq!(m.on_ingress(&ctx, &mut frame, &mut out), HookVerdict::Continue);
        assert!(out.is_empty());
        assert_eq!(m.timer_interval_ns(), None);
    }

    #[test]
    fn actions_collect() {
        let mut a = Actions::new();
        a.emit(3, vec![1, 2, 3], true);
        a.report(128, "postcard");
        assert_eq!(a.emit.len(), 1);
        assert_eq!(a.emit[0].out_port, 3);
        assert!(a.emit[0].high_priority);
        assert_eq!(a.reports[0].bytes, 128);
        assert!(!a.is_empty());
    }

    #[test]
    fn downcasting_works() {
        struct WithState {
            hits: u32,
        }
        impl SwitchMonitor for WithState {
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut m: Box<dyn SwitchMonitor> = Box::new(WithState { hits: 5 });
        let s = m.as_any_mut().downcast_mut::<WithState>().unwrap();
        s.hits += 1;
        assert_eq!(m.as_any().downcast_ref::<WithState>().unwrap().hits, 6);
    }
}
