//! Hierarchical timer wheel for the engine's event queue.
//!
//! The global `BinaryHeap` the engine started with costs O(log n) per
//! schedule/pop with poor cache behavior; a fleet simulation pushes and
//! pops one event per packet per hop, so those constants bound every
//! figure. [`EventWheel`] replaces it with the classic hierarchical
//! timing-wheel layout (Varghese & Lauck), adapted to the determinism
//! contract: pops come out in exactly the canonical `(time, lane, seq)`
//! key order the serial/parallel equivalence proof is built on.
//!
//! # Layout
//!
//! * `LEVELS` levels of `SLOTS = 64` slots each. Level `l` has slot
//!   granularity `64^l` ns, and holds only events inside the *current
//!   aligned `64^(l+1)`-ns window* of the wheel's `base` time (the
//!   kernel-style aligned scheme, not a circular one — windows never
//!   wrap, so slot order is plain array order and occupancy is one `u64`
//!   bitmap per level).
//! * Events further out than the top window go to an **overflow heap**
//!   and are re-inserted when the wheel advances near them.
//! * Events that are *due* (`time <= base`) live in a small **ready
//!   heap** ordered by the full canonical key. A level-0 slot is one
//!   exact nanosecond, so dumping a slot into the ready heap and letting
//!   the heap order same-time events by `(lane, seq)` reproduces the
//!   `BinaryHeap` pop order bit-for-bit. The ready heap stays tiny: it
//!   only ever holds the events of the single timestamp being drained,
//!   plus same-time events scheduled while draining it.
//!
//! # Invariants
//!
//! 1. `ready` holds every queued event with `time <= base`; wheel levels
//!    and overflow hold only `time > base`.
//! 2. A level-`l` entry lies in the same aligned `64^(l+1)` window as
//!    `base` (enforced at insert; `base` only grows, and it only crosses
//!    a window boundary when every slot inside that window is empty or
//!    cascaded first).
//! 3. `base` never decreases.
//!
//! Together these make `pop` globally key-ordered: everything in the
//! wheel is strictly later in time than everything in `ready`, and
//! `ready` is a key-ordered heap.
//!
//! Cancellation is lazy: [`EventWheel::cancel`] tombstones a key, and
//! pops skip tombstoned entries. The engine itself never cancels (it
//! parks controls behind `Option`), but the scheduler API supports it so
//! alternative monitors can re-arm timers.

use crate::engine::{EventKey, QEntry};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Slots per level; 64 so each level's occupancy is a single `u64`.
const SLOTS: usize = 64;
/// log2(SLOTS).
const SHIFT: u32 = 6;
/// Wheel levels. Four levels span `64^4` ns ≈ 16.8 ms from `base` —
/// beyond the default simulation horizons, so overflow is rare (probe
/// rounds, far-future controls).
const LEVELS: usize = 4;

/// Hierarchical timer wheel holding [`QEntry`] events, popped in exact
/// canonical `(time, lane, seq)` order.
pub struct EventWheel {
    /// Current time floor: all events with `time <= base` are in `ready`.
    base: u64,
    /// `levels[l][s]` holds events with granularity `64^l`.
    levels: Vec<Vec<Vec<QEntry>>>,
    /// Occupancy bitmap per level (bit `s` = slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Events due now (or in the past), ordered by full key.
    ready: BinaryHeap<Reverse<QEntry>>,
    /// Events beyond the top window, ordered by full key.
    overflow: BinaryHeap<Reverse<QEntry>>,
    /// Live (non-tombstoned) entry count.
    len: usize,
    /// Tombstoned keys not yet physically removed.
    cancelled: HashSet<EventKey>,
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// Empty wheel based at t = 0.
    pub fn new() -> Self {
        EventWheel {
            base: 0,
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            occupied: [0; LEVELS],
            ready: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Number of live events queued.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events are queued.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index of `t` at `level`.
    #[inline]
    fn slot_of(t: u64, level: usize) -> usize {
        ((t >> (SHIFT * level as u32)) & (SLOTS as u64 - 1)) as usize
    }

    /// True when `t` is inside the same aligned level-`(level+1)` window
    /// as `base` — the condition for `t` to live at `level`.
    #[inline]
    fn same_window(&self, t: u64, level: usize) -> bool {
        let shift = SHIFT * (level as u32 + 1);
        (t >> shift) == (self.base >> shift)
    }

    /// Queue an event. O(1) plus at most `LEVELS` window checks.
    pub fn push(&mut self, e: QEntry) {
        self.len += 1;
        self.insert(e);
    }

    fn insert(&mut self, e: QEntry) {
        if e.time <= self.base {
            // Due (or scheduled "in the past", which the reference heap
            // also permits): key order inside `ready` handles it.
            self.ready.push(Reverse(e));
            return;
        }
        for level in 0..LEVELS {
            if self.same_window(e.time, level) {
                let s = Self::slot_of(e.time, level);
                self.levels[level][s].push(e);
                self.occupied[level] |= 1 << s;
                return;
            }
        }
        self.overflow.push(Reverse(e));
    }

    /// Tombstone the event with `key`, if queued. Returns whether a live
    /// entry was cancelled. Physical removal happens lazily at pop.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.cancelled.insert(key) {
            // Optimistically assume the key is present; a cancel of a
            // never-scheduled key is a caller bug the debug assert in
            // `pop` would surface as a length mismatch, so guard here.
            if self.contains(key) {
                self.len -= 1;
                return true;
            }
            self.cancelled.remove(&key);
        }
        false
    }

    /// Linear membership probe used only by [`cancel`](Self::cancel) —
    /// cancellation is off the hot path.
    #[cfg_attr(not(test), allow(dead_code))]
    fn contains(&self, key: EventKey) -> bool {
        self.ready.iter().any(|Reverse(e)| e.key() == key)
            || self.overflow.iter().any(|Reverse(e)| e.key() == key)
            || self.levels.iter().flatten().flatten().any(|e| e.key() == key)
    }

    /// Key of the next event to pop, if any.
    pub fn peek_key(&mut self) -> Option<EventKey> {
        self.settle_ready();
        self.ready.peek().map(|Reverse(e)| e.key())
    }

    /// Pop the event with the smallest canonical key.
    pub fn pop(&mut self) -> Option<QEntry> {
        self.settle_ready();
        let Reverse(e) = self.ready.pop()?;
        self.len -= 1;
        Some(e)
    }

    /// Drain every queued event, unordered. Used by the parallel
    /// executor to partition the pending set across shards.
    pub fn drain_unordered(&mut self) -> Vec<QEntry> {
        let mut out = Vec::with_capacity(self.len);
        let take = |v: &mut Vec<QEntry>, out: &mut Vec<QEntry>, cancelled: &HashSet<EventKey>| {
            for e in v.drain(..) {
                if !cancelled.contains(&e.key()) {
                    out.push(e);
                }
            }
        };
        let mut ready: Vec<QEntry> =
            std::mem::take(&mut self.ready).into_iter().map(|r| r.0).collect();
        take(&mut ready, &mut out, &self.cancelled);
        let mut over: Vec<QEntry> =
            std::mem::take(&mut self.overflow).into_iter().map(|r| r.0).collect();
        take(&mut over, &mut out, &self.cancelled);
        for level in &mut self.levels {
            for slot in level {
                for e in slot.drain(..) {
                    if !self.cancelled.contains(&e.key()) {
                        out.push(e);
                    }
                }
            }
        }
        self.occupied = [0; LEVELS];
        self.cancelled.clear();
        debug_assert_eq!(out.len(), self.len, "drain lost or invented entries");
        self.len = 0;
        out
    }

    /// Ensure the head of `ready` is live and that `ready` holds the
    /// globally smallest key (advancing `base` as needed).
    fn settle_ready(&mut self) {
        loop {
            if let Some(Reverse(e)) = self.ready.peek() {
                if self.cancelled.is_empty() || !self.cancelled.remove(&e.key()) {
                    return;
                }
                // Tombstoned: drop and re-settle.
                self.ready.pop();
                continue;
            }
            if self.len == 0 {
                return;
            }
            self.advance();
        }
    }

    /// Move `base` forward to the earliest pending time and migrate that
    /// time's events into `ready`. Caller guarantees something is pending
    /// outside `ready`.
    fn advance(&mut self) {
        loop {
            // Done as soon as something is due: cascades push entries
            // whose time equals the advanced `base` straight into
            // `ready`.
            if !self.ready.is_empty() {
                return;
            }
            // Cascade any upper-level slot that contains `base` itself:
            // such slots exist only transiently (an entry inserted at a
            // coarse level whose window `base` has since entered) and
            // must migrate down before slot order is trustworthy.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let s = Self::slot_of(self.base, level);
                if self.occupied[level] & (1 << s) != 0 {
                    self.cascade(level, s);
                    cascaded = true;
                }
            }
            if cascaded {
                continue;
            }
            // Lowest non-empty level owns the earliest pending time: its
            // entries are strictly inside the coarser levels' base slots,
            // which were cascaded above.
            if let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) {
                let s = self.occupied[level].trailing_zeros() as usize;
                if level == 0 {
                    // A level-0 slot is a single nanosecond: dump it.
                    let t = (self.base & !((SLOTS as u64) - 1)) | s as u64;
                    debug_assert!(t > self.base);
                    self.base = t;
                    let v = std::mem::take(&mut self.levels[0][s]);
                    self.occupied[0] &= !(1 << s);
                    for e in v {
                        debug_assert_eq!(e.time, t);
                        self.ready.push(Reverse(e));
                    }
                    continue;
                }
                // Coarser slot: advance base to its start and cascade it
                // down a level (no pending time can precede the slot
                // start — every finer level is empty).
                let shift = SHIFT * level as u32;
                let slot_start = ((self.base >> shift) & !((SLOTS as u64) - 1) | s as u64) << shift;
                debug_assert!(slot_start > self.base);
                self.base = slot_start;
                self.cascade(level, s);
                continue;
            }
            // Wheel empty: refill from overflow. Jump base to the
            // earliest overflow time and re-insert everything that now
            // fits the wheel's windows around the new base.
            let Some(Reverse(head)) = self.overflow.pop() else {
                debug_assert!(self.len == 0, "advance with nothing pending");
                return;
            };
            self.base = head.time;
            self.ready.push(Reverse(head));
            let top_shift = SHIFT * LEVELS as u32;
            while let Some(Reverse(e)) = self.overflow.peek() {
                if (e.time >> top_shift) != (self.base >> top_shift) {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked");
                self.insert(e);
            }
            return;
        }
    }

    /// Re-insert every entry of `levels[level][s]` at a finer level (or
    /// into `ready` if due). Entries always descend: the slot's window
    /// contains `base`, so each entry now fits a finer-level window.
    fn cascade(&mut self, level: usize, s: usize) {
        let v = std::mem::take(&mut self.levels[level][s]);
        self.occupied[level] &= !(1 << s);
        for e in v {
            self.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimEvent;
    use crate::rng::Pcg32;

    fn entry(time: u64, lane: u32, seq: u64) -> QEntry {
        QEntry { time, lane, seq, ev: SimEvent::RetryPort { node: lane, port: 0 } }
    }

    #[test]
    fn pops_in_key_order_with_same_time_collisions() {
        let mut w = EventWheel::new();
        w.push(entry(10, 3, 0));
        w.push(entry(10, 1, 5));
        w.push(entry(5, 9, 9));
        w.push(entry(10, 1, 2));
        w.push(entry(1_000_000, 0, 0));
        let mut got = Vec::new();
        while let Some(e) = w.pop() {
            got.push(e.key());
        }
        assert_eq!(got, vec![(5, 9, 9), (10, 1, 2), (10, 1, 5), (10, 3, 0), (1_000_000, 0, 0)]);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w = EventWheel::new();
        // Beyond the 64^4-ns top window.
        let far = 1u64 << 40;
        w.push(entry(far, 1, 0));
        w.push(entry(far + 1, 0, 0));
        w.push(entry(3, 0, 0));
        assert_eq!(w.pop().unwrap().key(), (3, 0, 0));
        assert_eq!(w.pop().unwrap().key(), (far, 1, 0));
        assert_eq!(w.pop().unwrap().key(), (far + 1, 0, 0));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn past_pushes_pop_first_like_a_heap() {
        let mut w = EventWheel::new();
        w.push(entry(100, 0, 0));
        assert_eq!(w.pop().unwrap().key(), (100, 0, 0));
        // Scheduled "in the past" relative to the wheel's base.
        w.push(entry(50, 0, 1));
        w.push(entry(101, 0, 2));
        assert_eq!(w.pop().unwrap().key(), (50, 0, 1));
        assert_eq!(w.pop().unwrap().key(), (101, 0, 2));
    }

    #[test]
    fn cancel_removes_exactly_one_key() {
        let mut w = EventWheel::new();
        w.push(entry(10, 1, 0));
        w.push(entry(10, 2, 0));
        w.push(entry(70_000, 3, 0));
        assert!(w.cancel((10, 1, 0)));
        assert!(!w.cancel((10, 1, 0)), "double-cancel is a no-op");
        assert!(!w.cancel((999, 9, 9)), "cancel of an absent key is a no-op");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap().key(), (10, 2, 0));
        assert!(w.cancel((70_000, 3, 0)));
        assert!(w.pop().is_none());
    }

    #[test]
    fn drain_unordered_returns_all_live_entries() {
        let mut w = EventWheel::new();
        for i in 0..100u64 {
            w.push(entry(i * 977, 0, i));
        }
        w.push(entry(1 << 41, 7, 7)); // overflow
        w.cancel((977, 0, 1));
        let mut keys: Vec<EventKey> = w.drain_unordered().into_iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        assert_eq!(keys.len(), 100);
        assert!(!keys.contains(&(977, 0, 1)));
        assert!(keys.contains(&(1 << 41, 7, 7)));
        assert!(w.is_empty());
    }

    /// The determinism contract in miniature: over randomized schedules —
    /// bursts of same-slot collisions, far-future overflow, past pushes,
    /// cancellations — the wheel pops the exact sequence a reference
    /// `BinaryHeap` pops.
    #[test]
    fn property_matches_binary_heap_reference() {
        let base_seed = match std::env::var("CHAOS_SEED") {
            Ok(s) => 0x57EE1 ^ s.trim().parse::<u64>().unwrap_or(0),
            Err(_) => 0x57EE1,
        };
        for round in 0..8u64 {
            let mut rng = Pcg32::new(base_seed.wrapping_add(round), 0x77);
            let mut wheel = EventWheel::new();
            let mut reference: BinaryHeap<Reverse<(u64, u32, u64)>> = BinaryHeap::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            let mut live: Vec<EventKey> = Vec::new();
            for _ in 0..4000 {
                match rng.next_below(10) {
                    // 60%: push at a mix of horizons, biased near `now`
                    // to force same-slot collisions.
                    0..=5 => {
                        let dt = match rng.next_below(100) {
                            0..=39 => u64::from(rng.next_below(4)),
                            40..=69 => u64::from(rng.next_below(64)),
                            70..=89 => u64::from(rng.next_below(100_000)),
                            90..=95 => u64::from(rng.next_below(20_000_000)),
                            // Far future: exercises the overflow heap.
                            _ => (1 << 28) + u64::from(rng.next_u32()),
                        };
                        let lane = rng.next_below(5);
                        let key = (now + dt, lane, seq);
                        seq += 1;
                        wheel.push(entry(key.0, key.1, key.2));
                        reference.push(Reverse(key));
                        live.push(key);
                    }
                    // 30%: pop.
                    6..=8 => {
                        let want = reference.pop().map(|r| r.0);
                        let got = wheel.pop().map(|e| e.key());
                        assert_eq!(got, want, "round {round}: pop order diverged");
                        if let Some(k) = want {
                            now = now.max(k.0);
                            live.retain(|&x| x != k);
                        }
                    }
                    // 10%: cancel a random live key.
                    _ => {
                        if !live.is_empty() {
                            let i = rng.next_below(live.len() as u32) as usize;
                            let victim = live.swap_remove(i);
                            assert!(wheel.cancel(victim));
                            let rest: Vec<_> =
                                reference.drain().filter(|r| r.0 != victim).collect();
                            reference = rest.into_iter().collect();
                        }
                    }
                }
                assert_eq!(wheel.len(), reference.len(), "round {round}: length diverged");
            }
            // Drain what's left in order.
            while let Some(Reverse(want)) = reference.pop() {
                assert_eq!(wheel.pop().map(|e| e.key()), Some(want));
            }
            assert!(wheel.pop().is_none());
        }
    }
}
