//! A seeded hostile-exporter workload: the adversarial NetFlow/IPFIX
//! traffic model the chaos and determinism harnesses throw at the wire
//! ingestion path.
//!
//! The exporter interleaves three kinds of datagrams, all drawn from one
//! [`Pcg32`] stream so a seed fully determines the byte sequence:
//!
//! * **Honest traffic** across `domains` exporter streams (protocol
//!   round-robins v5 / v9 / IPFIX per domain), with templates announced
//!   before data and export sequence numbers maintained per stream.
//! * **Upstream loss**: with `drop_prob`, an honest datagram is "lost on
//!   the wire" — the sequence counter advances but nothing is emitted, so
//!   the collector's gap detector has real loss to find.
//! * **Attacks** with `hostility`: template floods, count and length
//!   lies, data-before-template, reserved set ids, random garbage, and
//!   [`corrupt_buffer`]-style damage to otherwise valid datagrams. Every
//!   attack maps to a reject reason or malformed count on the parser
//!   side; none may panic it or grow its state.
//! * **Clock lies** with `clock_hostility`: structurally valid datagrams
//!   whose time fields lie — future export stamps, frozen sysuptimes,
//!   wrap-straddling and backwards first/last pairs, backwards export
//!   times. The parser must *accept* these (they are real flow records)
//!   while booking each lie under a `fet_wire::ClockLie` and clamping the
//!   event-time stamp to the collector's receive time.

use crate::corrupt::{corrupt_buffer, CorruptionSpec};
use crate::rng::Pcg32;
use fet_packet::flow::{FlowKey, IpProtocol};
use fet_packet::Ipv4Addr;
use fet_wire::builder::{
    v5_datagram, v5_datagram_with_count, v5_datagram_with_times, IpfixBuilder, V9Builder,
};
use fet_wire::fields::base_flow_fields;
use fet_wire::FlowSample;

/// Workload shape. Defaults are the chaos harness's storm profile.
#[derive(Debug, Clone, Copy)]
pub struct HostileExporterConfig {
    /// Master seed: same seed, same byte stream.
    pub seed: u64,
    /// Honest exporter streams (observation domains / engines).
    pub domains: u32,
    /// Records per honest datagram (1..=this, uniform).
    pub max_records: u32,
    /// Probability a datagram is an attack instead of honest traffic.
    pub hostility: f64,
    /// Probability a datagram is a clock-lie probe: valid framing and
    /// records, lying clocks (future stamps, frozen sysuptime,
    /// wrap-straddling first/last pairs, backwards export times). 0.0
    /// (the default) draws nothing, so pre-existing seeds reproduce
    /// bit-for-bit.
    pub clock_hostility: f64,
    /// Probability an honest datagram is dropped upstream (sequence
    /// advances, nothing emitted) — the real-loss signal.
    pub drop_prob: f64,
    /// Random damage applied to honest datagrams before emission.
    pub corruption: CorruptionSpec,
}

impl Default for HostileExporterConfig {
    fn default() -> Self {
        HostileExporterConfig {
            seed: 1,
            domains: 8,
            max_records: 8,
            hostility: 0.3,
            clock_hostility: 0.0,
            drop_prob: 0.05,
            corruption: CorruptionSpec::none(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamState {
    seq: u32,
    announced: bool,
}

/// The workload generator. Drive [`emit`](Self::emit) in a loop and feed
/// every `Some` datagram to the ingest path under test.
#[derive(Debug, Clone)]
pub struct HostileExporter {
    cfg: HostileExporterConfig,
    rng: Pcg32,
    streams: Vec<StreamState>,
    flood_tid: u16,
    /// Datagrams emitted (honest + attack).
    pub emitted: u64,
    /// Attack datagrams emitted.
    pub attacks: u64,
    /// Honest datagrams dropped upstream (never emitted).
    pub dropped_upstream: u64,
    /// Sequence units the drops consumed (records for v5/IPFIX, datagrams
    /// for v9) — the ceiling on detectable upstream loss.
    pub dropped_units: u64,
    /// Honest flow records emitted undamaged-by-construction (corruption
    /// may still have mangled the bytes in flight).
    pub honest_records: u64,
    /// Honest datagrams the corruption model visibly damaged.
    pub corrupted: u64,
    /// Clock-lie datagrams emitted.
    pub clock_attacks: u64,
    /// Sequence counters of the clock-lie streams (v5 and IPFIX carry
    /// distinct streams, each gap-free, so clock lies never read as
    /// upstream loss).
    clock_seq: u32,
    clock_seq_ipfix: u32,
    /// Alternates the backwards-export mode between a high and a low
    /// export time.
    clock_flip: bool,
}

/// RNG stream id for the exporter's draws (disjoint from the fault and
/// corruption stream ids used elsewhere in the simulator).
pub const EXPORTER_STREAM: u64 = 0x4e46_4c4f; // "NFLO"

impl HostileExporter {
    /// A workload from its config.
    pub fn new(cfg: HostileExporterConfig) -> Self {
        HostileExporter {
            rng: Pcg32::new(cfg.seed, EXPORTER_STREAM),
            streams: vec![StreamState::default(); cfg.domains.max(1) as usize],
            cfg,
            flood_tid: 256,
            emitted: 0,
            attacks: 0,
            dropped_upstream: 0,
            dropped_units: 0,
            honest_records: 0,
            corrupted: 0,
            clock_attacks: 0,
            clock_seq: 0,
            clock_seq_ipfix: 0,
            clock_flip: false,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> &HostileExporterConfig {
        &self.cfg
    }

    fn sample(&mut self) -> FlowSample {
        let r = self.rng.next_u32();
        let sport = 1024 + (self.rng.next_u32() % 50_000) as u16;
        let proto = if self.rng.chance(0.8) { IpProtocol::Tcp } else { IpProtocol::Udp };
        FlowSample {
            flow: FlowKey {
                src: Ipv4Addr::from_octets([10, (r >> 16) as u8, (r >> 8) as u8, r as u8]),
                dst: Ipv4Addr::from_octets([10, 200, (r >> 24) as u8, 1]),
                sport,
                dport: 443,
                proto,
            },
            in_port: 1 + (self.rng.next_u32() % 32) as u16,
            out_port: 1 + (self.rng.next_u32() % 32) as u16,
            packets: 1 + u64::from(self.rng.next_u32() % 1000),
            bytes: 64 + u64::from(self.rng.next_u32() % 100_000),
            tcp_flags: 0x10,
            forwarding_status: if self.rng.chance(0.1) {
                Some(0x80) // dropped-by-forwarding: a real drop event
            } else {
                Some(0x40)
            },
            first_ms: 0,
            last_ms: 0,
        }
    }

    fn samples(&mut self, n: usize) -> Vec<FlowSample> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// One honest datagram for stream `d`, advancing its sequence by the
    /// protocol's own unit (records for v5/IPFIX, datagrams for v9).
    fn honest(&mut self, d: usize) -> Vec<u8> {
        let n = 1 + self.rng.next_below(self.cfg.max_records.max(1)) as usize;
        let rows = self.samples(n);
        self.honest_records += n as u64;
        let seq = self.streams[d].seq;
        let tid = 256 + (d % 4) as u16;
        match d % 3 {
            0 => {
                let n = rows.len().min(30);
                self.streams[d].seq = seq.wrapping_add(n as u32);
                v5_datagram(seq, (d >> 8) as u8, d as u8, &rows[..n])
            }
            1 => {
                self.streams[d].seq = seq.wrapping_add(1);
                let mut b = V9Builder::new(d as u32, seq);
                if !self.streams[d].announced || self.rng.chance(0.02) {
                    b = b.template(tid, &base_flow_fields());
                    self.streams[d].announced = true;
                }
                b.data_samples(tid, &rows).build()
            }
            _ => {
                self.streams[d].seq = seq.wrapping_add(rows.len() as u32);
                let mut b = IpfixBuilder::new(d as u32, seq);
                if !self.streams[d].announced || self.rng.chance(0.02) {
                    b = b.template(tid, &base_flow_fields());
                    self.streams[d].announced = true;
                }
                b.data_samples(tid, &rows).build()
            }
        }
    }

    /// One attack datagram. Attacks use domains past the honest range so
    /// they never desynchronize an honest stream's sequence numbers.
    fn attack(&mut self) -> Vec<u8> {
        let domain = self.cfg.domains + 1 + self.rng.next_u32() % 4;
        match self.rng.next_below(8) {
            0 => {
                // Template flood: fresh ids forever, probing the cache
                // bound.
                let mut b = V9Builder::new(domain, 0);
                for _ in 0..8 {
                    b = b.template(self.next_flood_tid(), &base_flow_fields());
                }
                b.build()
            }
            1 => {
                // v5 fatal count lie: claims more records than v5 can
                // physically carry.
                let rows = self.samples(1);
                v5_datagram_with_count(0, 0, 0, &rows, 31 + (self.rng.next_u32() % 1000) as u16)
            }
            2 => {
                // v5 soft count lie: claims within bounds, ships less —
                // the malformed-inflation probe.
                let rows = self.samples(2);
                v5_datagram_with_count(0, 0, 0, &rows, 3 + (self.rng.next_u32() % 28) as u16)
            }
            3 => {
                // v9 length lie: flowset header points past the datagram.
                let lie = [0x01u8, 0x04, 0xff, 0xff];
                V9Builder::new(domain, 0).raw_flowset(0x0100 + 7, &lie).build()
            }
            4 => {
                // IPFIX message-length lie.
                let rows = self.samples(1);
                IpfixBuilder::new(domain, 0)
                    .template(300, &base_flow_fields())
                    .data_samples(300, &rows)
                    .build_with_length(7 + (self.rng.next_u32() % 60) as u16)
            }
            5 => {
                // Data before template: records under an id nobody
                // announced.
                let body: Vec<u8> = (0..24).map(|_| self.rng.next_u32() as u8).collect();
                if self.rng.chance(0.5) {
                    V9Builder::new(domain, 0).raw_flowset(999, &body).build()
                } else {
                    IpfixBuilder::new(domain, 0).raw_set(999, &body).build()
                }
            }
            6 => {
                // Reserved set id (v9: 2..=255 are reserved).
                V9Builder::new(domain, 0).raw_flowset(5, &[0u8; 8]).build()
            }
            _ => {
                // Pure garbage, version field included.
                let len = 2 + self.rng.next_below(120) as usize;
                (0..len).map(|_| self.rng.next_u32() as u8).collect()
            }
        }
    }

    /// One clock-lie datagram: framing and records are valid (the parser
    /// must *accept* these), only the time fields lie. Uses a dedicated
    /// domain past the honest range with its own coherent sequence
    /// counter, so clock lies never read as upstream loss.
    fn clock_lie(&mut self) -> Vec<u8> {
        let domain = self.cfg.domains + 8;
        let n = 1 + self.rng.next_below(3) as usize;
        let mut rows = self.samples(n);
        let seq = self.clock_seq;
        match self.rng.next_below(4) {
            0 => {
                // Export time deep in the exporter's claimed future.
                let secs = 2_000_000_000 + self.rng.next_u32() % 1_000_000;
                self.clock_seq = seq.wrapping_add(rows.len() as u32);
                v5_datagram_with_times(
                    seq,
                    (domain >> 8) as u8,
                    domain as u8,
                    &rows,
                    rows.len() as u16,
                    1_000,
                    secs,
                )
            }
            1 => {
                // Sysuptime frozen at a constant across emissions.
                self.clock_seq = seq.wrapping_add(rows.len() as u32);
                v5_datagram_with_times(
                    seq,
                    (domain >> 8) as u8,
                    domain as u8,
                    &rows,
                    rows.len() as u16,
                    0x00BE_EF00,
                    0,
                )
            }
            2 => {
                // Record times: one legitimate wrap-straddler (must NOT be
                // flagged) and, when room, one backwards pair (must be).
                rows[0].first_ms = u32::MAX - 500;
                rows[0].last_ms = 200 + self.rng.next_u32() % 300;
                if rows.len() > 1 {
                    rows[1].first_ms = 9_000_000;
                    rows[1].last_ms = 1_000_000;
                }
                self.clock_seq = seq.wrapping_add(rows.len() as u32);
                v5_datagram_with_times(
                    seq,
                    (domain >> 8) as u8,
                    domain as u8,
                    &rows,
                    rows.len() as u16,
                    0,
                    0,
                )
            }
            _ => {
                // Export time marching backwards every other datagram.
                self.clock_flip = !self.clock_flip;
                let secs = if self.clock_flip { 500_000 } else { 100 + self.rng.next_u32() % 50 };
                let seq = self.clock_seq_ipfix;
                self.clock_seq_ipfix = seq.wrapping_add(rows.len() as u32);
                IpfixBuilder::new(domain, seq)
                    .export_time(secs)
                    .template(310, &base_flow_fields())
                    .data_samples(310, &rows)
                    .build()
            }
        }
    }

    fn next_flood_tid(&mut self) -> u16 {
        let tid = self.flood_tid;
        self.flood_tid = if self.flood_tid == u16::MAX { 256 } else { self.flood_tid + 1 };
        tid
    }

    /// Produce the next datagram. `None` means an honest datagram was
    /// dropped upstream: its stream's sequence advanced, nothing reaches
    /// the collector, and the gap is detectable from the next arrival.
    pub fn emit(&mut self) -> Option<Vec<u8>> {
        if self.rng.chance(self.cfg.hostility) {
            self.attacks += 1;
            self.emitted += 1;
            return Some(self.attack());
        }
        if self.rng.chance(self.cfg.clock_hostility) {
            self.clock_attacks += 1;
            self.emitted += 1;
            return Some(self.clock_lie());
        }
        let d = self.rng.next_below(self.cfg.domains.max(1)) as usize;
        let before = self.streams[d].seq;
        let dg = self.honest(d);
        if self.rng.chance(self.cfg.drop_prob) {
            self.dropped_upstream += 1;
            self.dropped_units += u64::from(self.streams[d].seq.wrapping_sub(before));
            return None;
        }
        let mut dg = dg;
        if self.cfg.corruption.is_active() {
            let tally = corrupt_buffer(&self.cfg.corruption, &mut self.rng, &mut dg);
            if tally.touched() {
                self.corrupted += 1;
            }
        }
        self.emitted += 1;
        Some(dg)
    }

    /// Emit `n` draws and keep the ones that survived the upstream drop
    /// model.
    pub fn emit_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).filter_map(|_| self.emit()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_wire::{WireSession, WireSessionConfig};

    fn run(cfg: HostileExporterConfig, n: usize) -> (HostileExporter, WireSession) {
        let mut ex = HostileExporter::new(cfg);
        let mut s = WireSession::new(WireSessionConfig::default());
        for _ in 0..n {
            if let Some(dg) = ex.emit() {
                s.ingest(&dg, 0);
            }
        }
        (ex, s)
    }

    #[test]
    fn same_seed_same_bytes() {
        let cfg = HostileExporterConfig {
            hostility: 0.5,
            drop_prob: 0.1,
            corruption: CorruptionSpec { flip_per_byte: 0.01, ..CorruptionSpec::none() },
            ..Default::default()
        };
        let mut a = HostileExporter::new(cfg);
        let mut b = HostileExporter::new(cfg);
        for _ in 0..500 {
            assert_eq!(a.emit(), b.emit());
        }
    }

    #[test]
    fn honest_traffic_parses_cleanly() {
        let cfg = HostileExporterConfig { hostility: 0.0, drop_prob: 0.0, ..Default::default() };
        let (ex, s) = run(cfg, 400);
        assert_eq!(s.stats().rejected, 0);
        assert_eq!(s.stats().malformed, 0);
        assert_eq!(s.stats().decoded, ex.honest_records);
        assert_eq!(s.stats().lost_upstream, 0);
    }

    #[test]
    fn upstream_drops_are_detected_within_the_ceiling() {
        let cfg = HostileExporterConfig { hostility: 0.0, drop_prob: 0.2, ..Default::default() };
        let (ex, s) = run(cfg, 2000);
        assert!(ex.dropped_upstream > 0);
        let detected = s.stats().lost_upstream;
        assert!(detected > 0, "gaps must surface");
        assert!(detected <= ex.dropped_units, "detected {detected} > dropped {}", ex.dropped_units);
    }

    #[test]
    fn attacks_never_panic_and_are_all_accounted() {
        let cfg = HostileExporterConfig { hostility: 1.0, ..Default::default() };
        let (ex, s) = run(cfg, 2000);
        assert_eq!(ex.attacks, 2000);
        let st = s.stats();
        assert_eq!(st.datagrams, 2000);
        assert_eq!(st.accepted + st.rejected, 2000);
        // Multiple distinct reject reasons must fire across the taxonomy.
        let distinct = st.rejects.iter().filter(|&&c| c > 0).count()
            + st.soft.iter().filter(|&&c| c > 0).count();
        assert!(distinct >= 4, "attack mix too narrow: {distinct} reasons");
    }

    #[test]
    fn zero_clock_hostility_preserves_the_byte_stream() {
        // The clock-lie branch must be draw-free when disabled, so every
        // pre-existing seed reproduces bit-for-bit.
        let cfg = HostileExporterConfig {
            hostility: 0.4,
            drop_prob: 0.1,
            corruption: CorruptionSpec { flip_per_byte: 0.01, ..CorruptionSpec::none() },
            ..Default::default()
        };
        let mut a = HostileExporter::new(cfg);
        let mut b = HostileExporter::new(HostileExporterConfig { clock_hostility: 0.0, ..cfg });
        for _ in 0..500 {
            assert_eq!(a.emit(), b.emit());
        }
    }

    #[test]
    fn clock_lies_are_accepted_but_booked() {
        let cfg = HostileExporterConfig {
            hostility: 0.0,
            clock_hostility: 1.0,
            drop_prob: 0.0,
            ..Default::default()
        };
        let (ex, s) = run(cfg, 800);
        assert_eq!(ex.clock_attacks, 800);
        let st = s.stats();
        // Structurally valid: everything decodes, nothing is refused.
        assert_eq!(st.datagrams, 800);
        assert_eq!(st.rejected, 0);
        assert_eq!(st.malformed, 0);
        assert_eq!(st.lost_upstream, 0, "clock-lie streams are gap-free");
        // ... but the lies themselves are visible across the taxonomy.
        let kinds = st.clock_lies.iter().filter(|&&c| c > 0).count();
        assert!(kinds >= 3, "clock-lie mix too narrow: {kinds} kinds, {:?}", st.clock_lies);
        assert!(st.clamped_stamps > 0, "implausible stamps must clamp");
    }

    #[test]
    fn clock_lie_mix_with_attacks_stays_accounted() {
        let cfg = HostileExporterConfig {
            hostility: 0.3,
            clock_hostility: 0.3,
            drop_prob: 0.05,
            ..Default::default()
        };
        let (ex, s) = run(cfg, 2000);
        assert!(ex.clock_attacks > 0 && ex.attacks > 0);
        let st = s.stats();
        assert_eq!(st.accepted + st.rejected, st.datagrams);
        assert!(st.clock_lies.iter().sum::<u64>() > 0);
    }

    #[test]
    fn template_flood_cannot_grow_the_cache() {
        let cfg = HostileExporterConfig { hostility: 1.0, ..Default::default() };
        let mut ex = HostileExporter::new(cfg);
        let mut s = WireSession::new(WireSessionConfig::default());
        for _ in 0..3000 {
            if let Some(dg) = ex.emit() {
                s.ingest(&dg, 0);
            }
        }
        let max = s.cache().config().max_templates;
        assert!(s.cache().max_domain_len() <= max);
    }
}
