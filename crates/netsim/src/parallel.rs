//! Deterministic parallel fleet execution.
//!
//! [`run`] executes a simulation segment with the device fleet sharded
//! across worker threads, producing results **bit-identical** to the
//! serial [`Simulator::run_until`] at any shard count. The scheme is
//! conservative parallel discrete-event simulation with epoch barriers:
//!
//! * **Canonical keys.** Every event carries the key `(time, lane, seq)`
//!   where `lane` identifies the scheduling origin (device id + 1, or 0
//!   for external pushes) and `seq` counts that lane's pushes. A device's
//!   pushes are totally ordered by its own execution, and a device's
//!   execution order is the key order of its events — so serial and
//!   sharded runs assign identical keys, and the key order *is* the one
//!   total order both modes realize (see DESIGN.md §11 for the induction).
//!
//! * **Sharding.** Devices are assigned round-robin (`id % shards`); each
//!   worker is a real [`Simulator`] owning its devices (other slots are
//!   [`Node::Vacant`]) plus clones of the link table. Only the directions
//!   leaving a worker's own ports are ever exercised there, so per-link
//!   fault/RNG state never races and is copied back at reassembly.
//!
//! * **Epochs.** The only cross-device event is a frame arrival, which is
//!   scheduled at least `Δ = 1 + min cross-shard prop_ns` after its
//!   sender's current time (serialization takes ≥ 1 ns). Each epoch the
//!   master computes the global minimum pending key `tmin` and lets every
//!   worker process all events with key `< min(segment bound,
//!   (tmin.time + Δ, 0, 0))`; any message generated during the epoch
//!   provably lands at or beyond that bound, so no worker ever receives
//!   an event "in the past". Cross-shard frames travel through
//!   per-destination outboxes and are merged into the receiver's heap
//!   at the next barrier.
//!
//! * **Segments.** Scripted controls mutate global state, so they
//!   delimit segments: the fleet quiesces up to the control's key, the
//!   master reassembles and runs the control serially, then the next
//!   segment begins.
//!
//! Ground truth is the one side effect whose *order* matters to callers;
//! workers tag each recorded event with `(key of the causing event,
//! index within its handling)` and the master merges all shards' traces
//! by that tag — exactly the serial recording order.

use crate::engine::{EventKey, MgmtAccounting, Node, QEntry, ShardCtx, Simulator};
use crate::tracer::{GroundTruth, GtEvent};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc;

/// Master → worker command.
enum Cmd {
    /// Deliver `msgs` into the worker's heap, then process every event
    /// with key strictly below `bound`.
    Epoch { bound: EventKey, msgs: Vec<QEntry> },
    /// Segment over; return the worker state via the join handle.
    Finish,
}

/// Worker → master epoch report.
struct Reply {
    shard: usize,
    /// Cross-shard events generated this epoch, per destination shard.
    outbox: Vec<Vec<QEntry>>,
    /// Key of the worker's next pending local event, if any.
    next: Option<EventKey>,
}

/// Run `sim` until `until_ns` with the fleet sharded over `shards`
/// worker threads. Bit-identical to `sim.run_until(until_ns)`.
pub(crate) fn run(sim: &mut Simulator, until_ns: u64, shards: usize) {
    if shards <= 1 {
        sim.run_until(until_ns);
        return;
    }
    sim.arm_monitor_timers();
    // Serial processes events with time <= until_ns, i.e. key < overall.
    let overall: EventKey = (until_ns.saturating_add(1), 0, 0);
    loop {
        // Partition the pending queue: device events ship to their target's
        // shard; controls stay with the master and delimit the segment.
        let shards_u = shards as u32;
        let mut init: Vec<Vec<QEntry>> = (0..shards).map(|_| Vec::new()).collect();
        let mut controls: BinaryHeap<Reverse<QEntry>> = BinaryHeap::new();
        for Reverse(e) in sim.queue.drain() {
            match e.ev.target() {
                Some(t) => init[(t % shards_u) as usize].push(e),
                None => controls.push(Reverse(e)),
            }
        }
        let seg_bound = match controls.peek() {
            Some(Reverse(c)) => c.key().min(overall),
            None => overall,
        };
        run_segment(sim, seg_bound, shards, init);
        let due = matches!(controls.peek(), Some(Reverse(c)) if c.key() < overall);
        if !due {
            // Put unexpired controls back for a later run_until* call.
            for c in controls {
                sim.queue.push(c);
            }
            break;
        }
        let Reverse(entry) = controls.pop().expect("checked above");
        for c in controls {
            sim.queue.push(c);
        }
        sim.now = entry.time;
        sim.events_processed += 1;
        sim.dispatch(entry.ev);
    }
    sim.now = sim.now.max(until_ns.min(sim.now + 1));
}

/// Run one control-free segment up to `seg_bound` across `shards` workers,
/// starting from the pre-partitioned event lists `init`.
fn run_segment(
    sim: &mut Simulator,
    seg_bound: EventKey,
    shards: usize,
    mut init: Vec<Vec<QEntry>>,
) {
    let shards_u = shards as u32;
    let n = sim.nodes.len();

    // Lookahead: cross-shard frames arrive >= 1 (serialization) + prop_ns
    // after their sender's clock. None when no link crosses shards — then
    // the whole segment is one epoch.
    let mut min_prop: Option<u64> = None;
    for (&(node, _), peer) in &sim.port_map {
        if node % shards_u != peer.node % shards_u {
            let p = sim.links[peer.link].prop_ns;
            min_prop = Some(min_prop.map_or(p, |d| d.min(p)));
        }
    }
    let delta = min_prop.map(|p| p + 1);

    let mut next_keys: Vec<Option<EventKey>> =
        init.iter().map(|v| v.iter().map(|e| e.key()).min()).collect();

    // Build the worker simulators: move owned devices out (leaving Vacant
    // slots), clone shared read-mostly tables.
    let mut workers: Vec<Simulator> = Vec::with_capacity(shards);
    for (s, q) in init.iter_mut().enumerate() {
        let nodes: Vec<Node> = (0..n)
            .map(|id| {
                if id as u32 % shards_u == s as u32 {
                    std::mem::replace(&mut sim.nodes[id], Node::Vacant)
                } else {
                    Node::Vacant
                }
            })
            .collect();
        workers.push(Simulator {
            now: sim.now,
            queue: q.drain(..).map(Reverse).collect(),
            lane_seqs: sim.lane_seqs.clone(),
            nodes,
            links: sim.links.clone(),
            port_map: sim.port_map.clone(),
            gt: GroundTruth::new(),
            mgmt: MgmtAccounting::default(),
            controls: Vec::new(),
            events_processed: 0,
            timers_armed: true,
            host_ip_cache: sim.host_ip_cache.clone(),
            shard: Some(ShardCtx {
                shards: shards_u,
                shard: s as u32,
                outbox: (0..shards).map(|_| Vec::new()).collect(),
            }),
        });
    }

    let mut results: Vec<(Simulator, Vec<(EventKey, u32)>)> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let mut cmd_txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (s, w) in workers.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let rtx = reply_tx.clone();
            cmd_txs.push(cmd_tx);
            handles.push(scope.spawn(move || worker_loop(w, s, cmd_rx, rtx)));
        }
        drop(reply_tx);

        let mut inbox: Vec<Vec<QEntry>> = (0..shards).map(|_| Vec::new()).collect();
        loop {
            let tmin = next_keys
                .iter()
                .flatten()
                .copied()
                .chain(inbox.iter().flatten().map(|e| e.key()))
                .min();
            let Some(t) = tmin else { break };
            if t >= seg_bound {
                break;
            }
            let bound = match delta {
                None => seg_bound,
                Some(d) => seg_bound.min((t.0.saturating_add(d), 0, 0)),
            };
            for (s, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Epoch { bound, msgs: std::mem::take(&mut inbox[s]) })
                    .expect("worker alive");
            }
            for _ in 0..shards {
                let r = reply_rx.recv().expect("worker reply");
                next_keys[r.shard] = r.next;
                for (d, v) in r.outbox.into_iter().enumerate() {
                    inbox[d].extend(v);
                }
            }
        }
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
        // Messages routed but never delivered (key >= seg_bound): back to
        // the master queue for the next segment.
        for v in inbox {
            for e in v {
                sim.queue.push(Reverse(e));
            }
        }
    });

    // Reassemble the master from the workers.
    let mut gt_merge: Vec<(EventKey, u32, GtEvent)> = Vec::new();
    for (s, (mut w, tags)) in results.into_iter().enumerate() {
        for (id, slot) in w.nodes.iter_mut().enumerate() {
            if id as u32 % shards_u == s as u32 {
                sim.nodes[id] = std::mem::replace(slot, Node::Vacant);
                sim.lane_seqs[id + 1] = w.lane_seqs[id + 1];
            }
        }
        // Link directions leaving this shard's ports are authoritative here.
        for (&(node, _), peer) in &sim.port_map {
            if node % shards_u == s as u32 {
                let src = &w.links[peer.link];
                let dst = &mut sim.links[peer.link];
                if peer.a_to_b {
                    dst.ab = src.ab.clone();
                } else {
                    dst.ba = src.ba.clone();
                }
            }
        }
        sim.mgmt.merge(&w.mgmt);
        sim.events_processed += w.events_processed;
        sim.now = sim.now.max(w.now);
        for Reverse(e) in std::mem::take(&mut w.queue).drain() {
            sim.queue.push(Reverse(e));
        }
        let events = w.gt.drain();
        debug_assert_eq!(events.len(), tags.len(), "every gt event must be tagged");
        for ((key, sub), ev) in tags.into_iter().zip(events) {
            gt_merge.push((key, sub, ev));
        }
    }
    gt_merge.sort_by_key(|e| (e.0, e.1));
    for (_, _, ev) in gt_merge {
        sim.gt.record(ev);
    }
}

/// Worker thread body: obey epoch commands until told to finish, then
/// return the simulator plus the `(causing key, index)` tag of every
/// ground-truth event recorded, in recording order.
fn worker_loop(
    mut w: Simulator,
    shard: usize,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) -> (Simulator, Vec<(EventKey, u32)>) {
    let mut tags: Vec<(EventKey, u32)> = Vec::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Epoch { bound, msgs } => {
                for m in msgs {
                    w.queue.push(Reverse(m));
                }
                while w.queue.peek().is_some_and(|r| r.0.key() < bound) {
                    let Reverse(entry) = w.queue.pop().expect("peeked");
                    w.now = entry.time;
                    w.events_processed += 1;
                    let key = entry.key();
                    let before = w.gt.events().len();
                    w.dispatch(entry.ev);
                    for i in 0..(w.gt.events().len() - before) {
                        tags.push((key, i as u32));
                    }
                }
                let ctx = w.shard.as_mut().expect("worker has shard ctx");
                let fresh = (0..ctx.outbox.len()).map(|_| Vec::new()).collect();
                let outbox = std::mem::replace(&mut ctx.outbox, fresh);
                let next = w.queue.peek().map(|r| r.0.key());
                if tx.send(Reply { shard, outbox, next }).is_err() {
                    break;
                }
            }
            Cmd::Finish => break,
        }
    }
    (w, tags)
}

#[cfg(test)]
mod tests {
    use crate::host::FlowSpec;
    use crate::routing::install_ecmp_routes;
    use crate::time::MILLIS;
    use crate::topology::{build_fat_tree, FatTree, FatTreeParams};
    use crate::Simulator;
    use fet_packet::FlowKey;

    fn setup() -> (Simulator, FatTree) {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        (sim, ft)
    }

    fn add_flow(sim: &mut Simulator, ft: &FatTree, src: usize, dst: usize, sport: u16) {
        let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 400_000,
            pkt_payload: 1000,
            rate_gbps: 20.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }

    /// A lossy multi-flow world with a scripted control mid-run.
    fn world() -> (Simulator, FatTree) {
        let (mut sim, ft) = setup();
        for src in 1..8 {
            add_flow(&mut sim, &ft, src, 0, 3000 + src as u16);
        }
        add_flow(&mut sim, &ft, 0, 7, 4000);
        let tor = ft.edges[0][0];
        sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.002;
        sim.schedule_control(3 * MILLIS, move |s| {
            s.link_direction_mut(tor, 1).unwrap().faults.drop_prob = 0.01;
        });
        (sim, ft)
    }

    fn fingerprint(
        sim: &Simulator,
        ft: &FatTree,
    ) -> (u64, usize, Vec<crate::GtEvent>, u64, u64, u64) {
        let rx: u64 = ft
            .hosts
            .iter()
            .map(|&h| sim.host(h).rx_flows.values().map(|f| f.pkts).sum::<u64>())
            .sum();
        (
            sim.events_processed(),
            sim.gt.events().len(),
            sim.gt.events().to_vec(),
            sim.host_tx_bytes(),
            sim.mgmt.total_bytes(),
            rx,
        )
    }

    #[test]
    fn parallel_matches_serial_at_every_shard_count() {
        let (mut serial, ft) = world();
        serial.run_until(8 * MILLIS);
        let want = fingerprint(&serial, &ft);
        for shards in [2usize, 3, 4, 8] {
            let (mut par, ft2) = world();
            par.run_until_parallel(8 * MILLIS, shards);
            let got = fingerprint(&par, &ft2);
            assert_eq!(got, want, "shards={shards} diverged from serial");
            assert_eq!(par.now(), serial.now(), "clock diverged at shards={shards}");
        }
    }

    #[test]
    fn parallel_run_can_be_resumed_and_mixed_with_serial() {
        let (mut a, fta) = world();
        a.run_until(8 * MILLIS);

        let (mut b, ftb) = world();
        b.run_until_parallel(3 * MILLIS, 4);
        b.run_until(5 * MILLIS);
        b.run_until_parallel(8 * MILLIS, 2);

        assert_eq!(fingerprint(&a, &fta), fingerprint(&b, &ftb));
    }
}
