//! Deterministic parallel fleet execution.
//!
//! [`run`] executes a simulation segment with the device fleet sharded
//! across worker threads, producing results **bit-identical** to the
//! serial [`Simulator::run_until`] at any shard count. The scheme is
//! conservative parallel discrete-event simulation with epoch barriers:
//!
//! * **Canonical keys.** Every event carries the key `(time, lane, seq)`
//!   where `lane` identifies the scheduling origin (device id + 1, or 0
//!   for external pushes) and `seq` counts that lane's pushes. A device's
//!   pushes are totally ordered by its own execution, and a device's
//!   execution order is the key order of its events — so serial and
//!   sharded runs assign identical keys, and the key order *is* the one
//!   total order both modes realize (see DESIGN.md §11 for the induction).
//!
//! * **Sharding.** Devices are assigned round-robin (`id % shards`); each
//!   worker is a real [`Simulator`] owning its devices (other slots are
//!   [`Node::Vacant`]) plus clones of the link table. Only the directions
//!   leaving a worker's own ports are ever exercised there, so per-link
//!   fault/RNG state never races and is copied back at reassembly.
//!
//! * **Batched epochs.** The only cross-device event is a frame arrival,
//!   which is scheduled at least `Δ = 1 + min cross-shard prop_ns` after
//!   its sender's current clock (serialization takes ≥ 1 ns). Workers run
//!   a BSP loop with no master in the loop: each round, every worker
//!   publishes the key of its earliest pending event (its *floor*),
//!   crosses an [`EpochBarrier`], and processes every event with key
//!   below its own exclusion bound
//!
//!   ```text
//!   bound_i = min(segment bound,
//!                 (min_{j≠i} floor_j.time  +  Δ, 0, 0),
//!                 (floor_i.time            + 2·Δ, 0, 0))
//!   ```
//!
//!   The first Δ-term is the classic conservative bound: a peer cannot
//!   emit earlier than its own earliest event plus the lookahead. The
//!   2Δ *echo* term covers transitive chains through worker `i` itself:
//!   an idle peer can still be woken by a message from `i` (sent no
//!   earlier than `floor_i + Δ`) and reply no earlier than `floor_i +
//!   2Δ`. Any longer chain only adds more Δs, so these two terms bound
//!   every future inbound message — no worker ever receives an event in
//!   its past. When the floors are spread out (or a shard is idle), one
//!   round covers many Δ-windows — epoch advancement is batched into a
//!   single synchronization, counted in [`SyncStats::epochs_batched`].
//!   With no cross-shard link at all, `Δ = ∞` and the segment is one
//!   round.
//!
//! * **Rings.** Cross-shard frames travel through a grid of lock-free
//!   bounded [`SpscRing`]s (`rings[src][dst]`, written only by `src`,
//!   drained only by `dst` — see `ring.rs` for the memory-ordering
//!   contract). Each round ends with a second barrier, after which every
//!   worker drains its inbound rings (in source order) into its timer
//!   wheel and republishes its floor. Messages carry their canonical key
//!   from the sender, so arrival order is irrelevant to execution order.
//!
//! * **Segments.** Scripted controls mutate global state, so they
//!   delimit segments: the fleet quiesces up to the control's key, the
//!   master reassembles and runs the control serially, then the next
//!   segment begins.
//!
//! Ground truth is the one side effect whose *order* matters to callers;
//! workers tag each recorded event with `(key of the causing event,
//! index within its handling)` and the master merges all shards' traces
//! by that tag — exactly the serial recording order.

use crate::engine::{EventKey, MgmtAccounting, Node, QEntry, ShardCtx, Simulator, SyncStats};
use crate::ring::{EpochBarrier, SpscRing};
use crate::tracer::{GroundTruth, GtEvent};
use crate::wheel::EventWheel;
use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Floor value published by a worker with an empty queue.
const FLOOR_IDLE: EventKey = (u64::MAX, u32::MAX, u64::MAX);

/// Default SPSC ring capacity (slots per shard pair); override with the
/// `FET_RING_CAP` environment variable. Overflow never loses events —
/// a tiny capacity merely counts stalls (the determinism CI leg runs
/// with `FET_RING_CAP=2` to exercise exactly that path).
const DEFAULT_RING_CAP: usize = 1024;

fn ring_cap() -> usize {
    std::env::var("FET_RING_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_RING_CAP)
}

/// One worker's published floor. Cache-line aligned so per-worker
/// republication never false-shares.
#[repr(align(128))]
struct FloorSlot(UnsafeCell<EventKey>);

// SAFETY: slot `i` is written only by worker `i` between barriers and
// read by other workers only after the next barrier; the barrier's
// happens-before edge (see `ring.rs`) makes the plain accesses
// data-race-free.
unsafe impl Sync for FloorSlot {}

struct Floors(Vec<FloorSlot>);

impl Floors {
    fn new(n: usize) -> Self {
        Floors((0..n).map(|_| FloorSlot(UnsafeCell::new(FLOOR_IDLE))).collect())
    }

    /// Publish worker `i`'s floor.
    ///
    /// # Safety
    /// Only worker `i` may call this, and only in the loop phase where
    /// no other worker reads floors (between the drain barrier and the
    /// republish barrier).
    unsafe fn set(&self, i: usize, k: EventKey) {
        unsafe { *self.0[i].0.get() = k }
    }

    /// Read worker `i`'s floor.
    ///
    /// # Safety
    /// Callers must be separated from the writer by a barrier (floors
    /// are stable between the republish barrier and the next drain
    /// barrier).
    unsafe fn get(&self, i: usize) -> EventKey {
        unsafe { *self.0[i].0.get() }
    }
}

/// Per-worker synchronization tally for one segment.
#[derive(Default)]
struct WorkerSync {
    rounds: u64,
    batched: u64,
    received: u64,
}

/// Run `sim` until `until_ns` with the fleet sharded over `shards`
/// worker threads. Bit-identical to `sim.run_until(until_ns)`.
pub(crate) fn run(sim: &mut Simulator, until_ns: u64, shards: usize) {
    if shards <= 1 {
        sim.run_until(until_ns);
        return;
    }
    sim.arm_monitor_timers();
    // Serial processes events with time <= until_ns, i.e. key < overall.
    let overall: EventKey = (until_ns.saturating_add(1), 0, 0);
    loop {
        // Partition the pending queue: device events ship to their target's
        // shard; controls stay with the master and delimit the segment.
        let shards_u = shards as u32;
        let mut init: Vec<Vec<QEntry>> = (0..shards).map(|_| Vec::new()).collect();
        let mut controls: BinaryHeap<Reverse<QEntry>> = BinaryHeap::new();
        for e in sim.queue.drain_unordered() {
            match e.ev.target() {
                Some(t) => init[(t % shards_u) as usize].push(e),
                None => controls.push(Reverse(e)),
            }
        }
        let seg_bound = match controls.peek() {
            Some(Reverse(c)) => c.key().min(overall),
            None => overall,
        };
        run_segment(sim, seg_bound, shards, init);
        let due = matches!(controls.peek(), Some(Reverse(c)) if c.key() < overall);
        if !due {
            // Put unexpired controls back for a later run_until* call.
            for Reverse(c) in controls {
                sim.queue.push(c);
            }
            break;
        }
        let Reverse(entry) = controls.pop().expect("checked above");
        for Reverse(c) in controls {
            sim.queue.push(c);
        }
        sim.now = entry.time;
        sim.events_processed += 1;
        sim.dispatch(entry.ev);
    }
    sim.now = sim.now.max(until_ns.min(sim.now + 1));
}

/// Run one control-free segment up to `seg_bound` across `shards` workers,
/// starting from the pre-partitioned event lists `init`.
fn run_segment(
    sim: &mut Simulator,
    seg_bound: EventKey,
    shards: usize,
    mut init: Vec<Vec<QEntry>>,
) {
    let shards_u = shards as u32;
    let n = sim.nodes.len();

    // Lookahead: cross-shard frames arrive >= 1 (serialization) + prop_ns
    // after their sender's clock. None when no link crosses shards — then
    // the whole segment is one round.
    let mut min_prop: Option<u64> = None;
    for (&(node, _), peer) in &sim.port_map {
        if node % shards_u != peer.node % shards_u {
            let p = sim.links[peer.link].prop_ns;
            min_prop = Some(min_prop.map_or(p, |d| d.min(p)));
        }
    }
    let delta = min_prop.map(|p| p + 1);

    // The cross-shard hand-off grid: rings[src][dst] has exactly one
    // producer (worker src, via its ShardCtx) and one consumer (worker
    // dst, at the round's drain phase).
    let cap = ring_cap();
    let rings: Arc<Vec<Vec<SpscRing<QEntry>>>> =
        Arc::new((0..shards).map(|_| (0..shards).map(|_| SpscRing::new(cap)).collect()).collect());

    // Build the worker simulators: move owned devices out (leaving Vacant
    // slots), clone shared read-mostly tables.
    let mut workers: Vec<Simulator> = Vec::with_capacity(shards);
    for (s, q) in init.iter_mut().enumerate() {
        let nodes: Vec<Node> = (0..n)
            .map(|id| {
                if id as u32 % shards_u == s as u32 {
                    std::mem::replace(&mut sim.nodes[id], Node::Vacant)
                } else {
                    Node::Vacant
                }
            })
            .collect();
        let mut queue = EventWheel::new();
        for e in q.drain(..) {
            queue.push(e);
        }
        workers.push(Simulator {
            now: sim.now,
            queue,
            lane_seqs: sim.lane_seqs.clone(),
            nodes,
            links: sim.links.clone(),
            port_map: sim.port_map.clone(),
            gt: GroundTruth::new(),
            mgmt: MgmtAccounting::default(),
            controls: Vec::new(),
            events_processed: 0,
            timers_armed: true,
            host_ip_cache: sim.host_ip_cache.clone(),
            shard: Some(ShardCtx { shards: shards_u, shard: s as u32, rings: rings.clone() }),
            sync: SyncStats::default(),
        });
    }

    let floors = Floors::new(shards);
    let barrier = EpochBarrier::new(shards);
    let mut results: Vec<WorkerResult> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (s, w) in workers.into_iter().enumerate() {
            let floors = &floors;
            let barrier = &barrier;
            handles.push(scope.spawn(move || worker_loop(w, s, seg_bound, delta, floors, barrier)));
        }
        for h in handles {
            results.push(h.join().expect("worker thread panicked"));
        }
    });

    // Reassemble the master from the workers.
    let mut seg_sync = SyncStats { segments: 1, ..SyncStats::default() };
    seg_sync.ring_stalls = rings.iter().flatten().map(|r| r.stalls()).sum();
    let mut gt_merge: Vec<(EventKey, u32, GtEvent)> = Vec::new();
    for (s, (mut w, tags, wsync)) in results.into_iter().enumerate() {
        for (id, slot) in w.nodes.iter_mut().enumerate() {
            if id as u32 % shards_u == s as u32 {
                sim.nodes[id] = std::mem::replace(slot, Node::Vacant);
                sim.lane_seqs[id + 1] = w.lane_seqs[id + 1];
            }
        }
        // Link directions leaving this shard's ports are authoritative here.
        for (&(node, _), peer) in &sim.port_map {
            if node % shards_u == s as u32 {
                let src = &w.links[peer.link];
                let dst = &mut sim.links[peer.link];
                if peer.a_to_b {
                    dst.ab = src.ab.clone();
                } else {
                    dst.ba = src.ba.clone();
                }
            }
        }
        sim.mgmt.merge(&w.mgmt);
        sim.events_processed += w.events_processed;
        sim.now = sim.now.max(w.now);
        seg_sync.epochs_executed += wsync.rounds;
        seg_sync.epochs_batched += wsync.batched;
        seg_sync.ring_messages += wsync.received;
        // Events routed to this worker but beyond the segment (key >=
        // seg_bound) stay queued there; hand them back to the master.
        for e in w.queue.drain_unordered() {
            sim.queue.push(e);
        }
        let events = w.gt.drain();
        debug_assert_eq!(events.len(), tags.len(), "every gt event must be tagged");
        for ((key, sub), ev) in tags.into_iter().zip(events) {
            gt_merge.push((key, sub, ev));
        }
    }
    sim.sync.merge(&seg_sync);
    gt_merge.sort_by_key(|e| (e.0, e.1));
    for (_, _, ev) in gt_merge {
        sim.gt.record(ev);
    }
}

/// What a worker hands back: its simulator, the `(causing key, index)`
/// tag of every ground-truth event recorded (in recording order), and
/// the synchronization tally.
type WorkerResult = (Simulator, Vec<(EventKey, u32)>, WorkerSync);

/// Worker thread body: run the BSP round loop until the whole fleet has
/// quiesced at `seg_bound`.
fn worker_loop(
    mut w: Simulator,
    shard: usize,
    seg_bound: EventKey,
    delta: Option<u64>,
    floors: &Floors,
    barrier: &EpochBarrier,
) -> WorkerResult {
    let rings = w.shard.as_ref().expect("worker has shard ctx").rings.clone();
    let shards = rings.len();
    let mut tags: Vec<(EventKey, u32)> = Vec::new();
    let mut sync = WorkerSync::default();
    let mut inbound: Vec<QEntry> = Vec::new();
    // Tripwire for the conservative-bound proof: no inbound message may
    // land below a bound this worker already processed past. Assigned
    // each round before the drain that reads it.
    let mut last_bound: EventKey;

    // Round -1: publish the initial floor, then make all floors visible.
    // SAFETY: we own slot `shard`; no reader before the barrier.
    unsafe { floors.set(shard, w.queue.peek_key().unwrap_or(FLOOR_IDLE)) };
    barrier.wait();

    loop {
        // Snapshot the floors (stable: every writer is separated from us
        // by the last barrier) and derive this round's exclusion bound.
        let mut tmin = FLOOR_IDLE;
        let mut others_min = u64::MAX;
        let mut own = FLOOR_IDLE;
        for j in 0..shards {
            // SAFETY: reads are barrier-ordered after all writes.
            let f = unsafe { floors.get(j) };
            tmin = tmin.min(f);
            if j == shard {
                own = f;
            } else {
                others_min = others_min.min(f.0);
            }
        }
        if tmin >= seg_bound {
            // Everyone sees the same floors, so every worker breaks on
            // the same round — the barrier counts stay aligned.
            break;
        }
        let bound = match delta {
            None => seg_bound,
            Some(d) => seg_bound.min((others_min.saturating_add(d), 0, 0)).min((
                own.0.saturating_add(d.saturating_mul(2)),
                0,
                0,
            )),
        };
        sync.rounds += 1;
        last_bound = bound;
        if let Some(d) = delta {
            if own < bound {
                // Δ-windows covered beyond the single window a non-batched
                // epoch scheme would have granted.
                sync.batched += (bound.0 - own.0).saturating_sub(1) / d;
            }
        }

        // Process phase: everything locally pending below the bound.
        while w.queue.peek_key().is_some_and(|k| k < bound) {
            let entry = w.queue.pop().expect("peeked");
            w.now = entry.time;
            w.events_processed += 1;
            let key = entry.key();
            let before = w.gt.events().len();
            w.dispatch(entry.ev);
            for i in 0..(w.gt.events().len() - before) {
                tags.push((key, i as u32));
            }
        }

        // All sends of this round are published by the barrier's
        // happens-before edge...
        barrier.wait();
        // ...so draining the inbound rings (in source order) sees them.
        for (j, row) in rings.iter().enumerate() {
            if j != shard {
                sync.received += row[shard].drain_into(&mut inbound);
            }
        }
        for e in inbound.drain(..) {
            debug_assert!(
                e.key() >= last_bound,
                "shard {shard}: inbound event {:?} lands below processed bound {last_bound:?}",
                e.key()
            );
            w.queue.push(e);
        }
        // SAFETY: we own slot `shard`; readers wait for the next barrier.
        unsafe { floors.set(shard, w.queue.peek_key().unwrap_or(FLOOR_IDLE)) };
        barrier.wait();
    }
    (w, tags, sync)
}

#[cfg(test)]
mod tests {
    use crate::host::FlowSpec;
    use crate::routing::install_ecmp_routes;
    use crate::time::MILLIS;
    use crate::topology::{build_fat_tree, FatTree, FatTreeParams};
    use crate::Simulator;
    use fet_packet::FlowKey;

    fn setup() -> (Simulator, FatTree) {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        (sim, ft)
    }

    fn add_flow(sim: &mut Simulator, ft: &FatTree, src: usize, dst: usize, sport: u16) {
        let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 400_000,
            pkt_payload: 1000,
            rate_gbps: 20.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }

    /// A lossy multi-flow world with a scripted control mid-run.
    fn world() -> (Simulator, FatTree) {
        let (mut sim, ft) = setup();
        for src in 1..8 {
            add_flow(&mut sim, &ft, src, 0, 3000 + src as u16);
        }
        add_flow(&mut sim, &ft, 0, 7, 4000);
        let tor = ft.edges[0][0];
        sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.002;
        sim.schedule_control(3 * MILLIS, move |s| {
            s.link_direction_mut(tor, 1).unwrap().faults.drop_prob = 0.01;
        });
        (sim, ft)
    }

    fn fingerprint(
        sim: &Simulator,
        ft: &FatTree,
    ) -> (u64, usize, Vec<crate::GtEvent>, u64, u64, u64) {
        let rx: u64 = ft
            .hosts
            .iter()
            .map(|&h| sim.host(h).rx_flows.values().map(|f| f.pkts).sum::<u64>())
            .sum();
        (
            sim.events_processed(),
            sim.gt.events().len(),
            sim.gt.events().to_vec(),
            sim.host_tx_bytes(),
            sim.mgmt.total_bytes(),
            rx,
        )
    }

    #[test]
    fn parallel_matches_serial_at_every_shard_count() {
        let (mut serial, ft) = world();
        serial.run_until(8 * MILLIS);
        let want = fingerprint(&serial, &ft);
        assert_eq!(serial.sync_stats(), crate::SyncStats::default(), "serial runs no epochs");
        for shards in [2usize, 3, 4, 8] {
            let (mut par, ft2) = world();
            par.run_until_parallel(8 * MILLIS, shards);
            let got = fingerprint(&par, &ft2);
            assert_eq!(got, want, "shards={shards} diverged from serial");
            assert_eq!(par.now(), serial.now(), "clock diverged at shards={shards}");
            let sync = par.sync_stats();
            assert!(sync.segments >= 2, "control splits the run into segments");
            assert!(sync.epochs_executed > 0, "shards={shards} ran no epochs");
            assert!(sync.ring_messages > 0, "cross-pod traffic must cross shards");
        }
    }

    #[test]
    fn parallel_run_can_be_resumed_and_mixed_with_serial() {
        let (mut a, fta) = world();
        a.run_until(8 * MILLIS);

        let (mut b, ftb) = world();
        b.run_until_parallel(3 * MILLIS, 4);
        b.run_until(5 * MILLIS);
        b.run_until_parallel(8 * MILLIS, 2);

        assert_eq!(fingerprint(&a, &fta), fingerprint(&b, &ftb));
    }

    /// Serializes the tests that mutate or depend on `FET_RING_CAP`
    /// (cargo runs tests of one binary concurrently).
    static RING_CAP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn sync_stats_are_deterministic_per_configuration() {
        let _guard = RING_CAP_LOCK.lock().unwrap();
        let run = |shards: usize| {
            let (mut sim, _ft) = world();
            sim.run_until_parallel(8 * MILLIS, shards);
            sim.sync_stats()
        };
        for shards in [2usize, 4] {
            assert_eq!(run(shards), run(shards), "sync stats diverged at shards={shards}");
        }
    }

    #[test]
    fn tiny_rings_overflow_but_stay_bit_identical() {
        // A 2-slot ring forces the overflow lane constantly; results must
        // not change, only the stall counter.
        let _guard = RING_CAP_LOCK.lock().unwrap();
        let (mut serial, ft) = world();
        serial.run_until(4 * MILLIS);
        let want = fingerprint(&serial, &ft);
        std::env::set_var("FET_RING_CAP", "2");
        let (mut par, ft2) = world();
        par.run_until_parallel(4 * MILLIS, 4);
        std::env::remove_var("FET_RING_CAP");
        assert_eq!(fingerprint(&par, &ft2), want);
        assert!(par.sync_stats().ring_stalls > 0, "a 2-slot ring must stall");
    }
}
