//! Simulation time helpers. All times are `u64` nanoseconds.

/// One microsecond in nanoseconds.
pub const MICROS: u64 = 1_000;

/// One millisecond in nanoseconds.
pub const MILLIS: u64 = 1_000_000;

/// One second in nanoseconds.
pub const SECONDS: u64 = 1_000_000_000;

/// Serialization time of `bytes` at `gbps` gigabits/second, in ns,
/// rounded up (a partial nanosecond still occupies the wire).
pub fn tx_time_ns(bytes: usize, gbps: f64) -> u64 {
    ((bytes as f64 * 8.0) / gbps).ceil() as u64
}

/// Format a nanosecond timestamp human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= SECONDS {
        format!("{:.3}s", ns as f64 / SECONDS as f64)
    } else if ns >= MILLIS {
        format!("{:.3}ms", ns as f64 / MILLIS as f64)
    } else if ns >= MICROS {
        format!("{:.3}us", ns as f64 / MICROS as f64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_at_common_speeds() {
        // 1500B at 100G = 120ns; at 25G = 480ns; at 10G = 1200ns.
        assert_eq!(tx_time_ns(1500, 100.0), 120);
        assert_eq!(tx_time_ns(1500, 25.0), 480);
        assert_eq!(tx_time_ns(1500, 10.0), 1200);
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 100G = 0.08ns -> 1ns.
        assert_eq!(tx_time_ns(1, 100.0), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_500_000), "2.500ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
