//! Topology construction. The primary builder reproduces the paper's
//! testbed: a 4-ary fat-tree with 10 Tofino switches (2 pods × (2 edge +
//! 2 agg) + 2 cores) and 8 servers on 25G links, 100G fabric links.

use crate::engine::{NodeId, Simulator};
use crate::host::{Host, HostConfig};
use crate::link::Link;
use crate::switchdev::{SwitchConfig, SwitchDevice};
use fet_packet::ipv4::Ipv4Addr;

/// Fat-tree shape parameters.
#[derive(Debug, Clone)]
pub struct FatTreeParams {
    /// Number of pods.
    pub pods: usize,
    /// Edge (ToR) switches per pod.
    pub edge_per_pod: usize,
    /// Aggregation switches per pod.
    pub agg_per_pod: usize,
    /// Core switches (each core i attaches to agg i % agg_per_pod of every pod).
    pub cores: usize,
    /// Servers per edge switch.
    pub hosts_per_edge: usize,
    /// Fabric link speed, Gbps.
    pub fabric_gbps: f64,
    /// Host uplink speed, Gbps.
    pub host_gbps: f64,
    /// One-way propagation delay per link, ns.
    pub prop_ns: u64,
    /// Switch configuration template.
    pub switch_config: SwitchConfig,
    /// RNG seed for link fault streams.
    pub seed: u64,
}

impl Default for FatTreeParams {
    fn default() -> Self {
        // The paper's testbed: 10 switches, 8 servers, 100G fabric, 4x25G
        // server links (we model one 25G uplink per server).
        FatTreeParams {
            pods: 2,
            edge_per_pod: 2,
            agg_per_pod: 2,
            cores: 2,
            hosts_per_edge: 2,
            fabric_gbps: 100.0,
            host_gbps: 25.0,
            prop_ns: 500,
            switch_config: SwitchConfig::default(),
            seed: 0xfe75,
        }
    }
}

/// Handles to the constructed fat-tree.
#[derive(Debug, Clone)]
pub struct FatTree {
    /// Core switch ids.
    pub cores: Vec<NodeId>,
    /// Aggregation switches, per pod.
    pub aggs: Vec<Vec<NodeId>>,
    /// Edge (ToR) switches, per pod.
    pub edges: Vec<Vec<NodeId>>,
    /// Host ids, in (pod, edge, slot) order.
    pub hosts: Vec<NodeId>,
    /// Host IPs, parallel to `hosts`.
    pub host_ips: Vec<Ipv4Addr>,
    /// The parameters used.
    pub params_pods: usize,
}

impl FatTree {
    /// The host id owning an IP.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.host_ips.iter().position(|&h| h == ip).map(|i| self.hosts[i])
    }

    /// Every switch id.
    pub fn all_switches(&self) -> Vec<NodeId> {
        let mut v = self.cores.clone();
        for pod in &self.aggs {
            v.extend(pod);
        }
        for pod in &self.edges {
            v.extend(pod);
        }
        v
    }
}

/// Incremental topology builder used for bespoke test topologies.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    next_port: std::collections::HashMap<NodeId, u8>,
}

impl TopologyBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch with the next free id.
    pub fn switch(&mut self, sim: &mut Simulator, name: &str, config: SwitchConfig) -> NodeId {
        let id = sim.next_node_id();
        sim.add_switch(SwitchDevice::new(id, name, config))
    }

    /// Add a host with the next free id.
    pub fn host(&mut self, sim: &mut Simulator, config: HostConfig) -> NodeId {
        let id = sim.next_node_id();
        sim.add_host(Host::new(id, config))
    }

    /// Allocate the next free port number on a node.
    pub fn alloc_port(&mut self, node: NodeId) -> u8 {
        let p = self.next_port.entry(node).or_insert(0);
        let port = *p;
        *p += 1;
        port
    }

    /// Connect two nodes with auto-allocated ports. Returns (port_a, port_b).
    pub fn connect(
        &mut self,
        sim: &mut Simulator,
        a: NodeId,
        b: NodeId,
        gbps: f64,
        prop_ns: u64,
        seed: u64,
    ) -> (u8, u8) {
        let pa = self.alloc_port(a);
        let pb = self.alloc_port(b);
        sim.connect(a, pa, b, pb, Link::new(gbps, prop_ns, seed));
        (pa, pb)
    }
}

/// Deterministic host IP for (pod, edge, slot).
pub fn host_ip(pod: usize, edge: usize, slot: usize) -> Ipv4Addr {
    Ipv4Addr::from_octets([10, pod as u8, edge as u8, (slot + 1) as u8])
}

/// Build a fat-tree into `sim`. Ports are allocated in a fixed order, so
/// the same params always produce the same wiring.
pub fn build_fat_tree(sim: &mut Simulator, params: &FatTreeParams) -> FatTree {
    let mut b = TopologyBuilder::new();
    let mut seed = params.seed;
    let mut next_seed = || {
        seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        seed
    };

    let cores: Vec<NodeId> = (0..params.cores)
        .map(|i| b.switch(sim, &format!("core{i}"), params.switch_config.clone()))
        .collect();
    let mut aggs = Vec::new();
    let mut edges = Vec::new();
    for p in 0..params.pods {
        let pod_aggs: Vec<NodeId> = (0..params.agg_per_pod)
            .map(|i| b.switch(sim, &format!("agg{p}_{i}"), params.switch_config.clone()))
            .collect();
        let pod_edges: Vec<NodeId> = (0..params.edge_per_pod)
            .map(|i| b.switch(sim, &format!("tor{p}_{i}"), params.switch_config.clone()))
            .collect();
        aggs.push(pod_aggs);
        edges.push(pod_edges);
    }

    // Core ↔ agg: core i serves agg (i % agg_per_pod) in every pod.
    for (ci, &core) in cores.iter().enumerate() {
        for pod_aggs in &aggs {
            let agg = pod_aggs[ci % params.agg_per_pod];
            b.connect(sim, core, agg, params.fabric_gbps, params.prop_ns, next_seed());
        }
    }
    // Agg ↔ edge: full mesh within a pod.
    for (pod_aggs, pod_edges) in aggs.iter().zip(&edges) {
        for &agg in pod_aggs {
            for &edge in pod_edges {
                b.connect(sim, agg, edge, params.fabric_gbps, params.prop_ns, next_seed());
            }
        }
    }
    // Hosts.
    let mut hosts = Vec::new();
    let mut host_ips = Vec::new();
    for (p, pod_edges) in edges.iter().enumerate() {
        for (e, &edge) in pod_edges.iter().enumerate() {
            for s in 0..params.hosts_per_edge {
                let ip = host_ip(p, e, s);
                let host = b.host(
                    sim,
                    HostConfig { ip, nic_gbps: params.host_gbps, ..HostConfig::default() },
                );
                b.connect(sim, edge, host, params.host_gbps, params.prop_ns, next_seed());
                hosts.push(host);
                host_ips.push(ip);
            }
        }
    }

    FatTree { cores, aggs, edges, hosts, host_ips, params_pods: params.pods }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        // 2 cores + 2 pods x (2 agg + 2 edge) = 10 switches; 8 hosts.
        assert_eq!(ft.all_switches().len(), 10);
        assert_eq!(ft.hosts.len(), 8);
        assert_eq!(sim.switch_ids().len(), 10);
        assert_eq!(sim.host_ids().len(), 8);
    }

    #[test]
    fn wiring_degrees() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        let adj = sim.adjacency();
        // Each core touches one agg per pod.
        for &c in &ft.cores {
            assert_eq!(adj[&c].len(), 2);
        }
        // Each agg: 1 core + 2 edges.
        for pod in &ft.aggs {
            for &a in pod {
                assert_eq!(adj[&a].len(), 3);
            }
        }
        // Each edge: 2 aggs + 2 hosts.
        for pod in &ft.edges {
            for &e in pod {
                assert_eq!(adj[&e].len(), 4);
            }
        }
        // Hosts have exactly one uplink.
        for &h in &ft.hosts {
            assert_eq!(adj[&h].len(), 1);
        }
    }

    #[test]
    fn host_ips_unique_and_resolvable() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        let mut ips = ft.host_ips.clone();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), ft.hosts.len());
        for (i, &ip) in ft.host_ips.iter().enumerate() {
            assert_eq!(ft.host_by_ip(ip), Some(ft.hosts[i]));
        }
        assert_eq!(ft.host_by_ip(Ipv4Addr::from_octets([9, 9, 9, 9])), None);
    }

    #[test]
    fn builder_allocates_distinct_ports() {
        let mut sim = Simulator::new();
        let mut b = TopologyBuilder::new();
        let s1 = b.switch(&mut sim, "s1", SwitchConfig::default());
        let s2 = b.switch(&mut sim, "s2", SwitchConfig::default());
        let (a1, b1) = b.connect(&mut sim, s1, s2, 100.0, 10, 1);
        let (a2, b2) = b.connect(&mut sim, s1, s2, 100.0, 10, 2);
        assert_ne!(a1, a2);
        assert_ne!(b1, b2);
        assert_eq!(sim.peer_of(s1, a1), Some((s2, b1)));
        assert_eq!(sim.peer_of(s2, b2), Some((s1, a2)));
    }
}

/// A multi-board (chassis) switch modeled as two line cards joined by a
/// backplane link — the substrate for NetSeer's *inter-card* drop
/// detection (paper §3.3: "In multi-board (card) switches, we use a
/// similar idea to detect inter-card packet drop"). Faults injected on
/// the backplane reproduce the "inter-card drop" class of Figure 3.
#[derive(Debug, Clone, Copy)]
pub struct Chassis {
    /// Line card A (front-panel ports 1.. face the outside).
    pub card_a: NodeId,
    /// Line card B.
    pub card_b: NodeId,
    /// Backplane port on card A (toward B).
    pub backplane_a: u8,
    /// Backplane port on card B (toward A).
    pub backplane_b: u8,
}

/// Build a two-card chassis into `sim`. The backplane runs at
/// `backplane_gbps` with negligible propagation.
pub fn build_chassis(
    sim: &mut Simulator,
    b: &mut TopologyBuilder,
    name: &str,
    config: SwitchConfig,
    backplane_gbps: f64,
    seed: u64,
) -> Chassis {
    let card_a = b.switch(sim, &format!("{name}_cardA"), config.clone());
    let card_b = b.switch(sim, &format!("{name}_cardB"), config);
    let (pa, pb) = b.connect(sim, card_a, card_b, backplane_gbps, 50, seed);
    Chassis { card_a, card_b, backplane_a: pa, backplane_b: pb }
}

#[cfg(test)]
mod chassis_tests {
    use super::*;

    #[test]
    fn chassis_wires_backplane() {
        let mut sim = Simulator::new();
        let mut b = TopologyBuilder::new();
        let ch = build_chassis(&mut sim, &mut b, "big", SwitchConfig::default(), 400.0, 1);
        assert_eq!(sim.peer_of(ch.card_a, ch.backplane_a), Some((ch.card_b, ch.backplane_b)));
        assert_eq!(sim.switch(ch.card_a).name, "big_cardA");
    }
}
