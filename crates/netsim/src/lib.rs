//! Discrete-event data center network simulator.
//!
//! Replaces the paper's 10-switch Tofino testbed (see DESIGN.md). The
//! simulator is nanosecond-resolution and fully deterministic: a seeded PCG
//! RNG drives every stochastic choice, so experiments are bit-reproducible.
//!
//! * [`engine`] — the event loop ([`Simulator`]);
//! * [`switchdev`] — store-and-forward switch with ingress/egress pipeline,
//!   ACL, ECMP routing, a shared-buffer MMU, and PFC;
//! * [`host`] — traffic-generating hosts with rate-paced flows, ICMP echo
//!   responders, and optional NIC telemetry;
//! * [`link`] — bandwidth + propagation links with fault injection
//!   (silent drop, corruption, scripted bursts);
//! * [`monitor`] — the [`monitor::SwitchMonitor`] trait that
//!   NetSeer and all baseline monitors implement;
//! * [`tracer`] — the ground-truth oracle used to score event coverage;
//! * [`clockfault`] — seeded per-device virtual clocks (offset/drift/step/
//!   freeze) for the time-fault domain;
//! * [`topology`] / [`routing`] — fat-tree construction and ECMP routes.

#![warn(missing_docs)]

pub mod clockfault;
pub mod corrupt;
pub mod counters;
pub mod engine;
pub mod exporter;
pub mod host;
pub mod link;
pub mod mmu;
pub mod monitor;
mod parallel;
mod ring;
pub mod rng;
pub mod routing;
pub mod switchdev;
pub mod time;
pub mod topology;
pub mod tracer;
mod wheel;

pub use clockfault::{ClockSpec, DeviceClock};
pub use corrupt::{CorruptionGen, CorruptionSpec, CorruptionTally};
pub use engine::{NodeId, Simulator, SyncStats};
pub use exporter::{HostileExporter, HostileExporterConfig};
pub use host::{FlowSpec, Host, HostConfig};
pub use link::{FaultSpec, Link};
pub use monitor::{Actions, EgressCtx, HookVerdict, IngressCtx, RoutedCtx, SwitchMonitor};
pub use rng::Pcg32;
pub use switchdev::{SwitchConfig, SwitchDevice};
pub use time::{MICROS, MILLIS, SECONDS};
pub use topology::TopologyBuilder;
pub use tracer::{GroundTruth, GtEvent};
