//! Ground-truth oracle.
//!
//! The tracer records every data-plane event the simulator *actually*
//! causes, with full flow information — including for silently dropped and
//! corrupted frames, where it peeks at the frame before the fault. This is
//! what the paper approximates with NetSight's per-packet telemetry when it
//! claims "zero FP/FN": our oracle is exact, so coverage and accuracy
//! scores are exact too.

use fet_packet::event::{DropCode, EventType};
use fet_packet::FlowKey;
use std::collections::BTreeSet;

/// One ground-truth event occurrence (per packet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtEvent {
    /// Simulation time, ns.
    pub time_ns: u64,
    /// Device where the event happened. For inter-switch events this is the
    /// *upstream* device (whose egress lost the frame), matching where
    /// NetSeer reports them.
    pub device: u32,
    /// Event class.
    pub ty: EventType,
    /// Victim flow (None only for non-IP frames, e.g. corrupted PFC).
    pub flow: Option<FlowKey>,
    /// Drop reason when `ty` is a drop class.
    pub drop_code: Option<DropCode>,
    /// ACL rule id for ACL denies.
    pub acl_rule: Option<u32>,
}

/// Accumulates ground truth for one simulation run.
#[derive(Debug, Default)]
pub struct GroundTruth {
    events: Vec<GtEvent>,
}

impl GroundTruth {
    /// Fresh, empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one event.
    pub fn record(&mut self, ev: GtEvent) {
        self.events.push(ev);
    }

    /// All recorded events.
    pub fn events(&self) -> &[GtEvent] {
        &self.events
    }

    /// Number of packet-level events of a type.
    pub fn count(&self, ty: EventType) -> usize {
        self.events.iter().filter(|e| e.ty == ty).count()
    }

    /// The set of distinct flow-level events of a type: (device, flow).
    /// This is the unit of the paper's coverage metric — a monitor covers a
    /// flow event if it reported that flow experiencing that event at that
    /// device.
    pub fn flow_events(&self, ty: EventType) -> BTreeSet<(u32, FlowKey)> {
        self.events
            .iter()
            .filter(|e| e.ty == ty)
            .filter_map(|e| e.flow.map(|f| (e.device, f)))
            .collect()
    }

    /// Distinct flow-level events across all types: (device, type, flow).
    pub fn all_flow_events(&self) -> BTreeSet<(u32, EventType, FlowKey)> {
        self.events.iter().filter_map(|e| e.flow.map(|f| (e.device, e.ty, f))).collect()
    }

    /// Events within a time window.
    pub fn in_window(&self, from_ns: u64, to_ns: u64) -> impl Iterator<Item = &GtEvent> {
        self.events.iter().filter(move |e| e.time_ns >= from_ns && e.time_ns < to_ns)
    }

    /// Clear all recorded events (between experiment phases).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Take all recorded events, leaving the oracle empty (shard merge).
    pub(crate) fn drain(&mut self) -> Vec<GtEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fet_packet::ipv4::Ipv4Addr;

    fn flow(n: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::from_octets([10, 0, 0, 1]),
            n,
            Ipv4Addr::from_octets([10, 0, 0, 2]),
            80,
        )
    }

    fn ev(t: u64, dev: u32, ty: EventType, n: u16) -> GtEvent {
        GtEvent {
            time_ns: t,
            device: dev,
            ty,
            flow: Some(flow(n)),
            drop_code: None,
            acl_rule: None,
        }
    }

    #[test]
    fn counts_by_type() {
        let mut gt = GroundTruth::new();
        gt.record(ev(1, 0, EventType::Congestion, 1));
        gt.record(ev(2, 0, EventType::Congestion, 1));
        gt.record(ev(3, 1, EventType::PipelineDrop, 2));
        assert_eq!(gt.count(EventType::Congestion), 2);
        assert_eq!(gt.count(EventType::PipelineDrop), 1);
        assert_eq!(gt.count(EventType::Pause), 0);
    }

    #[test]
    fn flow_events_deduplicate_packets() {
        let mut gt = GroundTruth::new();
        for t in 0..100 {
            gt.record(ev(t, 3, EventType::Congestion, 7));
        }
        let set = gt.flow_events(EventType::Congestion);
        assert_eq!(set.len(), 1);
        assert!(set.contains(&(3, flow(7))));
    }

    #[test]
    fn same_flow_different_devices_are_distinct() {
        let mut gt = GroundTruth::new();
        gt.record(ev(1, 1, EventType::MmuDrop, 5));
        gt.record(ev(1, 2, EventType::MmuDrop, 5));
        assert_eq!(gt.flow_events(EventType::MmuDrop).len(), 2);
    }

    #[test]
    fn window_filtering() {
        let mut gt = GroundTruth::new();
        gt.record(ev(10, 0, EventType::Pause, 1));
        gt.record(ev(20, 0, EventType::Pause, 2));
        gt.record(ev(30, 0, EventType::Pause, 3));
        assert_eq!(gt.in_window(15, 30).count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut gt = GroundTruth::new();
        gt.record(ev(1, 0, EventType::Congestion, 1));
        gt.clear();
        assert!(gt.events().is_empty());
    }
}
