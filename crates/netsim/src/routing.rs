//! ECMP route computation: BFS shortest paths from every host, installing
//! per-host /32 routes with the full set of equal-cost next-hop ports.

use crate::engine::{Node, NodeId, Simulator};
use std::collections::{HashMap, VecDeque};

/// Compute and install ECMP routes for every host into every switch.
///
/// For each host H, a BFS over the device graph yields each switch's
/// distance to H; the ECMP set of a switch is every port whose peer is one
/// hop closer. Hosts get /32 routes (the testbed scale makes aggregation
/// unnecessary and keeps fault injection surgical).
pub fn install_ecmp_routes(sim: &mut Simulator) {
    let adj = sim.adjacency();
    let hosts = sim.host_ids();
    for host in hosts {
        let ip = sim.host(host).config.ip;
        let dist = bfs_distances(&adj, host);
        for sw_id in sim.switch_ids() {
            let Some(&d_me) = dist.get(&sw_id) else { continue };
            let mut ports: Vec<u8> = adj
                .get(&sw_id)
                .map(|nbrs| {
                    nbrs.iter()
                        .filter(|(_, peer)| dist.get(peer).is_some_and(|&d| d + 1 == d_me))
                        .map(|(port, _)| *port)
                        .collect()
                })
                .unwrap_or_default();
            ports.sort_unstable();
            if !ports.is_empty() {
                sim.switch_mut(sw_id).routes.insert(ip, 32, ports);
            }
        }
    }
}

/// BFS hop distances from `start` to every node, traversing only live links.
fn bfs_distances(adj: &HashMap<NodeId, Vec<(u8, NodeId)>>, start: NodeId) -> HashMap<NodeId, u32> {
    let mut dist = HashMap::new();
    dist.insert(start, 0);
    let mut q = VecDeque::new();
    q.push_back(start);
    while let Some(n) = q.pop_front() {
        let d = dist[&n];
        if let Some(nbrs) = adj.get(&n) {
            for &(_, peer) in nbrs {
                dist.entry(peer).or_insert_with(|| {
                    q.push_back(peer);
                    d + 1
                });
            }
        }
    }
    dist
}

/// Remove the route toward `ip` from one switch (blackhole injection,
/// the paper's case study #1 and #3 fault).
pub fn remove_route(sim: &mut Simulator, sw: NodeId, ip: fet_packet::ipv4::Ipv4Addr) {
    sim.switch_mut(sw).routes.remove(ip, 32);
}

/// Point `ip` at a specific port set on one switch (mis-route injection).
pub fn override_route(
    sim: &mut Simulator,
    sw: NodeId,
    ip: fet_packet::ipv4::Ipv4Addr,
    ports: Vec<u8>,
) {
    sim.switch_mut(sw).routes.insert(ip, 32, ports);
}

/// Sanity check: every switch can reach every host.
pub fn routes_complete(sim: &Simulator) -> bool {
    let host_ips: Vec<_> = sim.host_ids().iter().map(|&h| sim.host(h).config.ip).collect();
    sim.switch_ids().iter().all(|&s| {
        let sw = match &sim.nodes[s as usize] {
            Node::Switch(sw) => sw,
            _ => unreachable!(),
        };
        host_ips.iter().all(|&ip| sw.routes.lookup(ip).is_some())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_fat_tree, FatTreeParams};

    #[test]
    fn routes_cover_every_host_from_every_switch() {
        let mut sim = Simulator::new();
        let _ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        assert!(routes_complete(&sim));
    }

    #[test]
    fn tor_uses_multiple_uplinks_for_remote_pods() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        // From tor0_0, a host in pod 1 should be reachable via both aggs.
        let tor = ft.edges[0][0];
        let remote_ip = ft.host_ips[ft.hosts.len() - 1];
        let ports = sim.switch(tor).routes.lookup(remote_ip).unwrap();
        assert_eq!(ports.len(), 2, "expected 2-way ECMP, got {ports:?}");
    }

    #[test]
    fn tor_uses_single_downlink_for_local_host() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        let tor = ft.edges[0][0];
        let local_ip = ft.host_ips[0];
        let ports = sim.switch(tor).routes.lookup(local_ip).unwrap();
        assert_eq!(ports.len(), 1);
    }

    #[test]
    fn remove_route_blackholes() {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        let tor = ft.edges[0][0];
        remove_route(&mut sim, tor, ft.host_ips[7]);
        assert!(sim.switch(tor).routes.lookup(ft.host_ips[7]).is_none());
        assert!(!routes_complete(&sim));
    }
}
