//! Memory management unit: shared-buffer accounting with dynamic
//! thresholds, per-queue depths, and PFC watermark decisions.
//!
//! Models the traffic manager of a shared-buffer switching ASIC: a pool of
//! `total_bytes` cells shared by all (port, queue) pairs. Admission uses
//! the classic dynamic-threshold rule — a queue may grow to
//! `alpha × free_shared` — which is what produces the incast congestion
//! drops in the paper's experiments.

/// MMU configuration.
#[derive(Debug, Clone, Copy)]
pub struct MmuConfig {
    /// Shared buffer pool size, bytes (Tofino-class: ~22 MB; scaled to the
    /// testbed in experiments).
    pub total_bytes: u64,
    /// Dynamic threshold alpha: queue limit = alpha × free shared bytes.
    pub alpha: f64,
    /// PFC XOFF watermark per queue, bytes (pause upstream above this).
    pub pfc_xoff_bytes: u64,
    /// PFC XON watermark per queue, bytes (resume below this).
    pub pfc_xon_bytes: u64,
    /// Number of priority queues per port.
    pub queues_per_port: u8,
}

impl Default for MmuConfig {
    fn default() -> Self {
        MmuConfig {
            total_bytes: 22 * 1024 * 1024,
            alpha: 2.0,
            pfc_xoff_bytes: 512 * 1024,
            pfc_xon_bytes: 256 * 1024,
            queues_per_port: 8,
        }
    }
}

/// Why the MMU rejected a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuVerdict {
    /// Admitted to the queue.
    Admit,
    /// Rejected: queue exceeded its dynamic threshold or the pool is full.
    Drop,
}

/// Shared-buffer occupancy tracker.
#[derive(Debug, Clone)]
pub struct Mmu {
    config: MmuConfig,
    used_bytes: u64,
    /// Depth per (port, queue).
    depths: Vec<u64>,
    ports: u8,
    /// Total admitted / dropped counts.
    admitted: u64,
    dropped: u64,
}

impl Mmu {
    /// Create an MMU for `ports` ports.
    pub fn new(ports: u8, config: MmuConfig) -> Self {
        let n = usize::from(ports) * usize::from(config.queues_per_port);
        Mmu { config, used_bytes: 0, depths: vec![0; n], ports, admitted: 0, dropped: 0 }
    }

    fn idx(&self, port: u8, queue: u8) -> usize {
        debug_assert!(port < self.ports && queue < self.config.queues_per_port);
        usize::from(port) * usize::from(self.config.queues_per_port) + usize::from(queue)
    }

    /// Free shared bytes.
    pub fn free_bytes(&self) -> u64 {
        self.config.total_bytes.saturating_sub(self.used_bytes)
    }

    /// Current depth of one queue, bytes.
    pub fn depth(&self, port: u8, queue: u8) -> u64 {
        self.depths[self.idx(port, queue)]
    }

    /// Try to admit `bytes` into (port, queue).
    pub fn admit(&mut self, port: u8, queue: u8, bytes: u64) -> MmuVerdict {
        let depth = self.depths[self.idx(port, queue)];
        let free = self.free_bytes();
        let limit = (self.config.alpha * free as f64) as u64;
        if bytes > free || depth + bytes > limit {
            self.dropped += 1;
            return MmuVerdict::Drop;
        }
        let i = self.idx(port, queue);
        self.depths[i] += bytes;
        self.used_bytes += bytes;
        self.admitted += 1;
        MmuVerdict::Admit
    }

    /// Release `bytes` from (port, queue) at dequeue.
    pub fn release(&mut self, port: u8, queue: u8, bytes: u64) {
        let i = self.idx(port, queue);
        debug_assert!(self.depths[i] >= bytes, "MMU release underflow");
        self.depths[i] = self.depths[i].saturating_sub(bytes);
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }

    /// True when the queue has crossed the XOFF watermark (send PAUSE).
    pub fn above_xoff(&self, port: u8, queue: u8) -> bool {
        self.depth(port, queue) >= self.config.pfc_xoff_bytes
    }

    /// True when the queue has drained below the XON watermark (send RESUME).
    pub fn below_xon(&self, port: u8, queue: u8) -> bool {
        self.depth(port, queue) <= self.config.pfc_xon_bytes
    }

    /// Packets admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Packets dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configuration.
    pub fn config(&self) -> &MmuConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Mmu {
        Mmu::new(
            4,
            MmuConfig {
                total_bytes: 10_000,
                alpha: 1.0,
                pfc_xoff_bytes: 3_000,
                pfc_xon_bytes: 1_000,
                queues_per_port: 2,
            },
        )
    }

    #[test]
    fn admit_and_release_balance() {
        let mut m = small();
        assert_eq!(m.admit(0, 0, 1_000), MmuVerdict::Admit);
        assert_eq!(m.depth(0, 0), 1_000);
        assert_eq!(m.free_bytes(), 9_000);
        m.release(0, 0, 1_000);
        assert_eq!(m.depth(0, 0), 0);
        assert_eq!(m.free_bytes(), 10_000);
    }

    #[test]
    fn pool_exhaustion_drops() {
        let mut m = small();
        // Fill the pool from multiple queues (alpha=1 allows up to free).
        assert_eq!(m.admit(0, 0, 4_000), MmuVerdict::Admit);
        assert_eq!(m.admit(1, 0, 4_000), MmuVerdict::Admit);
        // 2000 free; queue limit = 1*2000 = 2000 -> 2500 rejected.
        assert_eq!(m.admit(2, 0, 2_500), MmuVerdict::Drop);
        assert_eq!(m.dropped(), 1);
        // 2000 exactly fits.
        assert_eq!(m.admit(2, 0, 2_000), MmuVerdict::Admit);
        assert_eq!(m.free_bytes(), 0);
        assert_eq!(m.admit(3, 0, 1), MmuVerdict::Drop);
    }

    #[test]
    fn dynamic_threshold_squeezes_hog_queue() {
        let mut m = small();
        // One queue grows until its dynamic limit blocks it well before the
        // pool is empty: after using U bytes, limit = 10_000 - U, so the
        // queue converges toward half the pool (alpha=1).
        let mut admitted = 0u64;
        while m.admit(0, 0, 500) == MmuVerdict::Admit {
            admitted += 500;
            assert!(admitted < 10_000, "hog queue should be limited before pool");
        }
        assert!(admitted <= 5_500, "admitted {admitted}");
        // A second queue can still get buffer.
        assert_eq!(m.admit(1, 1, 500), MmuVerdict::Admit);
    }

    #[test]
    fn pfc_watermarks() {
        let mut m = small();
        assert!(!m.above_xoff(0, 0));
        assert!(m.below_xon(0, 0));
        m.admit(0, 0, 3_500).unwrap_admit();
        assert!(m.above_xoff(0, 0));
        assert!(!m.below_xon(0, 0));
        m.release(0, 0, 3_000);
        assert!(!m.above_xoff(0, 0));
        assert!(m.below_xon(0, 0));
    }

    trait UnwrapAdmit {
        fn unwrap_admit(self);
    }
    impl UnwrapAdmit for MmuVerdict {
        fn unwrap_admit(self) {
            assert_eq!(self, MmuVerdict::Admit);
        }
    }
}
