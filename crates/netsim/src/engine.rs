//! The discrete-event engine: owns all devices and links, orders events on
//! a nanosecond timeline, and moves frames between devices.

use crate::host::Host;
use crate::link::{Link, LinkDirection, LinkOutcome};
use crate::monitor::{MgmtReport, SwitchMonitor};
use crate::ring::SpscRing;
use crate::switchdev::{ArrivalEffects, SwitchDevice};
use crate::time::tx_time_ns;
use crate::tracer::{GroundTruth, GtEvent};
use crate::wheel::EventWheel;
use fet_packet::builder::extract_flow;
use fet_packet::event::{DropCode, EventType};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a device in the simulator.
pub type NodeId = u32;

/// A device: either a switch or a host.
// Networks hold tens of devices, so the size difference between the two
// variants is irrelevant next to the indirection a Box would add to every
// per-packet access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Node {
    /// A switch.
    Switch(SwitchDevice),
    /// A host.
    Host(Host),
    /// A slot whose device is temporarily owned by another shard of a
    /// parallel run (see [`Simulator::run_until_parallel`]). Never visible
    /// to user code outside a parallel segment.
    Vacant,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Peer {
    pub(crate) node: NodeId,
    pub(crate) port: u8,
    pub(crate) link: usize,
    /// True when traveling this hop uses the link's a→b direction.
    pub(crate) a_to_b: bool,
}

/// Scheduled simulator events.
pub(crate) enum SimEvent {
    Arrive { node: NodeId, port: u8, frame: Vec<u8>, fcs_error: bool },
    Dequeue { node: NodeId, port: u8 },
    RetryPort { node: NodeId, port: u8 },
    HostFlowEmit { host: NodeId, flow: usize },
    HostProbeRound { host: NodeId, interval_ns: u64, timeout_ns: u64 },
    MonitorTimer { node: NodeId, interval_ns: u64 },
    Control { idx: usize },
}

impl SimEvent {
    /// The node that will handle this event, `None` for controls (which
    /// act on the whole simulator).
    pub(crate) fn target(&self) -> Option<NodeId> {
        match *self {
            SimEvent::Arrive { node, .. }
            | SimEvent::Dequeue { node, .. }
            | SimEvent::RetryPort { node, .. }
            | SimEvent::MonitorTimer { node, .. } => Some(node),
            SimEvent::HostFlowEmit { host, .. } | SimEvent::HostProbeRound { host, .. } => {
                Some(host)
            }
            SimEvent::Control { .. } => None,
        }
    }
}

/// The canonical event key `(time, lane, seq)`.
///
/// `lane` is the scheduling origin: device id + 1 for events pushed while
/// handling that device's events, 0 for external pushes (pre-run setup and
/// controls). `seq` counts pushes per lane. Because a device's pushes are
/// totally ordered by its own execution, the key is identical whether the
/// fleet runs serially or sharded — it is the total order both modes share.
pub(crate) type EventKey = (u64, u32, u64);

pub(crate) struct QEntry {
    pub(crate) time: u64,
    pub(crate) lane: u32,
    pub(crate) seq: u64,
    pub(crate) ev: SimEvent,
}

impl QEntry {
    pub(crate) fn key(&self) -> EventKey {
        (self.time, self.lane, self.seq)
    }
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Worker-side context of a parallel run: which devices this shard owns and
/// the SPSC ring grid for cross-shard event hand-off (only frame arrivals
/// ever cross shards; see `parallel.rs` for the proof sketch).
/// `rings[src][dst]` is produced only by shard `src` and consumed only by
/// shard `dst`, satisfying the SPSC contract in `ring.rs`.
pub(crate) struct ShardCtx {
    pub(crate) shards: u32,
    pub(crate) shard: u32,
    pub(crate) rings: Arc<Vec<Vec<SpscRing<QEntry>>>>,
}

/// Counters for the parallel executor's cross-shard synchronization,
/// surfaced through `fet-export` as the `fet_sim_*` families.
///
/// Zero after a purely serial run. The values are deterministic for a
/// fixed (scenario, shard count, ring capacity) triple — the BSP epoch
/// schedule is a pure function of event keys — but they legitimately
/// *differ across shard counts*, so they live outside the serial-vs-
/// parallel fingerprint and are checked by the same-configuration
/// determinism sweep instead (det_19).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncStats {
    /// Parallel segments executed (scripted controls delimit segments).
    pub segments: u64,
    /// Worker processing rounds (one epoch-barrier cycle each), summed
    /// over workers.
    pub epochs_executed: u64,
    /// Additional Δ-lookahead windows covered without a barrier thanks
    /// to batched epoch advancement, summed over workers.
    pub epochs_batched: u64,
    /// Cross-shard events handed off through the SPSC rings.
    pub ring_messages: u64,
    /// Pushes that found a ring full and took the overflow lane.
    pub ring_stalls: u64,
}

impl SyncStats {
    /// Fold a segment's worth of counters into the run total.
    pub(crate) fn merge(&mut self, other: &SyncStats) {
        self.segments += other.segments;
        self.epochs_executed += other.epochs_executed;
        self.epochs_batched += other.epochs_batched;
        self.ring_messages += other.ring_messages;
        self.ring_stalls += other.ring_stalls;
    }
}

/// Management-plane (monitoring traffic) accounting.
#[derive(Debug, Default)]
pub struct MgmtAccounting {
    /// Per report kind: (messages, bytes).
    pub per_kind: HashMap<&'static str, (u64, u64)>,
    /// Per device: bytes.
    pub per_node: HashMap<NodeId, u64>,
}

impl MgmtAccounting {
    fn add(&mut self, node: NodeId, r: &MgmtReport) {
        let e = self.per_kind.entry(r.kind).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.bytes as u64;
        *self.per_node.entry(node).or_insert(0) += r.bytes as u64;
    }

    /// Fold another accounting into this one (shard merge; all counters are
    /// commutative sums, so merge order does not matter).
    pub(crate) fn merge(&mut self, other: &MgmtAccounting) {
        for (kind, (m, b)) in &other.per_kind {
            let e = self.per_kind.entry(kind).or_insert((0, 0));
            e.0 += m;
            e.1 += b;
        }
        for (node, b) in &other.per_node {
            *self.per_node.entry(*node).or_insert(0) += b;
        }
    }

    /// Total management bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.per_kind.values().map(|(_, b)| *b).sum()
    }

    /// Total messages across all kinds.
    pub fn total_msgs(&self) -> u64 {
        self.per_kind.values().map(|(m, _)| *m).sum()
    }

    /// Bytes for one kind.
    pub fn bytes_of(&self, kind: &str) -> u64 {
        self.per_kind.get(kind).map(|(_, b)| *b).unwrap_or(0)
    }
}

type ControlFn = Box<dyn FnOnce(&mut Simulator) + Send>;

/// The simulator: devices, links, event queue, ground truth, accounting.
pub struct Simulator {
    pub(crate) now: u64,
    pub(crate) queue: EventWheel,
    /// Per-lane push counters (lane 0 = external, lane d+1 = device d).
    pub(crate) lane_seqs: Vec<u64>,
    /// All devices.
    pub nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
    pub(crate) port_map: HashMap<(NodeId, u8), Peer>,
    /// Ground-truth oracle.
    pub gt: GroundTruth,
    /// Monitoring traffic accounting.
    pub mgmt: MgmtAccounting,
    pub(crate) controls: Vec<Option<ControlFn>>,
    pub(crate) events_processed: u64,
    pub(crate) timers_armed: bool,
    /// `(host id, ip)` in id order — lets the probe path look up targets
    /// without touching other nodes (they may live on another shard).
    pub(crate) host_ip_cache: Vec<(NodeId, fet_packet::ipv4::Ipv4Addr)>,
    /// Present only on the worker simulators of a parallel segment.
    pub(crate) shard: Option<ShardCtx>,
    /// Cross-shard synchronization counters (all zero for serial runs).
    pub(crate) sync: SyncStats,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Empty simulator.
    pub fn new() -> Self {
        Simulator {
            now: 0,
            queue: EventWheel::new(),
            lane_seqs: vec![0],
            nodes: Vec::new(),
            links: Vec::new(),
            port_map: HashMap::new(),
            gt: GroundTruth::new(),
            mgmt: MgmtAccounting::default(),
            controls: Vec::new(),
            events_processed: 0,
            timers_armed: false,
            host_ip_cache: Vec::new(),
            shard: None,
            sync: SyncStats::default(),
        }
    }

    /// Current simulation time, ns.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Cross-shard synchronization counters accumulated by
    /// [`run_until_parallel`](Self::run_until_parallel) (all zero for
    /// serial runs).
    pub fn sync_stats(&self) -> SyncStats {
        self.sync
    }

    /// Add a switch; returns its node id.
    pub fn add_switch(&mut self, sw: SwitchDevice) -> NodeId {
        let id = self.nodes.len() as NodeId;
        debug_assert_eq!(sw.id, id, "switch id must match its slot");
        self.nodes.push(Node::Switch(sw));
        self.lane_seqs.push(0);
        id
    }

    /// Add a host; returns its node id.
    pub fn add_host(&mut self, h: Host) -> NodeId {
        let id = self.nodes.len() as NodeId;
        debug_assert_eq!(h.id, id, "host id must match its slot");
        self.host_ip_cache.push((id, h.config.ip));
        self.nodes.push(Node::Host(h));
        self.lane_seqs.push(0);
        id
    }

    /// Next node id that will be assigned.
    pub fn next_node_id(&self) -> NodeId {
        self.nodes.len() as NodeId
    }

    /// Connect (a, pa) ↔ (b, pb) with a full-duplex link. Returns link index.
    pub fn connect(&mut self, a: NodeId, pa: u8, b: NodeId, pb: u8, link: Link) -> usize {
        let idx = self.links.len();
        self.links.push(link);
        self.port_map.insert((a, pa), Peer { node: b, port: pb, link: idx, a_to_b: true });
        self.port_map.insert((b, pb), Peer { node: a, port: pa, link: idx, a_to_b: false });
        idx
    }

    /// Fault-injection access: the direction of `link` leaving `(node, port)`.
    pub fn link_direction_mut(&mut self, node: NodeId, port: u8) -> Option<&mut LinkDirection> {
        let peer = *self.port_map.get(&(node, port))?;
        let l = &mut self.links[peer.link];
        Some(if peer.a_to_b { &mut l.ab } else { &mut l.ba })
    }

    /// Peer of a port: (node, port).
    pub fn peer_of(&self, node: NodeId, port: u8) -> Option<(NodeId, u8)> {
        self.port_map.get(&(node, port)).map(|p| (p.node, p.port))
    }

    /// Borrow a switch.
    pub fn switch(&self, id: NodeId) -> &SwitchDevice {
        match &self.nodes[id as usize] {
            Node::Switch(s) => s,
            _ => panic!("node {id} is not a resident switch"),
        }
    }

    /// Mutably borrow a switch.
    pub fn switch_mut(&mut self, id: NodeId) -> &mut SwitchDevice {
        match &mut self.nodes[id as usize] {
            Node::Switch(s) => s,
            _ => panic!("node {id} is not a resident switch"),
        }
    }

    /// Borrow a host.
    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id as usize] {
            Node::Host(h) => h,
            _ => panic!("node {id} is not a resident host"),
        }
    }

    /// Mutably borrow a host.
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id as usize] {
            Node::Host(h) => h,
            _ => panic!("node {id} is not a resident host"),
        }
    }

    /// Detach the monitor of any node (switch or host) — the crash half of
    /// a device restart. The data plane keeps forwarding; the node's
    /// monitor timer keeps firing and finding nothing, so a later
    /// [`install_node_monitor`](Simulator::install_node_monitor) resumes
    /// ticks without re-arming.
    pub fn take_node_monitor(&mut self, id: NodeId) -> Option<Box<dyn SwitchMonitor>> {
        match &mut self.nodes[id as usize] {
            Node::Switch(s) => s.take_monitor(),
            Node::Host(h) => h.monitor.take(),
            Node::Vacant => None,
        }
    }

    /// Reattach a monitor to any node — the restart half of a device
    /// restart.
    pub fn install_node_monitor(&mut self, id: NodeId, m: Box<dyn SwitchMonitor>) {
        match &mut self.nodes[id as usize] {
            Node::Switch(s) => s.set_monitor(m),
            Node::Host(h) => h.monitor = Some(m),
            Node::Vacant => panic!("node {id} is not resident"),
        }
    }

    /// Iterator over switch ids.
    pub fn switch_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Switch(_)))
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Iterator over host ids.
    pub fn host_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::Host(_)))
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Push an event with the canonical `(time, lane, seq)` key. `lane` is
    /// the scheduling origin (0 = external, device id + 1 otherwise). On a
    /// parallel shard, events for non-resident nodes are diverted to the
    /// outbox instead of the local queue; the keys are assigned either way,
    /// so the global total order is shard-independent.
    pub(crate) fn push_keyed(&mut self, lane: u32, time: u64, ev: SimEvent) {
        let seq = self.lane_seqs[lane as usize];
        self.lane_seqs[lane as usize] = seq + 1;
        let entry = QEntry { time, lane, seq, ev };
        if let Some(ctx) = self.shard.as_mut() {
            if let Some(target) = entry.ev.target() {
                let dest = target % ctx.shards;
                if dest != ctx.shard {
                    ctx.rings[ctx.shard as usize][dest as usize].push(entry);
                    return;
                }
            }
        }
        self.queue.push(entry);
    }

    /// Push from a device's own execution (lane = device id + 1).
    fn push_node(&mut self, origin: NodeId, time: u64, ev: SimEvent) {
        self.push_keyed(origin + 1, time, ev);
    }

    /// Push from outside any device's execution (setup and controls).
    fn push(&mut self, time: u64, ev: SimEvent) {
        self.push_keyed(0, time, ev);
    }

    /// Schedule a scripted control action (fault injection, route change).
    pub fn schedule_control(
        &mut self,
        at_ns: u64,
        f: impl FnOnce(&mut Simulator) + Send + 'static,
    ) {
        let idx = self.controls.len();
        self.controls.push(Some(Box::new(f)));
        self.push(at_ns, SimEvent::Control { idx });
    }

    /// Schedule flow `flow_idx` of `host` to begin at its spec'd start time.
    pub fn schedule_flow(&mut self, host: NodeId, flow_idx: usize) {
        let start = match &self.nodes[host as usize] {
            Node::Host(h) => h.flows[flow_idx].0.start_ns,
            _ => panic!("flows start at hosts"),
        };
        self.push(start, SimEvent::HostFlowEmit { host, flow: flow_idx });
    }

    /// Start Pingmesh-style probing at `host`: a probe round to every other
    /// host every `interval_ns`, with loss timeout `timeout_ns`.
    pub fn schedule_probing(
        &mut self,
        host: NodeId,
        start_ns: u64,
        interval_ns: u64,
        timeout_ns: u64,
    ) {
        self.push(start_ns, SimEvent::HostProbeRound { host, interval_ns, timeout_ns });
    }

    /// Arm monitor timers for all devices (idempotent; call before run).
    pub fn arm_monitor_timers(&mut self) {
        if self.timers_armed {
            return;
        }
        self.timers_armed = true;
        let ids: Vec<(NodeId, u64)> = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| {
                let iv = match n {
                    Node::Switch(s) => s.monitor.as_ref()?.timer_interval_ns()?,
                    Node::Host(h) => h.monitor.as_ref()?.timer_interval_ns()?,
                    Node::Vacant => return None,
                };
                Some((i as NodeId, iv))
            })
            .collect();
        for (node, interval_ns) in ids {
            self.push(self.now + interval_ns, SimEvent::MonitorTimer { node, interval_ns });
        }
    }

    /// Run until the queue is empty or simulated time reaches `until_ns`.
    pub fn run_until(&mut self, until_ns: u64) {
        self.arm_monitor_timers();
        while let Some((time, _, _)) = self.queue.peek_key() {
            if time > until_ns {
                break;
            }
            let entry = self.queue.pop().expect("peeked");
            self.now = entry.time;
            self.events_processed += 1;
            self.dispatch(entry.ev);
        }
        self.now = self.now.max(until_ns.min(self.now + 1));
    }

    /// Run like [`run_until`](Self::run_until), but with the fleet sharded
    /// across `shards` worker threads (devices assigned round-robin by id).
    /// The result — device state, delivered events, ground truth, ledgers,
    /// management accounting, RNG streams — is bit-identical to the serial
    /// run at any shard count; see `DESIGN.md` §11 for the argument.
    pub fn run_until_parallel(&mut self, until_ns: u64, shards: usize) {
        crate::parallel::run(self, until_ns, shards);
    }

    pub(crate) fn dispatch(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Arrive { node, port, frame, fcs_error } => {
                self.handle_arrive(node, port, frame, fcs_error)
            }
            SimEvent::Dequeue { node, port } => self.handle_dequeue(node, port),
            SimEvent::RetryPort { node, port } => self.kick_port(node, port),
            SimEvent::HostFlowEmit { host, flow } => self.handle_flow_emit(host, flow),
            SimEvent::HostProbeRound { host, interval_ns, timeout_ns } => {
                self.handle_probe_round(host, interval_ns, timeout_ns)
            }
            SimEvent::MonitorTimer { node, interval_ns } => {
                self.handle_monitor_timer(node, interval_ns)
            }
            SimEvent::Control { idx } => {
                if let Some(f) = self.controls[idx].take() {
                    f(self);
                }
            }
        }
    }

    fn handle_arrive(&mut self, node: NodeId, port: u8, frame: Vec<u8>, fcs_error: bool) {
        let now = self.now;
        match &mut self.nodes[node as usize] {
            Node::Switch(sw) => {
                let fx = sw.handle_arrival(now, port, frame, fcs_error, &mut self.gt);
                self.apply_switch_effects(node, fx);
            }
            Node::Host(h) => {
                let fx = h.handle_arrival(now, frame, fcs_error);
                for r in &fx.reports {
                    self.mgmt.add(node, r);
                }
                if fx.kick {
                    self.kick_port(node, 0);
                }
            }
            Node::Vacant => panic!("arrival routed to a vacant node {node}"),
        }
    }

    fn apply_switch_effects(&mut self, node: NodeId, fx: ArrivalEffects) {
        for r in &fx.reports {
            self.mgmt.add(node, r);
        }
        // PFC frames bypass queues: serialize immediately on the wire.
        for (port, pfc) in fx.pfc_frames {
            self.transmit(node, port, pfc);
        }
        let mut kicked: Vec<u8> = fx.kick_ports;
        kicked.sort_unstable();
        kicked.dedup();
        for p in kicked {
            self.kick_port(node, p);
        }
    }

    /// Ensure `port` of `node` is actively draining (schedules a dequeue if
    /// the serializer is idle and something is transmittable).
    fn kick_port(&mut self, node: NodeId, port: u8) {
        let now = self.now;
        match &mut self.nodes[node as usize] {
            Node::Switch(sw) => {
                let p = usize::from(port);
                if sw.port_busy[p] {
                    return;
                }
                if sw.has_transmittable(now, port) {
                    sw.port_busy[p] = true;
                    self.push_node(node, now, SimEvent::Dequeue { node, port });
                } else if let Some(t) = sw.earliest_pause_expiry(now, port) {
                    self.push_node(node, t, SimEvent::RetryPort { node, port });
                }
            }
            Node::Host(h) => {
                if h.port_busy {
                    return;
                }
                if h.has_transmittable(now) {
                    h.port_busy = true;
                    self.push_node(node, now, SimEvent::Dequeue { node, port: 0 });
                } else if h.paused_until > now && h.txq_depth_bytes() > 0 {
                    let t = h.paused_until;
                    self.push_node(node, t, SimEvent::RetryPort { node, port: 0 });
                }
            }
            Node::Vacant => panic!("kick routed to a vacant node {node}"),
        }
    }

    fn handle_dequeue(&mut self, node: NodeId, port: u8) {
        let now = self.now;
        // Phase 1: dequeue from the device, collecting what to do next.
        enum Out {
            Frame(Vec<u8>, ArrivalEffects),
            Idle(Option<u64>),
        }
        let out = match &mut self.nodes[node as usize] {
            Node::Switch(sw) => match sw.dequeue(now, port, &mut self.gt) {
                Some(res) => Out::Frame(res.frame, res.effects),
                None => {
                    sw.port_busy[usize::from(port)] = false;
                    Out::Idle(sw.earliest_pause_expiry(now, port))
                }
            },
            Node::Host(h) => match h.dequeue_tx(now) {
                Some((frame, reports)) => {
                    let fx = ArrivalEffects { reports, ..Default::default() };
                    Out::Frame(frame, fx)
                }
                None => {
                    h.port_busy = false;
                    let retry =
                        (h.paused_until > now && h.txq_depth_bytes() > 0).then_some(h.paused_until);
                    Out::Idle(retry)
                }
            },
            Node::Vacant => panic!("dequeue routed to a vacant node {node}"),
        };
        // Phase 2: act on it with full access to the engine.
        match out {
            Out::Frame(frame, fx) => {
                let tx_done = self.transmit(node, port, frame);
                self.apply_switch_effects(node, fx);
                self.push_node(node, tx_done, SimEvent::Dequeue { node, port });
            }
            Out::Idle(retry) => {
                if let Some(t) = retry {
                    self.push_node(node, t, SimEvent::RetryPort { node, port });
                }
            }
        }
    }

    /// Put `frame` on the wire leaving `(node, port)`. Returns the time the
    /// serializer frees up. Applies link faults; records ground truth for
    /// inter-switch losses.
    fn transmit(&mut self, node: NodeId, port: u8, frame: Vec<u8>) -> u64 {
        let now = self.now;
        let Some(peer) = self.port_map.get(&(node, port)).copied() else {
            // Unconnected port: the frame evaporates (like a dark fiber).
            return now + 1;
        };
        let link = &mut self.links[peer.link];
        let gbps = link.gbps;
        let prop = link.prop_ns;
        let dir = if peer.a_to_b { &mut link.ab } else { &mut link.ba };
        let tx = tx_time_ns(frame.len(), gbps);
        let outcome = dir.judge(now);
        match outcome {
            LinkOutcome::Delivered => {
                self.push_node(
                    node,
                    now + tx + prop,
                    SimEvent::Arrive { node: peer.node, port: peer.port, frame, fcs_error: false },
                );
            }
            LinkOutcome::SilentDrop => {
                self.gt.record(GtEvent {
                    time_ns: now,
                    device: node,
                    ty: EventType::InterSwitchDrop,
                    flow: extract_flow(&frame),
                    drop_code: Some(DropCode::LinkLoss),
                    acl_rule: None,
                });
            }
            LinkOutcome::Corrupted => {
                self.gt.record(GtEvent {
                    time_ns: now,
                    device: node,
                    ty: EventType::InterSwitchDrop,
                    flow: extract_flow(&frame),
                    drop_code: Some(DropCode::LinkLoss),
                    acl_rule: None,
                });
                // With the residual-corruption model enabled the bytes are
                // actually damaged and the frame is delivered as if the FCS
                // missed it; otherwise classic FCS-kill semantics apply.
                let mut frame = frame;
                let escaped_fcs = dir.mutate_corrupted(&mut frame);
                self.push_node(
                    node,
                    now + tx + prop,
                    SimEvent::Arrive {
                        node: peer.node,
                        port: peer.port,
                        frame,
                        fcs_error: !escaped_fcs,
                    },
                );
            }
        }
        now + tx
    }

    fn handle_flow_emit(&mut self, host: NodeId, flow: usize) {
        let now = self.now;
        let gap = {
            let h = self.host_mut(host);
            h.emit_flow_packet(flow, now)
        };
        self.kick_port(host, 0);
        if let Some(gap) = gap {
            self.push_node(host, now + gap, SimEvent::HostFlowEmit { host, flow });
        }
    }

    fn handle_probe_round(&mut self, host: NodeId, interval_ns: u64, timeout_ns: u64) {
        let now = self.now;
        // Targets come from the ip cache, not the node table: on a parallel
        // shard the other hosts are not resident. The cache is in id order,
        // exactly matching the old host_ids() iteration.
        let targets: Vec<_> =
            self.host_ip_cache.iter().filter(|&&(h, _)| h != host).map(|&(_, ip)| ip).collect();
        {
            let h = self.host_mut(host);
            h.expire_probes(now, timeout_ns);
            for t in targets {
                h.send_probe(now, t);
            }
        }
        self.kick_port(host, 0);
        self.push_node(
            host,
            now + interval_ns,
            SimEvent::HostProbeRound { host, interval_ns, timeout_ns },
        );
    }

    fn handle_monitor_timer(&mut self, node: NodeId, interval_ns: u64) {
        let now = self.now;
        match &mut self.nodes[node as usize] {
            Node::Switch(sw) => {
                if let Some(mut m) = sw.monitor.take() {
                    let mut actions = crate::monitor::Actions::new();
                    m.on_timer(now, &sw.counters, &mut actions);
                    sw.monitor = Some(m);
                    let mut fx = ArrivalEffects::default();
                    sw.apply_external_actions(now, actions, &mut self.gt, &mut fx);
                    self.apply_switch_effects(node, fx);
                }
            }
            Node::Host(h) => {
                if let Some(mut m) = h.monitor.take() {
                    let mut actions = crate::monitor::Actions::new();
                    let counters = [h.counters];
                    m.on_timer(now, &counters, &mut actions);
                    h.monitor = Some(m);
                    for r in &actions.reports {
                        self.mgmt.add(node, r);
                    }
                    let mut kick = false;
                    for e in actions.emit {
                        kick |= self.host_mut(node).enqueue_tx(e.frame);
                    }
                    if kick {
                        self.kick_port(node, 0);
                    }
                }
            }
            Node::Vacant => panic!("monitor timer routed to a vacant node {node}"),
        }
        self.push_node(node, now + interval_ns, SimEvent::MonitorTimer { node, interval_ns });
    }

    /// Find the host owning an IP address.
    pub fn host_by_ip(&self, ip: fet_packet::ipv4::Ipv4Addr) -> Option<NodeId> {
        self.nodes.iter().enumerate().find_map(|(i, n)| match n {
            Node::Host(h) if h.config.ip == ip => Some(i as NodeId),
            _ => None,
        })
    }

    /// Adjacency of the whole network: node → [(local port, peer node)].
    pub fn adjacency(&self) -> HashMap<NodeId, Vec<(u8, NodeId)>> {
        let mut adj: HashMap<NodeId, Vec<(u8, NodeId)>> = HashMap::new();
        for (&(node, port), peer) in &self.port_map {
            adj.entry(node).or_default().push((port, peer.node));
        }
        for v in adj.values_mut() {
            v.sort_unstable();
        }
        adj
    }

    /// Every directed attachment: `(node, port, peer, peer_port)`, sorted.
    /// The wiring truth used to build the analytics layer's link map.
    pub fn link_endpoints(&self) -> Vec<(NodeId, u8, NodeId, u8)> {
        let mut v: Vec<(NodeId, u8, NodeId, u8)> = self
            .port_map
            .iter()
            .map(|(&(node, port), peer)| (node, port, peer.node, peer.port))
            .collect();
        v.sort_unstable();
        v
    }

    /// Total data bytes transmitted by all hosts (the "original traffic"
    /// denominator of the paper's overhead figures).
    pub fn host_tx_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Host(h) => Some(h.counters.tx_bytes),
                _ => None,
            })
            .sum()
    }

    /// Total bytes transmitted by all switch ports (per-hop traffic volume).
    pub fn switch_tx_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Switch(s) => Some(s.counters.iter().map(|c| c.tx_bytes).sum::<u64>()),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::FlowSpec;
    use crate::routing::install_ecmp_routes;
    use crate::time::{MILLIS, SECONDS};
    use crate::topology::{build_fat_tree, FatTreeParams};
    use fet_packet::FlowKey;

    fn setup() -> (Simulator, crate::topology::FatTree) {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        (sim, ft)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_flow(
        sim: &mut Simulator,
        ft: &crate::topology::FatTree,
        src: usize,
        dst: usize,
        sport: u16,
        bytes: u64,
        rate: f64,
        start: u64,
    ) -> FlowKey {
        let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: bytes,
            pkt_payload: 1000,
            rate_gbps: rate,
            start_ns: start,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        key
    }

    #[test]
    fn cross_pod_flow_delivers_every_byte() {
        let (mut sim, ft) = setup();
        let key = add_flow(&mut sim, &ft, 0, 7, 1000, 50_000, 5.0, 0);
        sim.run_until(SECONDS);
        let rx = sim.host(ft.hosts[7]).rx_flows.get(&key).copied().expect("flow seen");
        assert_eq!(rx.pkts, 50);
        assert!(rx.fin_seen, "FIN should arrive");
        // No drops anywhere on a healthy fabric.
        assert_eq!(sim.gt.count(fet_packet::EventType::MmuDrop), 0);
        assert_eq!(sim.gt.count(fet_packet::EventType::InterSwitchDrop), 0);
        assert_eq!(sim.gt.count(fet_packet::EventType::PipelineDrop), 0);
    }

    #[test]
    fn same_tor_flow_stays_local() {
        let (mut sim, ft) = setup();
        let key = add_flow(&mut sim, &ft, 0, 1, 1001, 10_000, 5.0, 0);
        sim.run_until(SECONDS);
        let rx = sim.host(ft.hosts[1]).rx_flows.get(&key).copied().unwrap();
        assert_eq!(rx.pkts, 10);
        // Aggs and cores never forwarded data.
        for &agg in ft.aggs.iter().flatten() {
            let tx: u64 = sim.switch(agg).counters.iter().map(|c| c.tx_pkts).sum();
            assert_eq!(tx, 0, "agg should be idle for intra-ToR traffic");
        }
    }

    #[test]
    fn silent_link_drop_recorded_in_ground_truth() {
        let (mut sim, ft) = setup();
        let key = add_flow(&mut sim, &ft, 0, 7, 1002, 20_000, 5.0, 0);
        // Break the ToR0_0 uplink toward agg0_0 (drop 3 frames at 10us).
        let tor = ft.edges[0][0];
        // ToR ports 0,1 connect to aggs (wired before hosts).
        for port in 0..2 {
            let dir = sim.link_direction_mut(tor, port).unwrap();
            dir.faults.burst_drop =
                Some(crate::link::BurstDrop { at_ns: 10_000, count: 3, corrupt: false });
        }
        sim.run_until(SECONDS);
        let lost = sim.gt.count(fet_packet::EventType::InterSwitchDrop);
        assert_eq!(lost, 3, "exactly the burst should be lost");
        let rx = sim.host(ft.hosts[7]).rx_flows.get(&key).copied().unwrap();
        assert_eq!(rx.pkts, 17);
        // Ground truth knows the victim flow even for silent drops.
        let fe = sim.gt.flow_events(fet_packet::EventType::InterSwitchDrop);
        assert!(fe.contains(&(tor, key)));
    }

    #[test]
    fn incast_produces_congestion_and_mmu_drops() {
        let mut params = FatTreeParams::default();
        // Small buffers to force congestion quickly.
        params.switch_config.mmu.total_bytes = 64 * 1024;
        params.switch_config.congestion_threshold_ns = 5 * crate::time::MICROS;
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &params);
        install_ecmp_routes(&mut sim);
        // 7 hosts blast host 0 at full NIC rate.
        for src in 1..8 {
            add_flow(&mut sim, &ft, src, 0, 2000 + src as u16, 2_000_000, 25.0, 0);
        }
        sim.run_until(20 * MILLIS);
        assert!(sim.gt.count(fet_packet::EventType::Congestion) > 0, "expected congestion");
        assert!(sim.gt.count(fet_packet::EventType::MmuDrop) > 0, "expected incast drops");
    }

    #[test]
    fn blackhole_route_drops_with_table_miss() {
        let (mut sim, ft) = setup();
        let key = add_flow(&mut sim, &ft, 0, 7, 1003, 10_000, 5.0, 0);
        let tor = ft.edges[0][0];
        let victim_ip = ft.host_ips[7];
        sim.schedule_control(5 * crate::time::MICROS, move |s| {
            crate::routing::remove_route(s, tor, victim_ip);
        });
        sim.run_until(SECONDS);
        let drops = sim.gt.count(fet_packet::EventType::PipelineDrop);
        assert!(drops > 0, "blackhole should drop");
        let fe = sim.gt.flow_events(fet_packet::EventType::PipelineDrop);
        assert!(fe.contains(&(tor, key)));
    }

    #[test]
    fn probing_measures_rtts() {
        let (mut sim, ft) = setup();
        sim.schedule_probing(ft.hosts[0], 0, MILLIS, 100 * MILLIS);
        sim.run_until(10 * MILLIS);
        let h = sim.host(ft.hosts[0]);
        // ~10 rounds x 7 targets.
        assert!(h.probe_samples.len() >= 60, "samples {}", h.probe_samples.len());
        for s in &h.probe_samples {
            assert!(s.rtt_ns > 0 && s.rtt_ns < MILLIS, "rtt {}", s.rtt_ns);
        }
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = || {
            let (mut sim, ft) = setup();
            for src in 1..8 {
                add_flow(&mut sim, &ft, src, 0, 3000 + src as u16, 500_000, 25.0, 0);
            }
            let tor = ft.edges[0][0];
            sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.001;
            sim.run_until(10 * MILLIS);
            (sim.events_processed(), sim.gt.events().len(), sim.host_tx_bytes())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corruption_arrives_as_fcs_error_and_dies_at_mac() {
        let (mut sim, ft) = setup();
        add_flow(&mut sim, &ft, 0, 2, 1004, 10_000, 5.0, 0);
        let tor = ft.edges[0][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.corrupt_prob = 1.0;
        }
        sim.run_until(SECONDS);
        // Everything crossing the uplinks was corrupted: receiver got nothing.
        assert!(sim.host(ft.hosts[2]).rx_flows.is_empty());
        // The downstream agg counted FCS errors.
        let fcs: u64 = ft.aggs[0]
            .iter()
            .map(|&a| sim.switch(a).counters.iter().map(|c| c.fcs_errors).sum::<u64>())
            .sum();
        assert!(fcs > 0);
        assert_eq!(sim.gt.count(fet_packet::EventType::InterSwitchDrop) as u64, fcs);
    }
}

#[cfg(test)]
mod engine_unit_tests {
    use super::*;
    use crate::monitor::{Actions, SwitchMonitor};
    use crate::switchdev::{SwitchConfig, SwitchDevice};
    use std::any::Any;

    /// A monitor that reports a fixed number of bytes per timer tick.
    struct TickReporter {
        interval: u64,
        ticks: u32,
    }
    impl SwitchMonitor for TickReporter {
        fn on_timer(
            &mut self,
            _now_ns: u64,
            _counters: &[crate::counters::PortCounters],
            out: &mut Actions,
        ) {
            self.ticks += 1;
            out.report(100, "tick");
        }
        fn timer_interval_ns(&self) -> Option<u64> {
            Some(self.interval)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn monitor_timers_fire_on_interval_and_meter_reports() {
        let mut sim = Simulator::new();
        let mut sw = SwitchDevice::new(0, "s", SwitchConfig::default());
        sw.set_monitor(Box::new(TickReporter { interval: 1_000, ticks: 0 }));
        let id = sim.add_switch(sw);
        sim.run_until(10_500);
        let m = sim.switch(id).monitor.as_ref().unwrap();
        let t = m.as_any().downcast_ref::<TickReporter>().unwrap();
        assert_eq!(t.ticks, 10, "ticks at 1us intervals over 10.5us");
        assert_eq!(sim.mgmt.bytes_of("tick"), 1_000);
        assert_eq!(sim.mgmt.total_msgs(), 10);
        assert_eq!(sim.mgmt.per_node[&id], 1_000);
    }

    #[test]
    fn controls_fire_once_in_time_order() {
        let mut sim = Simulator::new();
        let sw = SwitchDevice::new(0, "s", SwitchConfig::default());
        let id = sim.add_switch(sw);
        sim.schedule_control(2_000, move |s| {
            s.switch_mut(id).port_up[1] = false;
        });
        sim.schedule_control(1_000, move |s| {
            assert!(s.switch(id).port_up[1], "earlier control sees pre-state");
        });
        sim.run_until(5_000);
        assert!(!sim.switch(id).port_up[1]);
    }

    #[test]
    fn unconnected_port_transmits_into_the_void() {
        // A frame sent on a dark port must not crash or loop.
        let mut sim = Simulator::new();
        let mut sw = SwitchDevice::new(0, "s", SwitchConfig::default());
        sw.routes.insert(
            fet_packet::ipv4::Ipv4Addr::from_octets([10, 0, 0, 9]),
            32,
            vec![5], // port 5 is unwired
        );
        let id = sim.add_switch(sw);
        let flow = fet_packet::FlowKey::tcp(
            fet_packet::ipv4::Ipv4Addr::from_octets([10, 0, 0, 1]),
            1,
            fet_packet::ipv4::Ipv4Addr::from_octets([10, 0, 0, 9]),
            2,
        );
        let frame = fet_packet::builder::build_data_packet(&flow, 100, 0, 0, 64);
        // Inject directly via a control that enqueues an arrival.
        sim.schedule_control(0, move |s| {
            let Node::Switch(sw) = &mut s.nodes[id as usize] else { unreachable!() };
            let fx = sw.handle_arrival(0, 0, frame.clone(), false, &mut s.gt);
            assert_eq!(fx.kick_ports, vec![5]);
        });
        sim.run_until(1_000);
        // Frame is queued on port 5 but never transmitted (no kick); the
        // simulation simply drains without panicking.
        assert_eq!(sim.switch(id).queue_len(5, 0), 1);
    }

    #[test]
    fn mgmt_accounting_aggregates_kinds() {
        let mut acc = MgmtAccounting::default();
        acc.add(1, &MgmtReport { bytes: 10, kind: "a" });
        acc.add(1, &MgmtReport { bytes: 20, kind: "a" });
        acc.add(2, &MgmtReport { bytes: 5, kind: "b" });
        assert_eq!(acc.total_bytes(), 35);
        assert_eq!(acc.total_msgs(), 3);
        assert_eq!(acc.bytes_of("a"), 30);
        assert_eq!(acc.bytes_of("b"), 5);
        assert_eq!(acc.bytes_of("c"), 0);
        assert_eq!(acc.per_node[&1], 30);
    }
}
