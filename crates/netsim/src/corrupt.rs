//! Seeded byte-corruption generation for integrity-fault experiments.
//!
//! Loss faults (drops, bursts) make frames vanish; integrity faults make
//! them *lie*. This module generates deterministic byte damage — bit
//! flips, truncation, duplicated runs — used by three injection sites:
//!
//! * link delivery ([`crate::link::LinkDirection`]): residual wire
//!   corruption that escapes the Ethernet FCS and reaches parsers;
//! * the NetSeer report path (CEBPs and loss notifications, guarded by
//!   CRC-32C trailers);
//! * torn tail-writes in the recovery WAL on a hard crash (guarded by
//!   per-record CRCs).
//!
//! All damage is drawn from a dedicated [`Pcg32`] stream so enabling
//! corruption never perturbs the draws of co-located loss processes.

use crate::rng::Pcg32;

/// How aggressively to damage a buffer. All probabilities are evaluated
/// independently per buffer; `flip_per_byte` is evaluated per byte.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CorruptionSpec {
    /// Probability each byte gets one random bit flipped.
    pub flip_per_byte: f64,
    /// Probability the buffer is truncated at a random point.
    pub truncate_prob: f64,
    /// Probability a random run of bytes is duplicated in place.
    pub duplicate_prob: f64,
}

impl CorruptionSpec {
    /// No damage at all.
    pub const fn none() -> Self {
        CorruptionSpec { flip_per_byte: 0.0, truncate_prob: 0.0, duplicate_prob: 0.0 }
    }

    /// Pure bit-flip noise at the given per-byte rate — the classic
    /// "storm on one link" profile.
    pub const fn bit_flips(rate: f64) -> Self {
        CorruptionSpec { flip_per_byte: rate, truncate_prob: 0.0, duplicate_prob: 0.0 }
    }

    /// True when any fault can fire.
    pub fn is_active(&self) -> bool {
        self.flip_per_byte > 0.0 || self.truncate_prob > 0.0 || self.duplicate_prob > 0.0
    }
}

/// What [`corrupt_buffer`] did to one buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionTally {
    /// Individual bits flipped.
    pub bits_flipped: u32,
    /// Buffer was cut short.
    pub truncated: bool,
    /// A run of bytes was doubled.
    pub duplicated: bool,
}

impl CorruptionTally {
    /// True when the buffer was changed in any way.
    pub fn touched(&self) -> bool {
        self.bits_flipped > 0 || self.truncated || self.duplicated
    }
}

/// Damage `buf` in place according to `spec`, drawing from `rng`.
///
/// The draw order (truncate, duplicate, then per-byte flips) is part of
/// the determinism contract: identical seeds and buffer lengths produce
/// identical damage regardless of buffer contents.
pub fn corrupt_buffer(
    spec: &CorruptionSpec,
    rng: &mut Pcg32,
    buf: &mut Vec<u8>,
) -> CorruptionTally {
    let mut tally = CorruptionTally::default();
    if buf.len() > 1 && rng.chance(spec.truncate_prob) {
        let keep = 1 + rng.next_below(buf.len() as u32 - 1) as usize;
        buf.truncate(keep);
        tally.truncated = true;
    }
    if !buf.is_empty() && rng.chance(spec.duplicate_prob) {
        let start = rng.next_below(buf.len() as u32) as usize;
        let max_run = (buf.len() - start).min(16) as u32;
        let run = 1 + rng.next_below(max_run) as usize;
        let dup: Vec<u8> = buf[start..start + run].to_vec();
        // Splice the copy in right after the original run (torn/replayed
        // DMA write): the buffer grows by `run` bytes.
        let tail = buf.split_off(start + run);
        buf.extend_from_slice(&dup);
        buf.extend_from_slice(&tail);
        tally.duplicated = true;
    }
    if spec.flip_per_byte > 0.0 {
        for byte in buf.iter_mut() {
            if rng.chance(spec.flip_per_byte) {
                *byte ^= 1 << rng.next_below(8);
                tally.bits_flipped += 1;
            }
        }
    }
    tally
}

/// A seeded corruption stream: a [`CorruptionSpec`] bound to its own RNG
/// stream plus lifetime damage counters. One generator per injection site.
#[derive(Debug, Clone)]
pub struct CorruptionGen {
    /// Damage profile.
    pub spec: CorruptionSpec,
    rng: Pcg32,
    /// Buffers offered to this generator.
    pub buffers_offered: u64,
    /// Buffers actually damaged.
    pub buffers_damaged: u64,
    /// Total bits flipped across all buffers.
    pub bits_flipped: u64,
    /// Total truncations applied.
    pub truncations: u64,
    /// Total duplicated runs inserted.
    pub duplications: u64,
}

impl CorruptionGen {
    /// Create a generator on its own `(seed, stream)` RNG stream.
    pub fn new(spec: CorruptionSpec, seed: u64, stream: u64) -> Self {
        CorruptionGen {
            spec,
            rng: Pcg32::new(seed, stream),
            buffers_offered: 0,
            buffers_damaged: 0,
            bits_flipped: 0,
            truncations: 0,
            duplications: 0,
        }
    }

    /// Damage `buf` in place; returns what happened.
    pub fn corrupt(&mut self, buf: &mut Vec<u8>) -> CorruptionTally {
        self.buffers_offered += 1;
        if !self.spec.is_active() {
            return CorruptionTally::default();
        }
        let tally = corrupt_buffer(&self.spec, &mut self.rng, buf);
        if tally.touched() {
            self.buffers_damaged += 1;
        }
        self.bits_flipped += u64::from(tally.bits_flipped);
        self.truncations += u64::from(tally.truncated);
        self.duplications += u64::from(tally.duplicated);
        tally
    }

    /// Damage only the suffix `buf[keep..]`, leaving the first `keep`
    /// bytes untouched — a torn tail-write. The fsynced prefix of a
    /// segment or log is durable on disk; a hard kill mid-flush can only
    /// mangle the bytes past the sync watermark, and this models exactly
    /// that. `keep` past the end of the buffer leaves it unchanged.
    pub fn corrupt_tail(&mut self, buf: &mut Vec<u8>, keep: usize) -> CorruptionTally {
        let keep = keep.min(buf.len());
        let mut tail = buf.split_off(keep);
        let tally = self.corrupt(&mut tail);
        buf.append(&mut tail);
        tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_spec_never_touches() {
        let mut g = CorruptionGen::new(CorruptionSpec::none(), 1, 1);
        let mut buf = vec![0xaa; 256];
        for _ in 0..100 {
            assert!(!g.corrupt(&mut buf).touched());
        }
        assert_eq!(buf, vec![0xaa; 256]);
        assert_eq!(g.buffers_damaged, 0);
        assert_eq!(g.buffers_offered, 100);
    }

    #[test]
    fn bit_flip_rate_is_roughly_honoured() {
        let mut g = CorruptionGen::new(CorruptionSpec::bit_flips(0.01), 2, 2);
        let mut flips = 0u64;
        for _ in 0..100 {
            let mut buf = vec![0u8; 1000];
            g.corrupt(&mut buf);
            flips += buf.iter().map(|b| u64::from(b.count_ones())).sum::<u64>();
        }
        // 100k bytes at 1e-2/byte ≈ 1000 flips.
        assert!((700..1300).contains(&flips), "flips {flips}");
        assert_eq!(g.bits_flipped, flips);
    }

    #[test]
    fn truncation_shortens_but_never_empties() {
        let spec = CorruptionSpec { truncate_prob: 1.0, ..CorruptionSpec::none() };
        let mut g = CorruptionGen::new(spec, 3, 3);
        for _ in 0..100 {
            let mut buf = vec![7u8; 64];
            assert!(g.corrupt(&mut buf).truncated);
            assert!(!buf.is_empty() && buf.len() < 64);
        }
        assert_eq!(g.truncations, 100);
    }

    #[test]
    fn duplication_grows_and_preserves_prefix() {
        let spec = CorruptionSpec { duplicate_prob: 1.0, ..CorruptionSpec::none() };
        let mut g = CorruptionGen::new(spec, 4, 4);
        let orig: Vec<u8> = (0..64u8).collect();
        let mut buf = orig.clone();
        assert!(g.corrupt(&mut buf).duplicated);
        assert!(buf.len() > orig.len());
        // The damage is a doubled run, so the original is a subsequence
        // with one contiguous insertion; prefix before the run is intact.
        assert_eq!(&buf[..1], &orig[..1]);
    }

    #[test]
    fn tail_corruption_preserves_the_kept_prefix() {
        let spec = CorruptionSpec { flip_per_byte: 0.5, truncate_prob: 0.5, duplicate_prob: 0.5 };
        let mut g = CorruptionGen::new(spec, 5, 5);
        for keep in [0usize, 1, 100, 199, 200, 500] {
            let orig: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(37)).collect();
            let mut buf = orig.clone();
            g.corrupt_tail(&mut buf, keep);
            let k = keep.min(orig.len());
            assert_eq!(&buf[..k], &orig[..k], "prefix keep={keep} must survive");
            assert!(buf.len() >= k);
        }
        // keep == len: the tail is empty, nothing can change.
        let orig: Vec<u8> = (0..64u8).collect();
        let mut buf = orig.clone();
        assert!(!g.corrupt_tail(&mut buf, 64).touched());
        assert_eq!(buf, orig);
    }

    #[test]
    fn same_seed_same_damage() {
        let spec = CorruptionSpec { flip_per_byte: 0.05, truncate_prob: 0.2, duplicate_prob: 0.2 };
        let run = |seed| {
            let mut g = CorruptionGen::new(spec, seed, 9);
            let mut bufs = Vec::new();
            for i in 0..50u8 {
                let mut b = vec![i; 200];
                g.corrupt(&mut b);
                bufs.push(b);
            }
            bufs
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
