//! Full-system integration: NetSeer deployed across the paper's testbed
//! topology must achieve full flow-event coverage with zero false
//! negatives (and zero false positives after CPU elimination) while
//! operating within capacity — the central claim of §5.2.

use fet_netsim::host::FlowSpec;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::{install_ecmp_routes, remove_route};
use fet_netsim::time::{MILLIS, SECONDS};
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use netseer::deploy::{aggregate_stats, collect_events, deploy, monitor_of, DeployOptions};
use netseer::monitor::acl_rule_flow;

fn setup(params: FatTreeParams) -> (Simulator, FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());
    (sim, ft)
}

fn add_flow(
    sim: &mut Simulator,
    ft: &FatTree,
    src: usize,
    dst: usize,
    sport: u16,
    bytes: u64,
    rate: f64,
) -> FlowKey {
    let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
    let h = ft.hosts[src];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: bytes,
        pkt_payload: 1000,
        rate_gbps: rate,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
    key
}

/// Inter-switch silent drops: the upstream switch must recover the exact
/// victim flows from its ring buffer (Figure 5's full loop, in situ).
#[test]
fn interswitch_drop_full_coverage() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    for s in 0..4 {
        add_flow(&mut sim, &ft, s, 4 + s, 1000 + s as u16, 100_000, 5.0);
    }
    // Break tor0_0's both uplinks briefly.
    let tor = ft.edges[0][0];
    for port in 0..2 {
        sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
            Some(BurstDrop { at_ns: 50_000, count: 4, corrupt: false });
    }
    sim.run_until(SECONDS);

    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(!gt.is_empty(), "fault must have produced drops");
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "missed inter-switch drop {fe:?}");
    }
}

/// Corruption drops are detected the same way (downstream MAC discards,
/// gap reveals them).
#[test]
fn corruption_detected_as_interswitch_drop() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    add_flow(&mut sim, &ft, 0, 6, 1000, 100_000, 5.0);
    let tor = ft.edges[0][0];
    for port in 0..2 {
        sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
            Some(BurstDrop { at_ns: 30_000, count: 3, corrupt: true });
    }
    sim.run_until(SECONDS);
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(!gt.is_empty());
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "missed corruption {fe:?}");
    }
}

/// Pipeline drops from a routing blackhole: victim flow + TableMiss code.
#[test]
fn blackhole_pipeline_drop_coverage() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    let key = add_flow(&mut sim, &ft, 0, 7, 1000, 100_000, 5.0);
    let tor = ft.edges[0][0];
    let victim = ft.host_ips[7];
    sim.schedule_control(40_000, move |s| remove_route(s, tor, victim));
    sim.run_until(SECONDS);

    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::PipelineDrop);
    assert!(seen.contains(&(tor, key)), "blackhole victim not reported");
    // Zero false positives at flow-event granularity: everything reported
    // exists in ground truth.
    let gt = sim.gt.flow_events(EventType::PipelineDrop);
    for fe in &seen {
        assert!(gt.contains(fe), "false positive {fe:?}");
    }
}

/// ACL misconfiguration: reported at rule granularity.
#[test]
fn acl_drop_aggregated_by_rule() {
    use fet_pdp::table::{AclAction, AclRule};
    let (mut sim, ft) = setup(FatTreeParams::default());
    add_flow(&mut sim, &ft, 0, 7, 2222, 200_000, 5.0);
    let tor = ft.edges[0][0];
    sim.schedule_control(10_000, move |s| {
        s.switch_mut(tor).acl.install(AclRule {
            rule_id: 99,
            priority: 1,
            src: None,
            dst: None,
            sport: None,
            dport: Some(80),
            proto: None,
            action: AclAction::Deny,
        });
    });
    sim.run_until(SECONDS);
    let store = collect_events(&mut sim);
    // Rule-granularity events: flow is the synthetic rule flow.
    let acl_events: Vec<_> = store
        .events()
        .iter()
        .filter(|e| e.record.ty == EventType::PipelineDrop && e.record.flow == acl_rule_flow(99))
        .collect();
    assert!(!acl_events.is_empty(), "ACL rule 99 drops not reported");
    // Aggregation: far fewer reports than dropped packets.
    let dropped = sim.gt.count(EventType::PipelineDrop);
    assert!(dropped > 20);
    assert!(acl_events.len() < dropped / 5);
}

/// Incast congestion: congestion and MMU-drop flow events covered.
#[test]
fn incast_congestion_and_mmu_coverage() {
    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 64 * 1024;
    params.switch_config.congestion_threshold_ns = 5 * fet_netsim::MICROS;
    let cfg = netseer::NetSeerConfig {
        congestion_threshold_ns: 5 * fet_netsim::MICROS,
        ..netseer::NetSeerConfig::default()
    };
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });
    for s in 1..8 {
        add_flow(&mut sim, &ft, s, 0, 3000 + s as u16, 1_000_000, 25.0);
    }
    sim.run_until(30 * MILLIS);

    let store = collect_events(&mut sim);
    for ty in [EventType::Congestion, EventType::MmuDrop] {
        let gt = sim.gt.flow_events(ty);
        assert!(!gt.is_empty(), "{ty} not produced by incast");
        let seen = store.flow_events(ty);
        let covered = gt.iter().filter(|fe| seen.contains(fe)).count();
        assert_eq!(covered, gt.len(), "{ty}: covered {covered}/{}", gt.len());
    }
}

/// Path change after rerouting: the affected flows are reported at the
/// switches whose port choice changed.
#[test]
fn path_change_coverage() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    let key = add_flow(&mut sim, &ft, 0, 7, 4000, 500_000, 2.0);
    let tor = ft.edges[0][0];
    let victim = ft.host_ips[7];
    // Reroute: pin the victim's route to the second uplink only.
    sim.schedule_control(500_000, move |s| {
        fet_netsim::routing::override_route(s, tor, victim, vec![1]);
    });
    sim.run_until(SECONDS);
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::PathChange);
    // At minimum the flow is known at the ToR (new flow + possible change).
    assert!(seen.contains(&(tor, key)), "path change at ToR missed");
    let gt = sim.gt.flow_events(EventType::PathChange);
    let covered = gt.iter().filter(|fe| seen.contains(fe)).count();
    assert_eq!(covered, gt.len(), "covered {covered}/{}", gt.len());
}

/// The overhead headline: monitoring traffic ≤ 0.1% of traffic volume
/// under a healthy steady workload (paper: ~0.01% under production mix).
#[test]
fn overhead_is_tiny_on_healthy_network() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    for s in 0..8 {
        for f in 0..4 {
            add_flow(&mut sim, &ft, s, (s + 1 + f) % 8, (5000 + 16 * s + f) as u16, 200_000, 2.0);
        }
    }
    sim.run_until(SECONDS);
    let stats = aggregate_stats(&sim);
    assert!(stats.packets_seen > 1_000);
    let data_bytes = sim.switch_tx_bytes().max(1);
    let overhead = stats.final_bytes as f64 / data_bytes as f64;
    assert!(overhead < 1e-3, "overhead {overhead}");
    // Event packets are a small fraction (healthy network: only path
    // change events for new flows).
    let ratio = stats.event_packets as f64 / stats.packets_seen as f64;
    assert!(ratio < 0.10, "event packet ratio {ratio}");
}

/// NIC deployment covers the edge link: drops between ToR and host are
/// detected by the host NIC's gap detector and logged locally.
#[test]
fn edge_link_drops_covered_by_nic() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    let key = add_flow(&mut sim, &ft, 0, 1, 6000, 100_000, 5.0);
    // hosts[1] hangs off tor0_0 port 2 (ports 0,1 = aggs; 2,3 = hosts).
    let tor = ft.edges[0][0];
    sim.link_direction_mut(tor, 3).unwrap().faults.burst_drop =
        Some(BurstDrop { at_ns: 50_000, count: 3, corrupt: false });
    sim.run_until(SECONDS);
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(gt.contains(&(tor, key)), "fault should hit the edge link");
    // The upstream (ToR) reports the drops after the NIC's notification.
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    assert!(seen.contains(&(tor, key)), "edge drop not recovered");
}

/// Determinism: the full NetSeer deployment is bit-reproducible.
#[test]
fn full_deployment_is_deterministic() {
    let run = || {
        let (mut sim, ft) = setup(FatTreeParams::default());
        for s in 0..4 {
            add_flow(&mut sim, &ft, s, 7 - s, 7000 + s as u16, 100_000, 5.0);
        }
        let tor = ft.edges[0][0];
        sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.01;
        sim.run_until(100 * MILLIS);
        let store = collect_events(&mut sim);
        (store.len(), sim.gt.events().len(), sim.mgmt.total_bytes())
    };
    assert_eq!(run(), run());
}

/// Events answer operator queries: "what happened to this flow?"
#[test]
fn operator_query_workflow() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    let victim = add_flow(&mut sim, &ft, 0, 7, 8000, 200_000, 5.0);
    let _noise = add_flow(&mut sim, &ft, 1, 6, 8001, 200_000, 5.0);
    let tor = ft.edges[0][0];
    let vip = ft.host_ips[7];
    sim.schedule_control(100_000, move |s| remove_route(s, tor, vip));
    sim.run_until(SECONDS);
    let store = collect_events(&mut sim);
    // Query by flow: the victim has drop events; we learn the device.
    let hits = store.query(&netseer::Query::any().flow(victim).ty(EventType::PipelineDrop));
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|e| e.device == tor));
    // Query by device + window.
    let at_tor = store.query(&netseer::Query::any().device(tor).window(0, u64::MAX));
    assert!(at_tor.len() >= hits.len());
}

/// Stats sanity for Figure 13: per-step reductions hold on a drop-heavy run.
#[test]
fn per_step_reduction_shape() {
    let (mut sim, ft) = setup(FatTreeParams::default());
    for s in 0..4 {
        add_flow(&mut sim, &ft, s, 4 + s, 9000 + s as u16, 500_000, 5.0);
    }
    let tor = ft.edges[0][0];
    sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.02;
    sim.link_direction_mut(tor, 1).unwrap().faults.drop_prob = 0.02;
    sim.run_until(SECONDS);
    let m = monitor_of(&sim, tor);
    // Dedup suppressed most event packets (per-flow aggregation).
    assert!(m.stats.event_packets > 0);
    // Extraction compressed each report to 24 bytes.
    assert!(m.extractor.records > 0);
    assert!(m.extractor.reduction() > 0.5);
}
