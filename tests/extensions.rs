//! Extension features beyond the paper's headline evaluation:
//! partial deployment (§2.3), inter-card drop detection on chassis
//! switches (§3.3), and the bench harness needs fet-bench as a dev-dep —
//! these tests exercise them end to end.

use fet_netsim::host::FlowSpec;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MILLIS, SECONDS};
use fet_netsim::topology::{build_chassis, build_fat_tree, FatTreeParams, TopologyBuilder};
use fet_netsim::{Simulator, SwitchConfig};
use fet_packet::event::EventType;
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::config::FlowFilter;
use netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer::{NetSeerConfig, NetSeerMonitor, Role};

/// Partial deployment: only the monitored application's flows generate
/// events; everything else is invisible — and cheaper.
#[test]
fn partial_deployment_filters_to_the_application() {
    // Monitor only traffic to/from host 7 (10.1.1.2/32).
    let cfg = NetSeerConfig {
        flow_filter: Some(FlowFilter { prefix: Ipv4Addr::from_octets([10, 1, 1, 2]), len: 32 }),
        ..NetSeerConfig::default()
    };
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: false });

    // Two flows through the same blackhole: one monitored, one not.
    let monitored = FlowKey::tcp(ft.host_ips[0], 7000, ft.host_ips[7], 80);
    let unmonitored = FlowKey::tcp(ft.host_ips[0], 7001, ft.host_ips[6], 80);
    for (i, key) in [monitored, unmonitored].into_iter().enumerate() {
        let h = ft.hosts[0];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 4_000_000,
            pkt_payload: 1000,
            rate_gbps: 2.0,
            start_ns: i as u64 * 1000,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    let tor = ft.edges[1][1]; // serves hosts 6 and 7
    let v7 = ft.host_ips[7];
    let v6 = ft.host_ips[6];
    sim.schedule_control(MILLIS, move |s| {
        fet_netsim::routing::remove_route(s, tor, v7);
        fet_netsim::routing::remove_route(s, tor, v6);
    });
    sim.run_until(SECONDS);

    let store = collect_events(&mut sim);
    let drops = store.flow_events(EventType::PipelineDrop);
    assert!(drops.contains(&(tor, monitored)), "monitored flow must be covered");
    assert!(
        !drops.contains(&(tor, unmonitored)),
        "unmonitored flow must be invisible in partial deployment"
    );
}

/// Inter-card drops on a chassis: the same sequence-tag machinery covers
/// the backplane link between two line cards.
#[test]
fn intercard_drop_detection_on_chassis() {
    let mut sim = Simulator::new();
    let mut b = TopologyBuilder::new();
    let ch = build_chassis(&mut sim, &mut b, "chassis0", SwitchConfig::default(), 400.0, 3);
    // A host on each card.
    let h_a = b.host(
        &mut sim,
        fet_netsim::host::HostConfig {
            ip: Ipv4Addr::from_octets([10, 5, 0, 1]),
            nic_gbps: 25.0,
            ..Default::default()
        },
    );
    b.connect(&mut sim, ch.card_a, h_a, 25.0, 100, 4);
    let h_b = b.host(
        &mut sim,
        fet_netsim::host::HostConfig {
            ip: Ipv4Addr::from_octets([10, 5, 0, 2]),
            nic_gbps: 25.0,
            ..Default::default()
        },
    );
    b.connect(&mut sim, ch.card_b, h_b, 25.0, 100, 5);
    install_ecmp_routes(&mut sim);

    // NetSeer on both cards; the backplane ports tag like any fabric link.
    for card in [ch.card_a, ch.card_b] {
        let m = NetSeerMonitor::new(card, Role::Switch, NetSeerConfig::default());
        sim.switch_mut(card).set_monitor(Box::new(m));
    }
    sim.switch_mut(ch.card_a).tag_ports[usize::from(ch.backplane_a)] = true;
    sim.switch_mut(ch.card_b).tag_ports[usize::from(ch.backplane_b)] = true;

    // Cross-card flow; the backplane eats 5 frames mid-run.
    let key = FlowKey::tcp(
        Ipv4Addr::from_octets([10, 5, 0, 1]),
        9000,
        Ipv4Addr::from_octets([10, 5, 0, 2]),
        80,
    );
    let idx = sim.host_mut(h_a).add_flow(FlowSpec {
        key,
        total_bytes: 500_000,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h_a, idx);
    sim.link_direction_mut(ch.card_a, ch.backplane_a).unwrap().faults.burst_drop =
        Some(BurstDrop { at_ns: 100_000, count: 5, corrupt: false });

    sim.run_until(SECONDS);
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(gt.contains(&(ch.card_a, key)), "backplane drop in ground truth");
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    assert!(
        seen.contains(&(ch.card_a, key)),
        "inter-card drop must be recovered by card A's ring buffer"
    );
}

/// Partial deployment reduces overhead proportionally to the monitored
/// share of traffic.
#[test]
fn partial_deployment_cuts_overhead() {
    let run = |filter: Option<FlowFilter>| {
        let cfg = NetSeerConfig { flow_filter: filter, ..NetSeerConfig::default() };
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
        install_ecmp_routes(&mut sim);
        deploy(&mut sim, &DeployOptions { cfg, on_nics: false });
        let tp = fet_workloads::generator::TrafficParams {
            utilization: 0.4,
            duration_ns: 10 * MILLIS,
            max_flows: 1_500,
            ..Default::default()
        };
        fet_workloads::generator::generate_traffic(
            &mut sim,
            &ft,
            &fet_workloads::distributions::CACHE,
            &tp,
        );
        sim.run_until(30 * MILLIS);
        sim.mgmt.total_bytes()
    };
    let full = run(None);
    let partial = run(Some(FlowFilter {
        prefix: Ipv4Addr::from_octets([10, 0, 0, 0]),
        len: 24, // pod-0 ToR-0's two hosts only
    }));
    assert!(partial > 0, "partial deployment still reports its app");
    assert!((partial as f64) < 0.6 * full as f64, "partial {partial} vs full {full}");
}

/// A silently failed port (link down without routing reconvergence):
/// PortDown drops reported with the victim flows — Figure 4's
/// "Port / Link down" row.
#[test]
fn port_failure_drops_reported() {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());
    let key = FlowKey::tcp(ft.host_ips[0], 9100, ft.host_ips[7], 80);
    let h = ft.hosts[0];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: 4_000_000,
        pkt_payload: 1000,
        rate_gbps: 2.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
    // The victim's ToR downlink port dies at 1 ms (hosts 6,7 are ports 2,3
    // on tor1_1); routing does not reconverge — a silent port failure.
    let tor = ft.edges[1][1];
    sim.schedule_control(MILLIS, move |s| {
        s.switch_mut(tor).port_up[3] = false;
    });
    sim.run_until(SECONDS);
    let store = collect_events(&mut sim);
    let hits: Vec<_> = store
        .events()
        .iter()
        .filter(|e| {
            e.device == tor
                && matches!(
                    e.record.detail,
                    fet_packet::event::EventDetail::Drop {
                        code: fet_packet::event::DropCode::PortDown,
                        ..
                    }
                )
        })
        .collect();
    assert!(!hits.is_empty(), "port-down drops must be reported");
    assert!(hits.iter().any(|e| e.record.flow == key));
    // The summary view points straight at the device.
    let summary = store.summarize();
    assert!(summary.iter().any(|&(d, t, n)| d == tor && t == EventType::PipelineDrop && n > 0));
}
