//! Integration tests for the streaming analytics engine against a real
//! simulated fleet: localization accuracy, top-k recall versus a naive
//! recomputation, window-total parity, and the extended ledger identity.

use fet_analytics::{
    harvest_gap_reports, link_map_from_sim, AnalyticsConfig, AnalyticsEngine, LinkId,
};
use fet_netsim::host::FlowSpec;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::MILLIS;
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::{EventDetail, EventType};
use fet_packet::FlowKey;
use netseer::deploy::{delivered_history, deploy, DeployOptions};
use netseer::{Collector, FaultPlan, NetSeerConfig, StoredEvent};
use std::collections::HashMap;

fn setup(seed: u64) -> (Simulator, FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    let faults = FaultPlan { seed, ..FaultPlan::default() };
    deploy(
        &mut sim,
        &DeployOptions { cfg: NetSeerConfig { faults, ..Default::default() }, on_nics: true },
    );
    (sim, ft)
}

fn add_flow(sim: &mut Simulator, ft: &FatTree, src: usize, dst: usize, sport: u16, bytes: u64) {
    let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
    let h = ft.hosts[src];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: bytes,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
}

/// Cross-pod traffic (3 flows per source host) with every uplink of both
/// pods' first ToRs given elevated loss — a workload that victimizes many
/// distinct flows. Returns the sim and the delivered stream.
fn lossy_fabric_run(seed: u64, drop_prob: f64) -> (Simulator, Vec<StoredEvent>) {
    let (mut sim, ft) = setup(seed);
    for s in 0..8usize {
        for rep in 0..3u16 {
            add_flow(&mut sim, &ft, s, 7 - s, 2000 + (s as u16) * 8 + rep, 2_000_000);
        }
    }
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = drop_prob;
        }
    }
    sim.run_until(30 * MILLIS);
    let deliveries = delivered_history(&sim);
    (sim, deliveries)
}

/// Feed a delivered stream through collector + engine the production way.
fn engine_over(
    sim: &Simulator,
    deliveries: &[StoredEvent],
    cfg: AnalyticsConfig,
) -> AnalyticsEngine {
    let mut collector = Collector::new();
    let mut engine = AnalyticsEngine::new(cfg, link_map_from_sim(sim));
    engine.attach(&mut collector);
    collector.ingest(deliveries);
    engine.poll(&mut collector);
    engine.ingest_gap_reports(harvest_gap_reports(sim));
    engine
}

/// Naive per-flow loss/congestion weight over the raw delivered stream —
/// the ground truth the sketch's recall is measured against.
fn naive_flow_weights(deliveries: &[StoredEvent]) -> Vec<(FlowKey, u64)> {
    let mut w: HashMap<FlowKey, u64> = HashMap::new();
    for e in deliveries {
        if e.record.ty.is_drop() || e.record.ty == EventType::Congestion {
            *w.entry(e.record.flow).or_default() += u64::from(e.record.counter.max(1));
        }
    }
    let mut v: Vec<(FlowKey, u64)> = w.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Acceptance: the correlator names the exact lossy link, corroborated by
/// both ends, even with a second (much weaker) lossy link as a decoy.
#[test]
fn correlator_names_the_exact_lossy_link() {
    let (mut sim, ft) = setup(0x10CA_112E);
    for s in 0..8usize {
        for rep in 0..3u16 {
            add_flow(&mut sim, &ft, s, 7 - s, 2000 + (s as u16) * 8 + rep, 2_000_000);
        }
    }
    let tor = ft.edges[0][0];
    sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.05;
    let (down, down_port) = sim.peer_of(tor, 0).expect("uplink is wired");
    let guilty = LinkId { up: tor, up_port: 0, down, down_port };
    // Decoy: a 10x-weaker lossy link on the other pod's ToR.
    let decoy_tor = ft.edges[1][0];
    sim.link_direction_mut(decoy_tor, 1).unwrap().faults.drop_prob = 0.005;
    sim.run_until(30 * MILLIS);

    let deliveries = delivered_history(&sim);
    let engine = engine_over(&sim, &deliveries, AnalyticsConfig::default());

    let verdict = engine.culprit().expect("a corroborated verdict must exist");
    assert_eq!(verdict.link, guilty, "the correlator must name the exact link");
    assert!(verdict.upstream_reports > 0 && verdict.downstream_gaps > 0);
    // The decoy ranks behind the real culprit.
    let ranking = engine.localize();
    assert_eq!(ranking[0].link, guilty);
    engine.ledger().assert_balanced();
}

/// Acceptance: top-k (k=32) recall of the true top-8 loss flows >= 0.95,
/// with the sketch's per-entry error bounds verified against truth.
#[test]
fn topk_recall_of_true_top8_meets_bar() {
    let (sim, deliveries) = lossy_fabric_run(0x7075, 0.05);
    let engine = engine_over(&sim, &deliveries, AnalyticsConfig::default());

    let truth = naive_flow_weights(&deliveries);
    assert!(truth.len() >= 8, "workload must victimize at least 8 flows, got {}", truth.len());
    let top8: Vec<FlowKey> = truth.iter().take(8).map(|&(f, _)| f).collect();
    let reported = engine.top_flows(32);
    let hit = top8.iter().filter(|f| reported.iter().any(|e| e.flow == **f)).count();
    let recall = hit as f64 / top8.len() as f64;
    assert!(recall >= 0.95, "top-k recall {recall:.2} below the 0.95 bar");

    // Error bounds: count is an overestimate, count - error a lower bound.
    let exact: HashMap<FlowKey, u64> = truth.iter().copied().collect();
    for e in &reported {
        let t = exact.get(&e.flow).copied().unwrap_or(0);
        assert!(t <= e.count, "true {t} > estimate {} for {:?}", e.count, e.flow);
        assert!(e.guaranteed() <= t, "lower bound {} > true {t}", e.guaranteed());
    }
}

/// Window totals equal a naive recomputation over the delivered stream,
/// and every delivered event has exactly one ledger disposition.
#[test]
fn window_totals_match_naive_recompute() {
    let (sim, deliveries) = lossy_fabric_run(0xA66, 0.03);
    assert!(!deliveries.is_empty());
    let engine = engine_over(&sim, &deliveries, AnalyticsConfig::default());

    let mut naive: HashMap<(u32, u8, u8), (u64, u64)> = HashMap::new();
    for e in &deliveries {
        let reason = match e.record.detail {
            EventDetail::Drop { code, .. } => code.code(),
            _ => 0,
        };
        let k = (e.device, e.record.ty.code(), reason);
        let entry = naive.entry(k).or_default();
        entry.0 += 1;
        entry.1 += u64::from(e.record.counter.max(1));
    }
    let totals = engine.totals();
    assert_eq!(totals.len(), naive.len(), "same key set");
    for (key, stats) in &totals {
        let k = (key.device, key.ty.code(), key.reason.map_or(0, |c| c.code()));
        let &(events, weight) = naive.get(&k).expect("key must exist in the naive recompute");
        assert_eq!((stats.events, stats.weight), (events, weight), "totals diverged for {key:?}");
    }

    let ledger = engine.ledger();
    ledger.assert_balanced();
    assert_eq!(ledger.ingested, deliveries.len() as u64);
    assert_eq!(ledger.shed_analytics, 0, "default budgets must not shed this workload");
}

/// SLA evaluation produces breach windows on the lossy run and none on a
/// clean one.
#[test]
fn sla_breaches_appear_only_under_loss() {
    // A strict policy: more than 4 dropped packets per 1 ms window on any
    // device is a breach.
    let cfg = AnalyticsConfig {
        sla: fet_analytics::SlaPolicy {
            window_ns: MILLIS,
            max_drops_per_window: 4,
            max_congestion_latency_us: 400,
        },
        ..AnalyticsConfig::default()
    };
    let (sim, deliveries) = lossy_fabric_run(0x51A, 0.05);
    let mut engine = engine_over(&sim, &deliveries, cfg);
    let breaches = engine.finish_breaches();
    assert!(!breaches.is_empty(), "5% fabric loss must breach the strict SLA");
    for b in &breaches {
        assert!(b.to_ns > b.from_ns);
        assert!(
            b.drops > cfg.sla.max_drops_per_window
                || b.peak_latency_us > cfg.sla.max_congestion_latency_us
        );
    }

    let (clean_sim, clean_deliveries) = lossy_fabric_run(0x51A, 0.0);
    let mut clean_engine = engine_over(&clean_sim, &clean_deliveries, cfg);
    let clean_drop_breaches: Vec<_> =
        clean_engine.finish_breaches().into_iter().filter(|b| b.drops > 0).collect();
    assert!(clean_drop_breaches.is_empty(), "no loss, no drop breaches: {clean_drop_breaches:?}");
}
