//! The five §5.1 case studies as assertions: for each incident, NetSeer's
//! backend must contain the key event, at the faulty device, for the
//! affected traffic, shortly after the fault — the property behind
//! Figure 8(a)'s 61%–99% reductions.

use fet_netsim::time::MILLIS;
use fet_workloads::scenarios::{build_case, CaseId, ALL_CASES};
use netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer::Query;

#[test]
fn every_case_yields_the_key_event_at_the_fault_device() {
    for case in ALL_CASES {
        let paper = case.paper();
        let mut built = build_case(case, 0x5EED);
        deploy(&mut built.sim, &DeployOptions::default());
        built.sim.run_until(built.horizon_ns);
        let store = collect_events(&mut built.sim);
        let hits = store.query(&Query::any().device(built.fault_device).ty(paper.key_event));
        assert!(!hits.is_empty(), "{}: no {} events at fault device", paper.label, paper.key_event);
        let first = hits.iter().map(|e| e.time_ns).min().unwrap();
        let latency = first.saturating_sub(built.fault_at_ns);
        assert!(
            latency < 20 * MILLIS,
            "{}: first event {}ns after fault — too slow",
            paper.label,
            latency
        );
    }
}

#[test]
fn acl_case_points_at_the_rule() {
    let mut built = build_case(CaseId::AclError, 7);
    deploy(&mut built.sim, &DeployOptions::default());
    built.sim.run_until(built.horizon_ns);
    let store = collect_events(&mut built.sim);
    // ACL drops are reported at rule granularity; the rule id rides the
    // synthetic rule flow and the hash field.
    let rule_flow = netseer::monitor::acl_rule_flow(7_001);
    let hits = store.query(&Query::any().flow(rule_flow));
    assert!(!hits.is_empty(), "rule-aggregated report missing");
    assert!(hits.iter().all(|e| e.device == built.fault_device));
    // A CPU-side registry resolves the id for the operator.
    let mut registry = netseer::acl_agg::RuleRegistry::new();
    registry.register(7_001, "deny tcp any any eq 443 (change #8841)");
    assert_eq!(
        registry.describe(hits[0].record.flow.src.as_u32()),
        "deny tcp any any eq 443 (change #8841)"
    );
}

#[test]
fn routing_error_case_shows_path_changes_then_drops() {
    let mut built = build_case(CaseId::RoutingError, 9);
    deploy(&mut built.sim, &DeployOptions::default());
    built.sim.run_until(built.horizon_ns);
    let store = collect_events(&mut built.sim);
    let victim = built.victim_flows[0];
    // The victim flow shows both the symptom (TTL-expired drops from the
    // loop) and the cause trail (path-change events after the update).
    let drops = store.query(&Query::any().flow(victim).ty(fet_packet::EventType::PipelineDrop));
    let paths = store.query(&Query::any().flow(victim).ty(fet_packet::EventType::PathChange));
    assert!(!drops.is_empty(), "loop drops missing");
    assert!(
        paths.iter().any(|e| e.time_ns >= built.fault_at_ns),
        "post-update path-change events missing"
    );
}

#[test]
fn ssd_case_quantifies_network_share_precisely() {
    let mut built = build_case(CaseId::SsdFirmwareBug, 11);
    deploy(&mut built.sim, &DeployOptions::default());
    built.sim.run_until(built.horizon_ns);
    let store = collect_events(&mut built.sim);
    // The operator can say exactly which storage flows lost packets in
    // the network and which did not — the exoneration the paper's
    // operators could not produce for 284 minutes.
    // The storm exceeds the 40 Gbps MMU-redirect budget (3×25G into 25G),
    // so per the paper's §4 capacity caveat coverage is near- but not
    // guaranteed-full. What must hold exactly: no invented drops, and the
    // big hog flows (the actual storage traffic) are all present.
    let gt_dropped = built.sim.gt.flow_events(fet_packet::EventType::MmuDrop);
    let seen = store.flow_events(fet_packet::EventType::MmuDrop);
    let covered = gt_dropped.iter().filter(|fe| seen.contains(fe)).count();
    assert!(
        covered as f64 >= 0.85 * gt_dropped.len() as f64,
        "network share badly under-reported: {covered}/{}",
        gt_dropped.len()
    );
    for key in &built.victim_flows[1..] {
        assert!(
            seen.iter().any(|(_, f)| f == key),
            "storage hog {key} missing from the drop report"
        );
    }
    // And no invented drops.
    for fe in &seen {
        assert!(gt_dropped.contains(fe), "network share over-reported: {fe:?}");
    }
}
