//! Scale-out sanity: nothing hard-codes the paper's 10-switch testbed.
//! A full 4-pod fat-tree (20 switches, 16 hosts) with NetSeer everywhere
//! keeps the same coverage and determinism properties.

use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::MILLIS;
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_workloads::distributions::WEB;
use fet_workloads::generator::{generate_traffic, TrafficParams};
use netseer::deploy::{collect_events, deploy, DeployOptions};

fn four_pods() -> FatTreeParams {
    FatTreeParams {
        pods: 4,
        edge_per_pod: 2,
        agg_per_pod: 2,
        cores: 4,
        hosts_per_edge: 2,
        ..FatTreeParams::default()
    }
}

#[test]
fn four_pod_fat_tree_routes_and_monitors() {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &four_pods());
    assert_eq!(ft.all_switches().len(), 20);
    assert_eq!(ft.hosts.len(), 16);
    install_ecmp_routes(&mut sim);
    assert!(fet_netsim::routing::routes_complete(&sim));
    deploy(&mut sim, &DeployOptions::default());

    let tp = TrafficParams {
        utilization: 0.4,
        duration_ns: 8 * MILLIS,
        max_flows: 2_000,
        ..Default::default()
    };
    generate_traffic(&mut sim, &ft, &WEB, &tp);
    // A lossy core-facing link in pod 2.
    let tor = ft.edges[2][0];
    sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.01;
    sim.run_until(30 * MILLIS);

    // Coverage holds at scale.
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(!gt.is_empty(), "the lossy link should bite");
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "missed at scale: {fe:?}");
    }
    // Traffic actually crossed pods.
    let delivered: u64 = ft.hosts.iter().map(|&h| sim.host(h).counters.rx_bytes).sum();
    assert!(delivered > 10_000_000, "delivered {delivered}");
}

#[test]
fn four_pod_runs_are_deterministic() {
    let run = || {
        let mut sim = Simulator::new();
        let ft = build_fat_tree(&mut sim, &four_pods());
        install_ecmp_routes(&mut sim);
        deploy(&mut sim, &DeployOptions::default());
        let tp = TrafficParams {
            utilization: 0.3,
            duration_ns: 5 * MILLIS,
            max_flows: 1_000,
            ..Default::default()
        };
        generate_traffic(&mut sim, &ft, &WEB, &tp);
        sim.run_until(15 * MILLIS);
        let store = collect_events(&mut sim);
        (sim.events_processed(), store.len(), sim.mgmt.total_bytes())
    };
    assert_eq!(run(), run());
}
