//! Model test for the durable spill buffer (`netseer::spill`), in the
//! style of the WAL's disk-model tests: random interleavings of
//! `append` / `drain` / `commit` / `fsync` / `crash` run against both the
//! real [`SpillStore`] and a trivially-correct in-memory reference, and
//! every observable must match exactly at every step.
//!
//! The contract pinned here:
//!
//! * **in-order exactness** — `drain_next` returns precisely the
//!   reference sequence, never a skip, never an invention;
//! * **exactly-once past the durable cursor** — `read` never rewinds
//!   below `durable`, so a committed record is never re-delivered;
//! * **bounded loss** — a crash (with or without a torn tail) destroys at
//!   most the un-fsynced suffix: everything at or below the last known
//!   fsync survives;
//! * **replay accounting** — every re-read after a crash rewind is
//!   counted in `replayed`, nothing else is;
//! * **budget refusal** — `append` refuses exactly when the resident
//!   record count has reached the byte budget, never silently drops.
//!
//! Torn-tail damage runs with duplication disabled: record duplication is
//! deduped by the collector's epoch/seq gates at apply time, one layer
//! above this store, so the store-level model demands prefix-exactness.
//!
//! `CHAOS_SEED` diversifies the interleavings per CI matrix leg.

use fet_netsim::rng::Pcg32;
use fet_packet::event::{EventDetail, EventRecord, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::faults::streams;
use netseer::spill::{SpillStore, SPILL_RECORD_LEN};
use netseer::{CollectorConfig, CorruptionGen, CorruptionSpec, StoredEvent};

/// Same CI-matrix seed mixing as `tests/chaos.rs`.
fn seed(base: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => base ^ s.trim().parse::<u64>().unwrap_or(0).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        Err(_) => base,
    }
}

fn ev(n: u64) -> StoredEvent {
    StoredEvent {
        time_ns: n * 1_000,
        device: (n % 41) as u32,
        epoch: (n % 3) as u32,
        seq: n,
        record: EventRecord {
            ty: EventType::Congestion,
            flow: FlowKey::tcp(
                Ipv4Addr::from_octets([10, 0, (n >> 8) as u8, n as u8]),
                1000 + (n % 500) as u16,
                Ipv4Addr::from_octets([10, 1, 0, 1]),
                80,
            ),
            detail: EventDetail::Congestion {
                egress_port: n as u8,
                queue: 0,
                latency_us: (n % 900) as u16,
            },
            counter: 1,
            hash: (n as u32).wrapping_mul(0x9e37_79b9),
        },
    }
}

/// The trivially-correct reference: a flat log with three cursors and a
/// floor on how much is known to be fsynced.
struct Model {
    appended: Vec<StoredEvent>,
    read: usize,
    durable: usize,
    /// Lower bound on fsynced records (the real store also fsyncs on
    /// segment rotation, which the model deliberately does not track —
    /// the loss bound only tightens).
    synced: usize,
    /// Highest read position ever reached (replay accounting).
    high_water: usize,
    expected_replayed: u64,
    expected_refused: u64,
}

#[test]
fn random_interleavings_match_the_reference_model() {
    let base = seed(0x5B1F_3D01);
    for round in 0u64..64 {
        let mut rng = Pcg32::new(base ^ round.wrapping_mul(0xA24B_AED4_963E_E407), round + 1);
        // Geometry drawn per round: tiny segments force rotation, small
        // budgets force refusal.
        let seg_records = 1 + u64::from(rng.next_below(8));
        let budget_records = 8 + u64::from(rng.next_below(64));
        let cfg = CollectorConfig {
            spill_segment_bytes: seg_records * SPILL_RECORD_LEN as u64,
            max_spill_bytes: budget_records * SPILL_RECORD_LEN as u64,
            ..CollectorConfig::default()
        };
        let mut spill = SpillStore::new(&cfg);
        // Alternate clean-truncation and torn-tail crashes across rounds.
        if round % 2 == 0 {
            spill.set_torn(CorruptionGen::new(
                CorruptionSpec { flip_per_byte: 0.05, truncate_prob: 0.5, duplicate_prob: 0.0 },
                base ^ round,
                streams::SPILL_CORRUPT,
            ));
        }
        let mut m = Model {
            appended: Vec::new(),
            read: 0,
            durable: 0,
            synced: 0,
            high_water: 0,
            expected_replayed: 0,
            expected_refused: 0,
        };
        let mut next = 0u64;

        for step in 0..512 {
            match rng.next_below(100) {
                0..=39 => {
                    let e = ev(next);
                    next += 1;
                    let room = spill.resident() < budget_records;
                    let accepted = spill.append(e);
                    assert_eq!(
                        accepted, room,
                        "round {round} step {step}: refusal must track the byte budget exactly"
                    );
                    if accepted {
                        m.appended.push(e);
                    } else {
                        m.expected_refused += 1;
                    }
                }
                40..=69 => {
                    let got = spill.drain_next();
                    if m.read < m.appended.len() {
                        assert_eq!(
                            got,
                            Some(m.appended[m.read]),
                            "round {round} step {step}: drain must be in-order and exact"
                        );
                        if m.read < m.high_water {
                            m.expected_replayed += 1;
                        } else {
                            m.high_water = m.read + 1;
                        }
                        m.read += 1;
                    } else {
                        assert_eq!(got, None, "round {round} step {step}: nothing left to drain");
                    }
                }
                70..=79 => {
                    spill.commit();
                    m.durable = m.read;
                    m.synced = m.synced.max(m.read);
                }
                80..=89 => {
                    spill.fsync();
                    m.synced = m.appended.len();
                }
                _ => {
                    let end_before = m.appended.len();
                    spill.crash();
                    // After the kill: read rewinds to durable and the
                    // surviving log is a prefix of what was appended.
                    let end_after = m.durable + spill.pending() as usize;
                    assert!(
                        end_after <= end_before,
                        "round {round} step {step}: a crash cannot invent records"
                    );
                    assert!(
                        end_after >= m.synced,
                        "round {round} step {step}: loss must be bounded by the un-fsynced \
                         tail (synced {} survived {end_after})",
                        m.synced
                    );
                    assert!(end_after >= m.durable, "durable records must survive");
                    m.appended.truncate(end_after);
                    m.read = m.durable;
                    // The survivors ARE the on-disk truth now: a second
                    // crash cannot destroy them.
                    m.synced = end_after;
                    m.high_water = m.high_water.min(end_after);
                }
            }
            // Cursor identities, every step.
            assert_eq!(spill.pending() as usize, m.appended.len() - m.read);
            assert_eq!(spill.read_cursor() as usize, m.read);
            assert_eq!(spill.durable_cursor() as usize, m.durable);
            assert_eq!(spill.replayed, m.expected_replayed);
            assert_eq!(spill.refused, m.expected_refused);
            assert!(spill.durable_cursor() <= spill.read_cursor());
        }

        // Epilogue: drain to quiescence and ack; everything left must
        // come out exactly once, in order.
        while let Some(got) = spill.drain_next() {
            assert_eq!(got, m.appended[m.read], "round {round}: epilogue drain must be exact");
            m.read += 1;
        }
        assert_eq!(m.read, m.appended.len(), "round {round}: quiescence covers the log");
        spill.commit();
        assert!(spill.is_drained());
        assert_eq!(spill.pending(), 0);
        // Deletion-after-ack reclaims everything once the cursor covers it.
        assert_eq!(spill.resident(), 0, "round {round}: acked segments must be deleted");
    }
}

/// The same interleaving, replayed with the same seed, must reproduce the
/// same store byte-for-byte — crashes, tears, refusals and all. (The
/// scenario matrix relies on this: `CHAOS_SEED` legs are comparable only
/// because each leg is internally deterministic.)
#[test]
fn same_seed_reproduces_the_same_interleaving() {
    let run = |mix: u64| {
        let mut rng = Pcg32::new(seed(0xD15C_05EE) ^ mix, 9);
        let cfg = CollectorConfig {
            spill_segment_bytes: 4 * SPILL_RECORD_LEN as u64,
            max_spill_bytes: 64 * SPILL_RECORD_LEN as u64,
            ..CollectorConfig::default()
        };
        let mut spill = SpillStore::new(&cfg);
        spill.set_torn(CorruptionGen::new(
            CorruptionSpec { flip_per_byte: 0.05, truncate_prob: 0.5, duplicate_prob: 0.0 },
            seed(0xD15C_05EE) ^ mix,
            streams::SPILL_CORRUPT,
        ));
        let mut drained = Vec::new();
        for n in 0..256u64 {
            match rng.next_below(10) {
                0..=4 => {
                    let _ = spill.append(ev(n));
                }
                5..=7 => drained.extend(spill.drain_next()),
                8 => spill.commit(),
                _ => {
                    spill.crash();
                }
            }
        }
        (
            drained,
            spill.appended,
            spill.drained,
            spill.replayed,
            spill.refused,
            spill.torn_records,
            spill.crashes,
            spill.read_cursor(),
            spill.durable_cursor(),
        )
    };
    let a = run(0);
    assert_eq!(a, run(0), "same seed must reproduce the same spill trajectory");
    assert!(a != run(1), "different seeds should perturb the trajectory");
}
