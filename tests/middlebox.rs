//! Middlebox monitoring (§3.7): the paper proposes three principles for
//! extending FET to middleboxes — (1) inter-device drop awareness,
//! (2) event-based local anomaly detection, (3) reliable report. A
//! middlebox here is a bump-in-the-wire device with finite processing
//! capacity; NetSeer's machinery covers all three principles unchanged.

use fet_netsim::host::{FlowSpec, HostConfig};
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::switchdev::{ProcessingModel, SwitchConfig};
use fet_netsim::time::{MILLIS, SECONDS};
use fet_netsim::topology::TopologyBuilder;
use fet_netsim::{NodeId, Simulator};
use fet_packet::event::{DropCode, EventType};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::FlowKey;
use netseer::deploy::{collect_events, monitor_of};
use netseer::{NetSeerConfig, NetSeerMonitor, Role};

struct MboxWorld {
    sim: Simulator,
    mbox: NodeId,
    client: NodeId,
    key: FlowKey,
}

/// host A — switch — middlebox — switch — host B, NetSeer everywhere.
fn build(mbox_gbps: f64, flow_rate: f64) -> MboxWorld {
    let mut sim = Simulator::new();
    let mut b = TopologyBuilder::new();
    let sw_cfg = SwitchConfig::default();
    let s1 = b.switch(&mut sim, "sw1", sw_cfg.clone());
    let s2 = b.switch(&mut sim, "sw2", sw_cfg.clone());
    let mbox = b.switch(
        &mut sim,
        "firewall0",
        SwitchConfig {
            processing: Some(ProcessingModel { gbps: mbox_gbps, buffer_bytes: 32 * 1024 }),
            ..sw_cfg
        },
    );
    let a_ip = Ipv4Addr::from_octets([10, 8, 0, 1]);
    let b_ip = Ipv4Addr::from_octets([10, 8, 0, 2]);
    let host_a = b.host(&mut sim, HostConfig { ip: a_ip, nic_gbps: 25.0, ..Default::default() });
    let host_b = b.host(&mut sim, HostConfig { ip: b_ip, nic_gbps: 25.0, ..Default::default() });
    b.connect(&mut sim, s1, mbox, 25.0, 200, 1);
    b.connect(&mut sim, mbox, s2, 25.0, 200, 2);
    b.connect(&mut sim, s1, host_a, 25.0, 200, 3);
    b.connect(&mut sim, s2, host_b, 25.0, 200, 4);
    install_ecmp_routes(&mut sim);

    for dev in [s1, s2, mbox] {
        let m = NetSeerMonitor::new(dev, Role::Switch, NetSeerConfig::default());
        sim.switch_mut(dev).set_monitor(Box::new(m));
        // All device-to-device links carry sequence tags (principle 1:
        // inter-device drop awareness between switches AND middleboxes).
        for port in 0..2 {
            sim.switch_mut(dev).tag_ports[port] = true;
        }
    }

    let key = FlowKey::tcp(a_ip, 7777, b_ip, 443);
    let idx = sim.host_mut(host_a).add_flow(FlowSpec {
        key,
        total_bytes: 10_000_000,
        pkt_payload: 1000,
        rate_gbps: flow_rate,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(host_a, idx);
    MboxWorld { sim, mbox, client: host_b, key }
}

/// Principle 2: event-based local anomaly detection — the overloaded
/// middlebox reports its own drops with the Overload code and the victim
/// flow, instead of a bare counter.
#[test]
fn overloaded_middlebox_reports_local_events() {
    // 5 Gbps firewall fed a 20 Gbps flow: sustained overload.
    let mut w = build(5.0, 20.0);
    w.sim.run_until(20 * MILLIS);
    let gt_overloads =
        w.sim.gt.events().iter().filter(|e| e.drop_code == Some(DropCode::Overload)).count();
    assert!(gt_overloads > 0, "the firewall must be overloaded");
    let store = collect_events(&mut w.sim);
    let hits: Vec<_> = store
        .events()
        .iter()
        .filter(|e| {
            e.device == w.mbox
                && matches!(
                    e.record.detail,
                    fet_packet::event::EventDetail::Drop { code: DropCode::Overload, .. }
                )
        })
        .collect();
    assert!(!hits.is_empty(), "overload events not reported");
    assert!(hits.iter().all(|e| e.record.flow == w.key), "victim flow misattributed");
}

/// Principle 1: inter-device drop awareness — a faulty cable between the
/// switch and the middlebox is localized exactly like a switch-to-switch
/// link, because the middlebox runs the same gap detector.
#[test]
fn middlebox_adjacent_link_drops_detected() {
    let mut w = build(25.0, 5.0); // healthy middlebox
                                  // The s1 -> mbox cable eats 4 frames.
    let s1 = 0; // first device created
    w.sim.link_direction_mut(s1, 0).unwrap().faults.burst_drop =
        Some(BurstDrop { at_ns: 500_000, count: 4, corrupt: false });
    w.sim.run_until(SECONDS);
    let store = collect_events(&mut w.sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    assert!(
        seen.contains(&(s1, w.key)),
        "drop on the switch->middlebox cable must be recovered upstream"
    );
    // And delivered bytes reflect the loss.
    let rx = w.sim.host(w.client).rx_flows.get(&w.key).copied().unwrap();
    assert!(rx.pkts > 0);
}

/// Principle 3: reliable report — every event the middlebox generates
/// reaches the backend store exactly once despite the transport model.
#[test]
fn middlebox_reports_are_reliable_and_unduplicated() {
    let mut w = build(5.0, 20.0);
    w.sim.run_until(20 * MILLIS);
    let m = monitor_of(&w.sim, w.mbox);
    // Everything the CPU let through is in `delivered`; the transport
    // never drops (ARQ) and the FP stage removed duplicates.
    let total_reports = m.delivered.len();
    assert!(total_reports > 0);
    let store = collect_events(&mut w.sim);
    let from_mbox = store.query(&netseer::Query::any().device(w.mbox)).len();
    assert_eq!(from_mbox, total_reports);
    // Overload is sustained, so dedup counters (not per-packet spam)
    // carry the volume: far fewer reports than dropped packets.
    let dropped_packets =
        w.sim.gt.events().iter().filter(|e| e.drop_code == Some(DropCode::Overload)).count();
    assert!(total_reports < dropped_packets / 2, "{total_reports} vs {dropped_packets}");
}

/// A healthy middlebox is invisible: no overload events, traffic flows.
#[test]
fn healthy_middlebox_generates_no_overload_events() {
    let mut w = build(25.0, 5.0);
    w.sim.run_until(20 * MILLIS);
    assert_eq!(
        w.sim.gt.events().iter().filter(|e| e.drop_code == Some(DropCode::Overload)).count(),
        0
    );
    let store = collect_events(&mut w.sim);
    assert!(store.events().iter().all(|e| !matches!(
        e.record.detail,
        fet_packet::event::EventDetail::Drop { code: DropCode::Overload, .. }
    )));
}
