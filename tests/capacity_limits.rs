//! Capacity limits (paper §4): what happens when events outrun the
//! hardware budgets — the ring buffer, the 40 Gbps MMU redirect, the event
//! stack, and the accuracy guarantee that survives all of them: NetSeer
//! may *miss* events beyond capacity but never *fabricates* one.

use fet_netsim::host::FlowSpec;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MILLIS, SECONDS};
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use netseer::deploy::{collect_events, deploy, monitor_of, DeployOptions};
use netseer::NetSeerConfig;

fn setup(cfg: NetSeerConfig) -> (Simulator, fet_netsim::topology::FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });
    (sim, ft)
}

fn heavy_flow(sim: &mut Simulator, ft: &fet_netsim::topology::FatTree, sport: u16) -> FlowKey {
    let key = FlowKey::tcp(ft.host_ips[0], sport, ft.host_ips[7], 80);
    let h = ft.hosts[0];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: 30_000_000,
        pkt_payload: 1000,
        rate_gbps: 20.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
    key
}

/// A burst longer than the ring buffer: some drops are unrecoverable
/// (the paper's explicit capacity caveat), but everything reported is
/// still true — the never-wrong-packet property survives overflow.
#[test]
fn ring_overflow_misses_but_never_lies() {
    let cfg = NetSeerConfig { ring_slots: 32, ..NetSeerConfig::default() };
    let (mut sim, ft) = setup(cfg);
    let _ = heavy_flow(&mut sim, &ft.clone(), 5000);
    let tor = ft.edges[0][0];
    // Drop 200 consecutive frames on both uplinks — far beyond 32 slots.
    for port in 0..2 {
        sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
            Some(BurstDrop { at_ns: 2 * MILLIS, count: 200, corrupt: false });
    }
    sim.run_until(SECONDS);
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    let gt_packet_count = sim.gt.count(EventType::InterSwitchDrop);
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    // Zero false positives even under overflow.
    for fe in &seen {
        assert!(gt.contains(fe), "fabricated inter-switch drop {fe:?}");
    }
    // The ring registered misses (overridden slots).
    let (_tagged, hits, misses) = monitor_of(&sim, tor).tagger_stats(0).unwrap_or((0, 0, 0));
    let (_t2, h2, m2) = monitor_of(&sim, tor).tagger_stats(1).unwrap_or((0, 0, 0));
    assert!(
        misses + m2 > 0,
        "a 200-frame burst must overflow a 32-slot ring (hits {} misses {})",
        hits + h2,
        misses + m2
    );
    assert!(gt_packet_count >= 200);
}

/// With the paper-sized ring (1024 slots), the same burst is fully
/// recovered — Figure 15(b)'s point.
#[test]
fn paper_sized_ring_recovers_long_bursts() {
    let cfg = NetSeerConfig { ring_slots: 1024, ..NetSeerConfig::default() };
    let (mut sim, ft) = setup(cfg);
    let key = heavy_flow(&mut sim, &ft.clone(), 5001);
    let tor = ft.edges[0][0];
    for port in 0..2 {
        sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
            Some(BurstDrop { at_ns: 2 * MILLIS, count: 200, corrupt: false });
    }
    sim.run_until(SECONDS);
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    assert!(seen.contains(&(tor, key)));
    // Every ground-truth victim flow recovered.
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "missed {fe:?} despite adequate ring");
    }
}

/// Stack overflow: a tiny event stack under an event storm drops events
/// (counted), and the monitor keeps functioning.
#[test]
fn event_stack_overflow_is_counted_not_fatal() {
    let cfg = NetSeerConfig {
        stack_capacity: 4,
        // Slow the drain so the storm actually overflows.
        pass_latency_ns: 100_000,
        ..NetSeerConfig::default()
    };
    let (mut sim, ft) = setup(cfg);
    // Storm: a blackhole drops a 20 Gbps flow packet-by-packet.
    let key = heavy_flow(&mut sim, &ft.clone(), 5002);
    let tor = ft.edges[0][0];
    let vip = ft.host_ips[7];
    sim.schedule_control(MILLIS, move |s| {
        fet_netsim::routing::remove_route(s, tor, vip);
    });
    sim.run_until(100 * MILLIS);
    let m = monitor_of(&sim, tor);
    assert!(m.batcher.accepted > 0);
    // The flow is still reported (its first event got through).
    let store = collect_events(&mut sim);
    assert!(store.flow_events(EventType::PipelineDrop).contains(&(tor, key)));
}

/// The dedup table under flow churn never drops below full coverage at
/// the flow-event level, even at 1/16th the default size.
#[test]
fn tiny_dedup_table_still_zero_false_negative() {
    let cfg = NetSeerConfig { dedup_entries: 256, ..NetSeerConfig::default() };
    let (mut sim, ft) = setup(cfg);
    // Many flows through one blackhole.
    for sport in 0..64u16 {
        let key = FlowKey::tcp(ft.host_ips[0], 6000 + sport, ft.host_ips[7], 80);
        let h = ft.hosts[0];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 100_000,
            pkt_payload: 1000,
            rate_gbps: 1.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    let tor = ft.edges[0][0];
    let vip = ft.host_ips[7];
    sim.schedule_control(MILLIS, move |s| {
        fet_netsim::routing::remove_route(s, tor, vip);
    });
    sim.run_until(SECONDS);
    let gt = sim.gt.flow_events(EventType::PipelineDrop);
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::PipelineDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "dedup caused a false negative: {fe:?}");
    }
}

/// §3.6 end to end: hash collisions in a deliberately tiny dedup table
/// cause eviction ping-pong (repeated initial reports — the false
/// positives); the switch CPU removes them, so the backend sees at most
/// one initial report per (type, flow) within the FP window.
#[test]
fn cpu_eliminates_collision_false_positives_end_to_end() {
    let cfg = NetSeerConfig {
        dedup_entries: 8, // force heavy ping-pong among 48 flows
        ..NetSeerConfig::default()
    };
    let (mut sim, ft) = setup(cfg);
    for sport in 0..48u16 {
        let key = FlowKey::tcp(ft.host_ips[0], 7000 + sport, ft.host_ips[7], 80);
        let h = ft.hosts[0];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 200_000,
            pkt_payload: 1000,
            rate_gbps: 2.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    let tor = ft.edges[0][0];
    let vip = ft.host_ips[7];
    sim.schedule_control(MILLIS, move |s| {
        fet_netsim::routing::remove_route(s, tor, vip);
    });
    // Stay inside one FP window (100 ms default).
    sim.run_until(90 * MILLIS);

    let m = monitor_of(&sim, tor);
    assert!(m.cpu.fp_eliminated > 0, "collision storm must produce FPs for the CPU to kill");

    let store = collect_events(&mut sim);
    use std::collections::HashMap;
    let mut initials: HashMap<(u8, fet_packet::FlowKey), usize> = HashMap::new();
    for e in store.events().iter().filter(|e| e.device == tor && e.record.counter <= 1) {
        *initials.entry((e.record.ty.code(), e.record.flow)).or_insert(0) += 1;
    }
    for (k, n) in &initials {
        assert!(*n <= 1, "flow {k:?} has {n} initial reports after FP elimination");
    }
    // And still zero false negatives.
    let gt = sim.gt.flow_events(EventType::PipelineDrop);
    let seen = store.flow_events(EventType::PipelineDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "FN under collision storm: {fe:?}");
    }
}

/// §4's internal-port joint limit: pause, ingress pipeline drop, and MMU
/// drop events share the internal port. With a starved internal port,
/// events are missed (counted) — never invented — and restoring the
/// paper's 100 Gbps budget restores full coverage.
#[test]
fn internal_port_budget_gates_redirected_events() {
    let starved = NetSeerConfig {
        capacity: netseer::config::CapacityModel {
            internal_port_gbps: 0.01, // 10 Mbps: instantly saturated
            ..netseer::config::CapacityModel::default()
        },
        ..NetSeerConfig::default()
    };
    let run = |cfg: NetSeerConfig| {
        let (mut sim, ft) = setup(cfg);
        let _ = heavy_flow(&mut sim, &ft.clone(), 5010);
        let tor = ft.edges[0][0];
        let vip = ft.host_ips[7];
        sim.schedule_control(MILLIS, move |s| {
            fet_netsim::routing::remove_route(s, tor, vip);
        });
        sim.run_until(50 * MILLIS);
        let missed = monitor_of(&sim, tor).internal_port_missed;
        let gt = sim.gt.flow_events(EventType::PipelineDrop);
        let store = collect_events(&mut sim);
        let seen = store.flow_events(EventType::PipelineDrop);
        // Never invented.
        for fe in &seen {
            assert!(gt.contains(fe), "fabricated event {fe:?}");
        }
        let covered = gt.iter().filter(|fe| seen.contains(fe)).count();
        (missed, covered, gt.len())
    };
    let (missed_starved, _c1, _t1) = run(starved);
    assert!(missed_starved > 0, "a 10 Mbps internal port must drop events");
    let (missed_paper, covered, total) = run(NetSeerConfig::default());
    assert_eq!(missed_paper, 0, "100G internal port should not saturate here");
    assert_eq!(covered, total, "full coverage within the paper budget");
}
