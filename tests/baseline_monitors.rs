//! Baselines behave like their real counterparts on the full simulation:
//! NetSight sees everything and pays for it; sampling thins linearly;
//! SNMP knows drops happened but not whose; EverFlow is blind off its
//! match set; Pingmesh raises existence alarms without naming flows.

use fet_bench::{
    coverage_of, deploy_monitor, filter_gt, overhead_of, packet_coverage_of, run_experiment,
    InjectSpec, MonitorKind,
};
use fet_netsim::engine::Node;
use fet_netsim::time::MILLIS;
use fet_packet::event::EventType;
use fet_workloads::distributions::{DCTCP, WEB};
use netseer::NetSeerConfig;

#[test]
fn netsight_full_coverage_heavy_overhead() {
    let inject = InjectSpec::default();
    let mut out = run_experiment(&WEB, MonitorKind::NetSight, &inject, 7, 10 * MILLIS);
    let gt = filter_gt(&out.sim.gt, |_| true);
    for ty in [EventType::PipelineDrop, EventType::InterSwitchDrop, EventType::Congestion] {
        let (c, t) = coverage_of(&mut out.sim, MonitorKind::NetSight, &gt, ty);
        assert!(t > 0);
        assert_eq!(c, t, "{ty}: {c}/{t}");
    }
    // Overhead orders of magnitude above NetSeer's.
    assert!(overhead_of(&out.sim) > 0.02, "netsight overhead {}", overhead_of(&out.sim));
}

#[test]
fn sampling_thins_with_k() {
    let inject = InjectSpec {
        interswitch_burst: 0,
        blackhole: false,
        reroute: false,
        incast: true,
        ..Default::default()
    };
    let mut ratios = Vec::new();
    for k in [10u64, 100, 1000] {
        let mut out = run_experiment(&DCTCP, MonitorKind::Sampling(k), &inject, 7, 10 * MILLIS);
        let gt = filter_gt(&out.sim.gt, |e| e.ty == EventType::Congestion);
        let (c, t) =
            packet_coverage_of(&mut out.sim, MonitorKind::Sampling(k), &gt, EventType::Congestion);
        assert!(t > 0);
        let r = c as f64 / t as f64;
        // Within 3x of 1/k.
        assert!(r < 3.0 / k as f64 && r > 1.0 / (3.0 * k as f64), "1:{k} coverage {r}");
        ratios.push(r);
    }
    assert!(ratios[0] > ratios[1] && ratios[1] > ratios[2]);
}

#[test]
fn snmp_sees_device_level_drops_only() {
    use fet_baselines::SnmpMonitor;
    let inject = InjectSpec::default();
    let out = run_experiment(&WEB, MonitorKind::Snmp, &inject, 7, 10 * MILLIS);
    // Some switch saw drops at the counter level...
    let mut any_saw = false;
    for id in out.sim.switch_ids() {
        let Node::Switch(sw) = &out.sim.nodes[id as usize] else { continue };
        if let Some(m) = sw.monitor.as_ref() {
            if let Some(snmp) = m.as_any().downcast_ref::<SnmpMonitor>() {
                any_saw |= snmp.saw_drops();
            }
        }
    }
    assert!(any_saw, "SNMP should at least see drop counters move");
}

#[test]
fn everflow_blind_outside_match_set() {
    let inject = InjectSpec::default();
    let mut out = run_experiment(&DCTCP, MonitorKind::EverFlow, &inject, 7, 10 * MILLIS);
    let gt = filter_gt(&out.sim.gt, |_| true);
    let (c, t) = coverage_of(&mut out.sim, MonitorKind::EverFlow, &gt, EventType::MmuDrop);
    assert!(t > 0);
    assert!((c as f64) < 0.2 * t as f64, "EverFlow MMU-drop coverage too high: {c}/{t}");
}

#[test]
fn pingmesh_detects_existence_not_flows() {
    use fet_netsim::routing::install_ecmp_routes;
    use fet_netsim::topology::{build_fat_tree, FatTreeParams};
    use fet_netsim::Simulator;
    use fet_workloads::generator::generate_incast;

    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 64 * 1024;
    // Small buffers mean short queues: lower the congestion threshold so
    // the incast's ~14 us queues register as congestion events.
    params.switch_config.congestion_threshold_ns = 5 * fet_netsim::MICROS;
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy_monitor(&mut sim, MonitorKind::Pingmesh, &NetSeerConfig::default());
    generate_incast(&mut sim, &ft, 0, &[1, 2, 3, 4, 5, 6, 7], 3_000_000, 5 * MILLIS);
    sim.run_until(60 * MILLIS);

    // Existence: probes got delayed or lost during the incast.
    let hosts = sim.host_ids();
    let saw = fet_baselines::pingmesh_saw_slowness(&sim, &hosts, 8_000, 0, 60 * MILLIS)
        || fet_baselines::pingmesh_saw_loss(&sim, &hosts);
    assert!(saw, "pingmesh should notice the incast");
    // But flow-level coverage stays negligible.
    let (c, t) = fet_baselines::pingmesh_congestion_coverage(&sim.gt);
    assert!(t > 0);
    assert!((c as f64) < 0.25 * t as f64, "pingmesh coverage {c}/{t}");
}
