//! Golden corpus for the wire ingestion path: hand-laid and
//! builder-produced NetFlow v5 / v9 / IPFIX datagrams with the *exact*
//! FET events each must yield, plus the template-cache bound property
//! under adversarial insertion orders.
//!
//! These tests freeze the wire-format contract: any byte-layout or
//! translation change that alters what a known exporter datagram decodes
//! to must show up here as an exact-equality failure, not a statistical
//! drift.

use fet_netsim::rng::Pcg32;
use fet_packet::event::{DropCode, EventDetail, EventRecord, EventType};
use fet_packet::flow::{FlowKey, IpProtocol};
use fet_packet::Ipv4Addr;
use fet_wire::builder::{IpfixBuilder, V9Builder};
use fet_wire::fields::{base_flow_fields, encode_record};
use fet_wire::{
    flow_hash, translate, FlowSample, RejectReason, Template, TemplateCache, TemplateCacheConfig,
    TemplateField, WireSession, WireSessionConfig,
};

fn session() -> WireSession {
    WireSession::new(WireSessionConfig::default())
}

/// The golden flow used across the corpus: 10.0.0.1:1000 → 10.9.0.2:80/tcp.
fn golden_flow() -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_octets([10, 0, 0, 1]),
        1000,
        Ipv4Addr::from_octets([10, 9, 0, 2]),
        80,
    )
}

fn golden_sample() -> FlowSample {
    FlowSample {
        flow: golden_flow(),
        in_port: 3,
        out_port: 7,
        packets: 12,
        bytes: 1200,
        tcp_flags: 0x10,
        forwarding_status: Some(0x40),
        first_ms: 0,
        last_ms: 0,
    }
}

// ---------------------------------------------------------------------------
// NetFlow v5: a byte-literal datagram and its exact event.
// ---------------------------------------------------------------------------

#[test]
fn v5_golden_datagram_yields_the_exact_event() {
    // 24-byte header: version 5, count 1, seq 100, engine 1/2.
    let mut dg = vec![
        0x00, 0x05, // version
        0x00, 0x01, // count
        0x00, 0x00, 0x00, 0x00, // sys_uptime
        0x00, 0x00, 0x00, 0x00, // unix_secs
        0x00, 0x00, 0x00, 0x00, // unix_nsecs
        0x00, 0x00, 0x00, 0x64, // flow_sequence = 100
        0x01, // engine_type
        0x02, // engine_id
        0x00, 0x00, // sampling
    ];
    // One 48-byte record, laid out by RFC field offsets.
    let mut rec = [0u8; 48];
    rec[0..4].copy_from_slice(&[10, 0, 0, 1]); // src
    rec[4..8].copy_from_slice(&[10, 9, 0, 2]); // dst
    rec[12..14].copy_from_slice(&3u16.to_be_bytes()); // input
    rec[14..16].copy_from_slice(&7u16.to_be_bytes()); // output
    rec[16..20].copy_from_slice(&12u32.to_be_bytes()); // dPkts
    rec[20..24].copy_from_slice(&1200u32.to_be_bytes()); // dOctets
    rec[32..34].copy_from_slice(&1000u16.to_be_bytes()); // srcport
    rec[34..36].copy_from_slice(&80u16.to_be_bytes()); // dstport
    rec[37] = 0x10; // tcp_flags
    rec[38] = 6; // proto = TCP
    dg.extend_from_slice(&rec);

    let mut s = session();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!(r.decoded, 1);
    assert_eq!(r.malformed, 0);
    assert_eq!(r.domain, (1 << 8) | 2, "engine_type/engine_id pack into the domain");

    // v5 carries no forwardingStatus; out_port 7 ⇒ the flow moved ⇒ the
    // exact expected event is a PathChange.
    let got = translate(&r.samples[0]);
    let want = EventRecord {
        ty: EventType::PathChange,
        flow: golden_flow(),
        detail: EventDetail::PathChange { ingress_port: 3, egress_port: 7 },
        counter: 12,
        hash: flow_hash(&golden_flow()),
    };
    assert_eq!(got, want);
    assert_eq!(r.samples[0].forwarding_status, None, "v5 has no forwarding status field");
    assert_eq!(r.samples[0].bytes, 1200);
}

#[test]
fn v5_blackholed_record_yields_the_exact_drop_event() {
    // Same record, output interface 0: the blackhole convention.
    let mut s = session();
    let mut sample = golden_sample();
    sample.out_port = 0;
    sample.forwarding_status = None;
    let dg = fet_wire::builder::v5_datagram(0, 0, 1, &[sample]);
    let r = s.ingest(&dg, 0);
    let want = EventRecord {
        ty: EventType::PipelineDrop,
        flow: golden_flow(),
        detail: EventDetail::Drop { ingress_port: 3, egress_port: 0, code: DropCode::TableMiss },
        counter: 12,
        hash: flow_hash(&golden_flow()),
    };
    assert_eq!(translate(&r.samples[0]), want);
}

// ---------------------------------------------------------------------------
// NetFlow v9: template lifecycle golden cases.
// ---------------------------------------------------------------------------

#[test]
fn v9_template_before_data_decodes_exactly() {
    let mut s = session();
    let mut dropped = golden_sample();
    dropped.forwarding_status = Some(0x89); // dropped, reason 9 = TTL expired
    let dg = V9Builder::new(7, 1)
        .template(260, &base_flow_fields())
        .data_samples(260, &[golden_sample(), dropped])
        .build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!(r.decoded, 2);
    assert_eq!(r.malformed, 0);

    let events: Vec<EventRecord> = r.samples.iter().map(translate).collect();
    assert_eq!(
        events[0],
        EventRecord {
            ty: EventType::PathChange,
            flow: golden_flow(),
            detail: EventDetail::PathChange { ingress_port: 3, egress_port: 7 },
            counter: 12,
            hash: flow_hash(&golden_flow()),
        }
    );
    assert_eq!(
        events[1],
        EventRecord {
            ty: EventType::PipelineDrop,
            flow: golden_flow(),
            detail: EventDetail::Drop {
                ingress_port: 3,
                egress_port: 7,
                code: DropCode::TtlExpired,
            },
            counter: 12,
            hash: flow_hash(&golden_flow()),
        }
    );
}

#[test]
fn v9_data_before_template_is_malformed_until_announced() {
    let mut s = session();
    // Data first: nothing decodable, but nothing silently lost either —
    // both records are booked malformed under the missing-template reason.
    let data_first =
        V9Builder::new(7, 1).data_samples(260, &[golden_sample(), golden_sample()]).build();
    let r = s.ingest(&data_first, 0);
    assert_eq!(r.rejected, None, "a missing template is a soft defect");
    assert_eq!(r.decoded, 0);
    assert_eq!(r.malformed, 2, "the claimed records are accounted, not dropped");
    assert_eq!(r.soft[RejectReason::MissingTemplate.index()], 1);
    assert_eq!(r.claimed(), 2);

    // Announce, then resend: decodes exactly.
    let announce = V9Builder::new(7, 2).template(260, &base_flow_fields()).build();
    assert_eq!(s.ingest(&announce, 0).rejected, None);
    let again = V9Builder::new(7, 3).data_samples(260, &[golden_sample(), golden_sample()]).build();
    let r = s.ingest(&again, 0);
    assert_eq!((r.decoded, r.malformed), (2, 0));
    assert_eq!(translate(&r.samples[0]).ty, EventType::PathChange);
}

#[test]
fn v9_template_refresh_swaps_the_record_layout() {
    let mut s = session();
    // First layout: the full base template.
    let dg = V9Builder::new(7, 1)
        .template(260, &base_flow_fields())
        .data_samples(260, &[golden_sample()])
        .build();
    assert_eq!(s.ingest(&dg, 0).decoded, 1);

    // Refresh tid 260 with a narrower layout: src addr + proto only.
    let narrow = vec![
        TemplateField::std(8, 4), // IPV4_SRC_ADDR
        TemplateField::std(4, 1), // PROTOCOL
    ];
    let row = vec![vec![10, 0, 0, 1, 17]]; // 10.0.0.1, UDP
    let dg = V9Builder::new(7, 2).template(260, &narrow).data(260, &row).build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!(r.decoded, 1, "data decodes under the refreshed layout");
    let smp = r.samples[0];
    assert_eq!(smp.flow.src, Ipv4Addr::from_octets([10, 0, 0, 1]));
    assert_eq!(smp.flow.proto, IpProtocol::Udp);
    assert_eq!(smp.flow.dport, 0, "fields absent from the template stay zero");
    assert_eq!(s.cache().stats().refreshed, 1);
    assert_eq!(s.cache().domain_len(7), 1, "refresh replaces, never duplicates");

    // Old-layout data under the refreshed template no longer fits
    // cleanly: a 27-byte record against a 5-byte layout decodes 5 phantom
    // records and flags the 2-byte tail.
    let stale = V9Builder::new(7, 3).data_samples(260, &[golden_sample()]).build();
    let r = s.ingest(&stale, 0);
    assert_eq!(r.rejected, None, "stale-layout data is a soft defect, not a reject");
}

#[test]
fn v9_options_template_records_are_counted_but_not_eventized() {
    let mut s = session();
    let dg = V9Builder::new(7, 1)
        .options_template(900, &[TemplateField::std(1, 4)], &[TemplateField::std(2, 2)])
        .data(900, &[vec![0, 0, 0, 1, 0, 60]])
        .build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!(r.samples.len(), 0, "option records describe the exporter, not flows");
    assert_eq!(r.malformed, 0, "counted cleanly — just not flow events");
}

// ---------------------------------------------------------------------------
// IPFIX: template + enterprise-field golden cases.
// ---------------------------------------------------------------------------

#[test]
fn ipfix_template_before_data_decodes_exactly() {
    let mut s = session();
    let dg = IpfixBuilder::new(9, 0)
        .template(270, &base_flow_fields())
        .data_samples(270, &[golden_sample()])
        .build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!((r.decoded, r.malformed), (1, 0));
    assert_eq!(r.domain, 9);
    let want = EventRecord {
        ty: EventType::PathChange,
        flow: golden_flow(),
        detail: EventDetail::PathChange { ingress_port: 3, egress_port: 7 },
        counter: 12,
        hash: flow_hash(&golden_flow()),
    };
    assert_eq!(translate(&r.samples[0]), want);
    // The builder-encoded record re-decodes with its forwarding status.
    assert_eq!(r.samples[0].forwarding_status, Some(0x40));
}

#[test]
fn ipfix_enterprise_fields_are_skipped_without_miscounting() {
    let mut s = session();
    let mut fields = base_flow_fields();
    fields.push(TemplateField { field_id: 77, length: 4, enterprise: Some(29305) });
    let mut row = encode_record(&base_flow_fields(), &golden_sample());
    row.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]); // enterprise payload
    let dg = IpfixBuilder::new(9, 0).template(271, &fields).data(271, &[row]).build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!((r.decoded, r.malformed), (1, 0));
    assert_eq!(translate(&r.samples[0]).flow, golden_flow());
}

#[test]
fn ipfix_data_before_template_is_accounted() {
    let mut s = session();
    let dg = IpfixBuilder::new(9, 0).data_samples(272, &[golden_sample()]).build();
    let r = s.ingest(&dg, 0);
    assert_eq!(r.rejected, None);
    assert_eq!(r.decoded, 0);
    assert!(r.malformed >= 1, "an unknown-template set books at least one malformed record");
    assert_eq!(r.soft[RejectReason::MissingTemplate.index()], 1);
}

// ---------------------------------------------------------------------------
// The bound property: no insertion order exceeds max_templates.
// ---------------------------------------------------------------------------

#[test]
fn template_cache_never_exceeds_bound_under_any_insertion_order() {
    // Seeded shuffles of a template-id universe 8× the cache bound,
    // interleaved with refreshes, lookups, and sweeps — the cache bound
    // and its eviction accounting must hold after every operation.
    let cfg =
        TemplateCacheConfig { max_templates: 16, max_domains: 4, ..TemplateCacheConfig::default() };
    for seed in 0..40u64 {
        let mut rng = Pcg32::new(seed, 0x71);
        let mut cache = TemplateCache::new(cfg);
        let mut ids: Vec<u16> = (0..128u16).map(|i| 256 + i).collect();
        // Fisher–Yates with the deterministic rng: a fresh insertion
        // order per seed.
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.next_below(i as u32 + 1) as usize);
        }
        for (step, &tid) in ids.iter().enumerate() {
            // Spread stays within max_domains here so the install/evict
            // identity below is exact (whole-domain eviction drops an
            // uncounted number of templates; the over-bound case is
            // covered by `hostile_announcement_order_from_datagrams_...`).
            let domain = rng.next_below(4);
            cache.install(domain, Template::new(tid, base_flow_fields(), 0), step as u64);
            if rng.chance(0.3) {
                let _ = cache.get(domain, tid, step as u64);
            }
            if rng.chance(0.05) {
                cache.sweep(step as u64);
            }
            assert!(
                cache.max_domain_len() <= cfg.max_templates,
                "seed {seed} step {step}: domain exceeded max_templates"
            );
            assert!(
                cache.domain_count() <= cfg.max_domains,
                "seed {seed} step {step}: domain count exceeded max_domains"
            );
        }
        // Eviction accounting: installed templates either live in the
        // cache or were evicted/expired/refreshed — nothing vanishes.
        let st = cache.stats();
        assert_eq!(
            st.installed,
            cache.total_len() as u64 + st.evicted_lru + st.evicted_domains + st.expired,
            "seed {seed}: install/evict accounting must balance"
        );
    }
}

#[test]
fn hostile_announcement_order_from_datagrams_respects_the_bound() {
    // The same property end to end through the parser: datagram-borne
    // template floods across shuffled domains.
    let mut s = WireSession::new(WireSessionConfig {
        template: TemplateCacheConfig {
            max_templates: 8,
            max_domains: 4,
            ..TemplateCacheConfig::default()
        },
        ..WireSessionConfig::default()
    });
    let mut rng = Pcg32::new(99, 0x72);
    for i in 0..500u32 {
        let domain = rng.next_below(16);
        let tid = 256 + rng.next_below(64) as u16;
        let dg = V9Builder::new(domain, i).template(tid, &base_flow_fields()).build();
        s.ingest(&dg, u64::from(i));
        assert!(s.cache().max_domain_len() <= 8);
        assert!(s.cache().domain_count() <= 4);
    }
}
