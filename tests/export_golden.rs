//! Golden-file and oracle tests for the `fet-export` encoders.
//!
//! The golden files pin the *exact* bytes both encoders emit for a fixed
//! registry — format drift (ordering, escaping, float formatting,
//! histogram ladders) fails loudly instead of silently changing what a
//! real Prometheus or OTel collector would scrape. Regenerate after an
//! intentional format change with:
//! `cargo test --test export_golden regenerate_goldens -- --ignored`
//!
//! The mixed-replay tests use the exporter as its own oracle: the
//! conservation identity is re-derived from the rendered Prometheus text
//! (and only from it), so a rendering bug that mangled a term would break
//! the balance even though the in-memory ledger is fine.

use netseer_repro::fet_export::{
    http_get, parse_exposition, render_otel, render_prometheus, run_mixed_replay, validate_json,
    ExportServer, MetricRegistry, MixedReplayConfig, RenderedSnapshot, SnapshotHandle,
};

const METRICS_GOLDEN: &str = include_str!("golden/export_metrics.golden");
const OTEL_GOLDEN: &str = include_str!("golden/export_otel.golden");

/// The fixed registry both goldens render: every metric kind, hostile
/// label values, multiple series per family, and a tripped cardinality
/// cap so the meta families carry non-zero refusal counters.
fn golden_registry() -> MetricRegistry {
    let mut reg = MetricRegistry::new(netseer_repro::fet_export::RegistryConfig {
        max_families: 64,
        max_series_per_family: 3,
    });
    reg.counter_add("fet_events_generated_total", "Events generated.", &[("scope", "fleet")], 42);
    reg.counter_add("fet_events_generated_total", "Events generated.", &[("scope", "wire")], 17);
    // Insertion order deliberately differs from label order; output must
    // not care.
    reg.counter_add(
        "fet_events_shed_total",
        "Events shed at a named choke point.",
        &[("reason", "pcie"), ("scope", "fleet")],
        5,
    );
    reg.counter_add(
        "fet_events_shed_total",
        "Events shed at a named choke point.",
        &[("scope", "fleet"), ("reason", "stack")],
        3,
    );
    // Hostile label values: backslash, quote, newline.
    reg.gauge_set(
        "fet_collector_backlog",
        "Backlog with a \"quoted\" help string\nand a newline.",
        &[("path", "C:\\spool\"dir\"\nline2")],
        7.5,
    );
    reg.histogram_observe(
        "fet_sla_breach_duration_ns",
        "Breach durations.",
        &[1e6, 2e6, 4e6],
        &[("device", "3")],
        1.5e6,
    );
    reg.histogram_observe(
        "fet_sla_breach_duration_ns",
        "Breach durations.",
        &[1e6, 2e6, 4e6],
        &[("device", "3")],
        9e6,
    );
    // Trip the per-family cap (3): the 4th distinct series is refused
    // and counted, never stored.
    for i in 0..5u32 {
        let v = i.to_string();
        reg.counter_add("fet_capped_total", "Cap demo.", &[("i", v.as_str())], 1);
    }
    reg
}

const GOLDEN_START_NS: u64 = 0;
const GOLDEN_NOW_NS: u64 = 12_000_000;

#[test]
fn prometheus_text_matches_golden() {
    let got = render_prometheus(&golden_registry());
    assert!(parse_exposition(&got).is_some(), "golden output must parse as Prometheus text v0.0.4");
    assert_eq!(
        got, METRICS_GOLDEN,
        "Prometheus rendering drifted from tests/golden/export_metrics.golden; \
         regenerate with `cargo test --test export_golden regenerate_goldens -- --ignored` \
         if the change is intentional"
    );
}

#[test]
fn otel_json_matches_golden() {
    let got = render_otel(&golden_registry(), GOLDEN_START_NS, GOLDEN_NOW_NS);
    assert!(validate_json(&got), "golden output must be valid JSON");
    assert_eq!(
        got, OTEL_GOLDEN,
        "OTel rendering drifted from tests/golden/export_otel.golden; \
         regenerate with `cargo test --test export_golden regenerate_goldens -- --ignored` \
         if the change is intentional"
    );
}

/// Rewrites both golden files from the current encoders. Run manually.
#[test]
#[ignore = "writes into the source tree; run manually after intentional format changes"]
fn regenerate_goldens() {
    let reg = golden_registry();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::write(format!("{dir}/export_metrics.golden"), render_prometheus(&reg)).unwrap();
    std::fs::write(
        format!("{dir}/export_otel.golden"),
        render_otel(&reg, GOLDEN_START_NS, GOLDEN_NOW_NS),
    )
    .unwrap();
}

#[test]
fn cardinality_cap_refuses_and_counts_in_the_output() {
    let doc = parse_exposition(&render_prometheus(&golden_registry())).unwrap();
    // Only 3 of 5 attempted series exist; the 2 refusals are visible in
    // the export's own meta metric — capped output is never silent.
    let kept: Vec<_> = doc.samples.iter().filter(|s| s.name == "fet_capped_total").collect();
    assert_eq!(kept.len(), 3, "cap must hold");
    assert_eq!(doc.value("fet_export_series_rejected_total", &[]), Some(2.0));
}

#[test]
fn hostile_labels_roundtrip_through_the_text_format() {
    let doc = parse_exposition(&render_prometheus(&golden_registry()))
        .expect("escaped output must still parse");
    assert_eq!(
        doc.value("fet_collector_backlog", &[("path", "C:\\spool\"dir\"\nline2")]),
        Some(7.5),
        "escaping must be lossless through render -> parse"
    );
}

#[test]
fn mixed_replay_identity_holds_via_the_prometheus_oracle() {
    let report = run_mixed_replay(&MixedReplayConfig::default());
    let doc = parse_exposition(&report.snapshot.prometheus)
        .expect("replay snapshot must parse as Prometheus text");
    assert!(validate_json(&report.snapshot.otel), "replay OTel snapshot must be valid JSON");
    let get = |name: &str| {
        doc.value(name, &[("scope", "merged")])
            .unwrap_or_else(|| panic!("scraped output missing {name}"))
    };
    let shed: f64 = doc
        .samples
        .iter()
        .filter(|s| {
            s.name == "fet_events_shed_total"
                && s.labels.iter().any(|(k, v)| k == "scope" && v == "merged")
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(
        get("fet_events_generated_total"),
        get("fet_events_delivered_total")
            + shed
            + get("fet_events_pending")
            + get("fet_events_buffered")
            + get("fet_events_lost_to_crash_total")
            + get("fet_events_corrupted_total")
            + get("fet_events_malformed_total"),
        "generated == delivered + shed + pending + buffered + lost_to_crash \
         + corrupted + malformed, read back from the scraped text"
    );
    // Both halves really contributed.
    assert!(report.fleet.generated > 0 && report.wire.generated > 0);
}

#[test]
fn scrape_server_serves_the_published_snapshot_verbatim() {
    let report = run_mixed_replay(&MixedReplayConfig::default());
    let handle = SnapshotHandle::new();
    handle.publish(report.snapshot.clone());
    let server = ExportServer::bind(handle.clone()).expect("bind");
    let metrics = http_get(server.addr(), "/metrics").expect("scrape /metrics");
    let otel = http_get(server.addr(), "/otel").expect("scrape /otel");
    assert_eq!(metrics, report.snapshot.prometheus, "served bytes == published bytes");
    assert_eq!(otel, report.snapshot.otel);
    // Re-publishing swaps atomically; the next scrape sees the new body.
    let mut reg = MetricRegistry::default();
    reg.counter_add("fet_after_total", "After.", &[], 1);
    handle.publish(RenderedSnapshot::render(&reg, 0, 1));
    let after = http_get(server.addr(), "/metrics").expect("scrape again");
    assert!(after.contains("fet_after_total 1"));
    server.stop();
}
