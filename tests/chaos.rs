//! Chaos drills: seeded fault injection against a full NetSeer deployment.
//!
//! Each scenario builds a [`FaultPlan`], deploys fleet-wide on the testbed
//! fat-tree, drives real traffic with data-plane faults (so events are
//! actually generated), and then checks the robustness contract:
//!
//! * the [`DeliveryLedger`] balances on every device — every generated
//!   event is delivered, shed at a named choke point, or still pending;
//!   nothing is ever lost silently;
//! * degradation is graceful (deliveries continue, or resume after the
//!   fault clears);
//! * the same seed reproduces the same run bit-for-bit.

use fet_netsim::host::FlowSpec;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MICROS, MILLIS};
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use netseer::deploy::{
    collect_events, delivered_history, deploy, monitor_of, monitor_of_mut, DeployOptions,
};
use netseer::faults::{seeded_device_crashes, streams, OverloadWindow};
use netseer::{
    schedule_device_crashes, schedule_watchdog, schedule_wedge, Collector, CollectorConfig,
    CorruptionGen, CorruptionSpec, CrashKind, DeliveryLedger, FaultPlan, LossProcess,
    NetSeerConfig, WatchdogConfig, Window,
};

/// Seed diversification for the CI matrix: when `CHAOS_SEED` is set, every
/// scenario's base seed is mixed with it so each matrix leg sweeps a
/// genuinely different (but still fully deterministic) run.
fn seed(base: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => base ^ s.trim().parse::<u64>().unwrap_or(0).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        Err(_) => base,
    }
}

fn setup(cfg: NetSeerConfig) -> (Simulator, FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });
    (sim, ft)
}

fn add_flow(sim: &mut Simulator, ft: &FatTree, src: usize, dst: usize, sport: u16, bytes: u64) {
    let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
    let h = ft.hosts[src];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: bytes,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
}

/// Cross-traffic plus lossy uplinks: a workload that reliably generates
/// path-change and inter-switch-drop events on every pod, and that lasts
/// several milliseconds so faults scheduled mid-run hit live traffic.
fn drive_lossy_fabric(sim: &mut Simulator, ft: &FatTree, drop_prob: f64) {
    for s in 0..8 {
        add_flow(sim, ft, s, 7 - s, 2000 + s as u16, 4_000_000);
    }
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = drop_prob;
        }
    }
}

/// Sum every device's ledger after asserting each one balances on its own.
fn fleet_ledger(sim: &Simulator) -> DeliveryLedger {
    let mut total = DeliveryLedger::default();
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    for id in ids {
        let l = monitor_of(sim, id).ledger();
        l.assert_balanced();
        total.generated += l.generated;
        total.delivered += l.delivered;
        total.shed_stack += l.shed_stack;
        total.shed_pcie += l.shed_pcie;
        total.shed_cpu_overload += l.shed_cpu_overload;
        total.shed_false_positive += l.shed_false_positive;
        total.shed_transport += l.shed_transport;
        total.pending += l.pending;
        total.buffered += l.buffered;
        total.lost_to_crash += l.lost_to_crash;
        total.corrupted += l.corrupted;
    }
    total
}

fn fleet_retransmissions(sim: &Simulator) -> u64 {
    sim.switch_ids().into_iter().map(|id| monitor_of(sim, id).transport.retransmissions).sum()
}

fn fleet_notification_drops(sim: &Simulator) -> u64 {
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    ids.into_iter().map(|id| monitor_of(sim, id).notification_copies_dropped).sum()
}

/// Scenario 1 — bursty (Gilbert–Elliott) loss on the management network.
/// The adaptive-RTO transport retransmits through the bursts; everything
/// still arrives and the ledger stays balanced.
#[test]
fn burst_loss_on_mgmt_network_is_absorbed() {
    let faults = FaultPlan {
        seed: seed(0xC0FFEE),
        mgmt_loss: LossProcess::GilbertElliott {
            p_enter_bad: 0.2,
            p_exit_bad: 0.2,
            loss_good: 0.05,
            loss_bad: 0.95,
        },
        ..FaultPlan::default()
    };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0, "workload must generate events");
    assert!(ledger.delivered > 0, "bursty loss must not stop delivery");
    assert_eq!(ledger.missing(), 0, "zero silent loss");
    assert!(fleet_retransmissions(&sim) > 0, "GE loss must force retransmissions");
}

/// Scenario 2 — a hard partition of the management network that heals.
/// Reports queue behind partition-aware backoff and drain promptly after
/// the heal; no event disappears.
#[test]
fn mgmt_partition_heals_and_reports_resume() {
    // From t=0: the first reports (new-flow path changes, early drops) are
    // guaranteed to be attempted inside the partition and retried across
    // the heal.
    let partition = Window { start_ns: 0, end_ns: 2 * MILLIS };
    let faults =
        FaultPlan { seed: seed(0xBEEF), mgmt_partitions: vec![partition], ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let ledger = fleet_ledger(&sim);
    assert!(ledger.delivered > 0);
    assert_eq!(ledger.missing(), 0, "zero silent loss across the partition");
    // Sends attempted inside the window retried; delivery resumed after.
    // Consumed through the collector's subscription API: ingest the fleet
    // history, then drain the ordered stream like any other subscriber.
    let mut collector = Collector::new();
    let sub = collector.subscribe();
    collector.ingest(&delivered_history(&sim));
    let drained = collector.drain_ordered(sub);
    assert_eq!(drained.len(), collector.len(), "one drain sees the full store");
    assert!(
        drained.iter().any(|e| e.time_ns >= partition.end_ns),
        "reports must resume after the partition heals"
    );
    assert!(fleet_retransmissions(&sim) > 0, "sends during the partition must have retried");
}

/// Scenario 3 — each of the three redundant loss-notification copies can
/// die independently. Survival of any one copy suffices: the upstream ring
/// still recovers every victim flow while the dropped copies are counted.
#[test]
fn notification_copy_loss_survived_by_redundancy() {
    let faults = FaultPlan {
        seed: seed(0x5EED),
        notification_loss: LossProcess::Bernoulli { p: 0.35 },
        ..FaultPlan::default()
    };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    for s in 0..4 {
        add_flow(&mut sim, &ft, s, 4 + s, 1000 + s as u16, 1_000_000);
    }
    // Burst drops on both uplinks of two ToRs: several distinct gaps, each
    // announced by three redundant notification copies.
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
                Some(BurstDrop { at_ns: 50_000, count: 4, corrupt: false });
        }
    }
    sim.run_until(100 * MILLIS);

    assert!(fleet_notification_drops(&sim) > 0, "the loss process must actually eat copies");
    let gt = sim.gt.flow_events(EventType::InterSwitchDrop);
    assert!(!gt.is_empty(), "bursts must produce inter-switch drops");
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::InterSwitchDrop);
    for fe in &gt {
        assert!(seen.contains(fe), "redundancy failed to cover {fe:?}");
    }
    assert_eq!(fleet_ledger(&sim).missing(), 0);
}

/// Scenario 4 — switch-CPU overload. The overload controller sheds batches
/// instead of queueing unboundedly, and every shed event is counted.
#[test]
fn cpu_overload_sheds_and_counts() {
    let faults = FaultPlan {
        seed: seed(0xFEED),
        cpu_overload: vec![OverloadWindow {
            window: Window { start_ns: 0, end_ns: 100 * MILLIS },
            factor: 5_000.0,
        }],
        ..FaultPlan::default()
    };
    let cfg = NetSeerConfig {
        faults,
        cpu_max_backlog_ns: 200 * MICROS,
        // An event storm (no in-pipeline aggregation) against a crippled
        // CPU: the overload controller must engage.
        enable_dedup: false,
        ..NetSeerConfig::default()
    };
    let (mut sim, ft) = setup(cfg);
    drive_lossy_fabric(&mut sim, &ft, 0.05);
    sim.run_until(30 * MILLIS);

    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0);
    assert!(
        ledger.shed_cpu_overload > 0,
        "overload controller must shed under a 5000x slowdown: {ledger:?}"
    );
    assert_eq!(ledger.missing(), 0, "shed events are counted, not lost");
}

/// Scenario 5 — CEBP recirculation and PCIe stall windows. Batches park
/// during the stalls and flow again afterwards; accounting stays exact.
#[test]
fn cebp_and_pcie_stalls_delay_but_never_lose() {
    let faults = FaultPlan {
        seed: seed(0xD1CE),
        cebp_stalls: vec![Window { start_ns: MILLIS, end_ns: 3 * MILLIS }],
        pcie_stalls: vec![Window { start_ns: 2 * MILLIS, end_ns: 5 * MILLIS }],
        ..FaultPlan::default()
    };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let ledger = fleet_ledger(&sim);
    assert!(ledger.delivered > 0, "stalls must only delay, not stop, delivery");
    assert_eq!(ledger.missing(), 0);
}

/// The reproducibility contract: identical seed + plan ⇒ identical run,
/// down to the ledger, the event store, and the bytes on the wire.
#[test]
fn same_seed_reproduces_the_same_chaos() {
    let run = |seed: u64| {
        let faults = FaultPlan {
            seed,
            mgmt_loss: LossProcess::GilbertElliott {
                p_enter_bad: 0.2,
                p_exit_bad: 0.2,
                loss_good: 0.05,
                loss_bad: 0.95,
            },
            notification_loss: LossProcess::Bernoulli { p: 0.2 },
            mgmt_partitions: vec![Window { start_ns: 2 * MILLIS, end_ns: 3 * MILLIS }],
            ..FaultPlan::default()
        };
        let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
        drive_lossy_fabric(&mut sim, &ft, 0.02);
        sim.run_until(20 * MILLIS);
        let ledger = fleet_ledger(&sim);
        let retx = fleet_retransmissions(&sim);
        let notif = fleet_notification_drops(&sim);
        let store = collect_events(&mut sim);
        (ledger, retx, notif, store.len(), sim.mgmt.total_bytes())
    };
    let a = run(42);
    assert_eq!(a, run(42), "same seed must reproduce bit-for-bit");
    assert!(a != run(43), "different seeds should perturb the run (got identical outcomes)");
}

/// Seeded crash schedule used by the crash-recovery scenarios: every
/// switch CPU dies once inside [2 ms, 10 ms) and restarts 500 µs later.
fn crash_schedule(s: u64, sim: &Simulator, kind: CrashKind) -> Vec<netseer::DeviceCrash> {
    seeded_device_crashes(
        s,
        &sim.switch_ids(),
        Window { start_ns: 2 * MILLIS, end_ns: 10 * MILLIS },
        500 * MICROS,
        kind,
    )
}

/// Scenario 6 — every switch CPU stops cleanly once, mid-run. A clean
/// stop checkpoints on the way down, so recovery is literally lossless:
/// `lost_to_crash == 0` fleet-wide and the ledger still balances.
#[test]
fn clean_restart_of_every_switch_cpu_is_lossless() {
    let faults = FaultPlan { seed: seed(0xCAFE), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let crashes = crash_schedule(seed(0xCAFE), &sim, CrashKind::Clean);
    let n_switches = crashes.len();
    let log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    assert_eq!(log.len(), n_switches, "every switch CPU must restart exactly once");
    assert_eq!(log.total_lost(), 0, "clean stops are lossless");
    assert!(log.reports().iter().all(|r| r.epoch >= 1), "restart must bump the epoch");
    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0 && ledger.delivered > 0);
    assert_eq!(ledger.lost_to_crash, 0);
    assert_eq!(ledger.missing(), 0, "zero silent loss across fleet-wide restarts");
}

/// Scenario 7 — every switch CPU is hard-killed once (the un-fsynced WAL
/// tail dies with it). The ledger extends rather than breaks:
/// `generated == delivered + shed + pending + lost_to_crash`, with the
/// loss provably bounded by the un-checkpointed window on each device.
#[test]
fn hard_kill_of_every_switch_cpu_bounds_the_loss() {
    let faults = FaultPlan { seed: seed(0xDEAD), ..FaultPlan::default() };
    // A short checkpoint cadence keeps the exposure window tight.
    let cfg = NetSeerConfig { faults, checkpoint_interval_ns: MILLIS, ..NetSeerConfig::default() };
    let (mut sim, ft) = setup(cfg);
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let crashes = crash_schedule(seed(0xDEAD), &sim, CrashKind::Hard);
    let n_switches = crashes.len();
    let log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    assert_eq!(log.len(), n_switches, "every switch CPU must restart exactly once");
    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0 && ledger.delivered > 0);
    assert_eq!(
        ledger.lost_to_crash,
        log.total_lost(),
        "the fleet ledger's crash loss must equal the per-restart accounting"
    );
    // The bound: each kill destroys at most what arrived since that
    // device's last checkpoint — never the whole pending set, and every
    // report says so explicitly.
    for r in log.reports() {
        assert!(r.lost <= r.pending_at_kill, "{r:?}");
        assert_eq!(r.replayed + r.lost, r.pending_at_kill, "{r:?}");
    }
    assert_eq!(ledger.missing(), 0, "hard kills must be accounted, not silent");
}

/// Scenario 8 — restart discontinuities are not loss. With crashes but NO
/// link faults, any inter-switch gap would be a false positive from the
/// post-restart sequence discontinuity; the neighbor re-base must keep the
/// count at zero while the counters themselves survive the restarts.
#[test]
fn restart_discontinuity_is_not_counted_as_loss() {
    let faults = FaultPlan { seed: seed(0xAB1E), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    // Clean fabric: no drops at all.
    drive_lossy_fabric(&mut sim, &ft, 0.0);
    let crashes = crash_schedule(seed(0xAB1E), &sim, CrashKind::Hard);
    let log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    assert!(!log.is_empty());
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    let gaps: u64 = ids.iter().map(|&id| monitor_of(&sim, id).gaps_detected()).sum();
    assert_eq!(gaps, 0, "restart discontinuities must not be charged as loss bursts");
    assert_eq!(fleet_ledger(&sim).missing(), 0);
}

/// Scenario 9 — one hard collector kill mid-run. Senders keep their
/// delivered history; after the collector reverts to its checkpoint, the
/// reconnect handshake retransmits the uncovered suffix and the
/// `(device, epoch, seq)` gates dedup the rest: exactly-once end to end,
/// even with every switch CPU also restarting during the run.
#[test]
fn collector_hard_kill_reconciles_to_exactly_once() {
    let faults = FaultPlan { seed: seed(0xFA11), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let crashes = crash_schedule(seed(0xFA11), &sim, CrashKind::Hard);
    let _log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    // Every sender's delivered history, fleet-wide.
    let deliveries: Vec<netseer::StoredEvent> = delivered_history(&sim);
    assert!(!deliveries.is_empty());

    // Place the checkpoint at the median delivery and the kill after the
    // last one, so the revert window is guaranteed non-empty whatever the
    // seed does to the delivery timeline.
    let mut times: Vec<u64> = deliveries.iter().map(|e| e.time_ns).collect();
    times.sort_unstable();
    let t_mid = times[times.len() / 2];
    let t_crash = *times.last().unwrap() + 1;

    let crash = netseer::CollectorCrash { at_ns: t_crash, kind: CrashKind::Hard };
    let mut collector = Collector::new();
    // Give the hard kill a checkpoint to revert to (mid-run durability).
    let mid: Vec<netseer::StoredEvent> =
        deliveries.iter().filter(|e| e.time_ns < t_mid).copied().collect();
    collector.ingest(&mid);
    collector.checkpoint();
    let reverted = netseer::run_collector_crash_drill(&mut collector, &deliveries, &[crash]);

    assert!(reverted > 0, "the hard kill must actually revert ingested work");
    assert_eq!(collector.len(), deliveries.len(), "exactly-once after reconciliation");
    assert!(collector.duplicates_rejected() > 0, "reconciliation must have deduped");
}

/// Scenario 10 — the analytics engine rides through a hard collector
/// kill. The engine checkpoints *with* the collector (store, gates, and
/// subscription cursor together), so the coordinated revert rewinds both
/// sides to the same instant; sender reconciliation then replays exactly
/// the reverted suffix. The extended analytics ledger identity
/// `ingested == aggregated + sketch_absorbed + shed_analytics` must hold
/// before the kill, after the revert, and after reconciliation — and the
/// engine's final state must equal a crash-free reference run's.
#[test]
fn analytics_engine_survives_collector_hard_kill() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};

    let faults = FaultPlan { seed: seed(0xA11A), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let deliveries = delivered_history(&sim);
    assert!(!deliveries.is_empty());
    let links = link_map_from_sim(&sim);

    // Crash-free reference: one collector, one engine, whole history.
    let mut ref_collector = Collector::new();
    let mut reference = AnalyticsEngine::new(AnalyticsConfig::default(), links.clone());
    reference.attach(&mut ref_collector);
    ref_collector.ingest(&deliveries);
    reference.poll(&mut ref_collector);

    // Crashed run: ingest half, coordinated checkpoint, ingest the rest,
    // hard kill, then sender reconciliation re-offers everything.
    let mut collector = Collector::new();
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), links);
    engine.attach(&mut collector);
    let half = deliveries.len() / 2;
    collector.ingest(&deliveries[..half]);
    engine.poll(&mut collector);
    engine.ledger().assert_balanced();
    engine.checkpoint(&mut collector);
    collector.ingest(&deliveries[half..]);
    engine.poll(&mut collector);
    engine.ledger().assert_balanced();
    let processed_before = engine.processed;

    let rolled_back = engine.crash_restart(CrashKind::Hard, &mut collector);
    assert!(rolled_back > 0, "the kill must revert analytics work");
    engine.ledger().assert_balanced();
    assert_eq!(engine.ledger().ingested, engine.processed);

    collector.ingest(&deliveries); // at-least-once reconciliation
    engine.poll(&mut collector);

    assert_eq!(engine.processed, processed_before, "exactly-once across the kill");
    let ledger = engine.ledger();
    ledger.assert_balanced();
    assert_eq!(ledger, reference.ledger(), "crashed run must converge to the reference");
    assert_eq!(
        engine.top_flows(32),
        reference.top_flows(32),
        "top-k must be unaffected by the crash"
    );
    assert_eq!(engine.totals(), reference.totals(), "window totals must converge");
    assert!(collector.duplicates_rejected() > 0, "reconciliation must have deduped");
}

/// Scenario 11 — a bit-flip storm: one pod's uplinks deliver damaged
/// frames *past* the FCS (the residual-corruption model) while every
/// monitor's CEBP reports and loss notifications take byte damage at
/// 1e-3/byte. Nothing may panic; CRC trailers catch what the FCS missed;
/// the implicit-NACK retransmit loop keeps delivery flowing; and the
/// extended ledger identity (with the `corrupted` term) balances.
#[test]
fn bit_flip_storm_is_detected_and_accounted() {
    let faults = FaultPlan {
        seed: seed(0xB17F),
        cebp_corruption: CorruptionSpec::bit_flips(1e-3),
        notification_corruption: CorruptionSpec::bit_flips(1e-3),
        ..FaultPlan::default()
    };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    // The storm: both uplinks of pod 0's first ToR corrupt 5% of frames,
    // and the damage escapes the FCS, so downstream parsers face garbage.
    let tor = ft.edges[0][0];
    for port in 0..2 {
        let dir = sim.link_direction_mut(tor, port).unwrap();
        dir.faults.corrupt_prob = 0.05;
        dir.faults.corrupt_bytes = Some(CorruptionSpec::bit_flips(1e-3));
    }
    sim.run_until(30 * MILLIS);

    let mutated: u64 = (0..2).map(|p| sim.link_direction_mut(tor, p).unwrap().frames_mutated).sum();
    assert!(mutated > 0, "the storm must actually damage delivered frames");
    let crc_failures: u64 =
        sim.switch_ids().into_iter().map(|id| monitor_of(&sim, id).cebp_crc_failures).sum();
    assert!(crc_failures > 0, "CEBP CRC trailers must catch damage (implicit NACKs)");
    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0 && ledger.delivered > 0, "delivery must survive the storm");
    assert_eq!(ledger.missing(), 0, "corruption must be counted, never silent: {ledger:?}");
}

/// Scenario 12 — torn WAL writes: every switch CPU is hard-killed once
/// while its un-fsynced WAL tail is damaged mid-flush (bit flips +
/// truncation). Replay keeps each log's longest CRC-valid record prefix,
/// the loss accounting stays exact, and the collector + analytics side
/// converges to a crash-free reference over the same delivered history.
#[test]
fn torn_wal_restart_converges_to_reference() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};

    let faults = FaultPlan {
        seed: seed(0x7047),
        torn_wal: CorruptionSpec { flip_per_byte: 0.25, truncate_prob: 0.5, duplicate_prob: 0.0 },
        ..FaultPlan::default()
    };
    let cfg = NetSeerConfig { faults, checkpoint_interval_ns: MILLIS, ..NetSeerConfig::default() };
    let (mut sim, ft) = setup(cfg);
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let crashes = crash_schedule(seed(0x7047), &sim, CrashKind::Hard);
    let n_switches = crashes.len();
    let log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    assert_eq!(log.len(), n_switches, "every switch CPU must restart exactly once");
    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0 && ledger.delivered > 0);
    assert_eq!(ledger.lost_to_crash, log.total_lost());
    assert_eq!(ledger.missing(), 0, "torn tails must be counted, never silent");
    for r in log.reports() {
        assert_eq!(r.replayed + r.lost, r.pending_at_kill, "{r:?}");
    }

    // The analytics side must not care that the fleet's WALs tore: over
    // the same delivered history, a collector+engine that hard-crashes
    // mid-ingest and reconciles converges bit-for-bit to a crash-free one.
    let deliveries = delivered_history(&sim);
    assert!(!deliveries.is_empty());
    let links = link_map_from_sim(&sim);
    let mut ref_collector = Collector::new();
    let mut reference = AnalyticsEngine::new(AnalyticsConfig::default(), links.clone());
    reference.attach(&mut ref_collector);
    ref_collector.ingest(&deliveries);
    reference.poll(&mut ref_collector);

    let mut collector = Collector::new();
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), links);
    engine.attach(&mut collector);
    let half = deliveries.len() / 2;
    collector.ingest(&deliveries[..half]);
    engine.poll(&mut collector);
    engine.checkpoint(&mut collector);
    collector.ingest(&deliveries[half..]);
    engine.poll(&mut collector);
    engine.crash_restart(CrashKind::Hard, &mut collector);
    collector.ingest(&deliveries);
    engine.poll(&mut collector);
    assert_eq!(engine.ledger(), reference.ledger(), "must converge to the crash-free reference");
    assert_eq!(engine.totals(), reference.totals());
}

/// Scenario 13 — a wedged switch CPU: the control loop hangs (heartbeat
/// frozen, batches shedding, no checkpoints) without dying. The watchdog
/// declares it suspect after two silent checks, hard-kills it, and
/// restarts it through the normal recovery path; healthy monitors are
/// never touched, the ledger balances, and the collector converges to a
/// crash-free reference over the delivered history.
#[test]
fn watchdog_restarts_wedged_monitor() {
    let faults = FaultPlan { seed: seed(0xD06), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let switches = sim.switch_ids();
    // Two victims wedge mid-run, off the watchdog's check cadence.
    let victims = [switches[0], switches[switches.len() / 2]];
    for (i, &v) in victims.iter().enumerate() {
        schedule_wedge(&mut sim, v, 3 * MILLIS + 100 * MICROS * (i as u64 + 1));
    }
    let wd_cfg = WatchdogConfig {
        check_interval_ns: 500 * MICROS,
        missed_beats: 2,
        restart_delay_ns: 200 * MICROS,
        ..WatchdogConfig::default()
    };
    let log = schedule_watchdog(&mut sim, &switches, wd_cfg, 30 * MILLIS);
    sim.run_until(30 * MILLIS);

    let incidents = log.incidents();
    assert_eq!(incidents.len(), 2, "exactly the wedged monitors are suspect: {incidents:?}");
    let mut suspects: Vec<u32> = incidents.iter().map(|i| i.device).collect();
    suspects.sort_unstable();
    let mut expect = victims.to_vec();
    expect.sort_unstable();
    assert_eq!(suspects, expect, "no healthy monitor may be declared suspect");
    let restarts = log.restarts();
    assert_eq!(restarts.len(), 2, "every suspect must be restarted");
    assert!(restarts.iter().all(|r| r.kind == CrashKind::Hard && r.epoch >= 1));
    for &v in &victims {
        let m = monitor_of(&sim, v);
        assert!(!m.is_wedged(), "the restart must un-wedge");
        assert!(m.heartbeat > 0);
    }
    let ledger = fleet_ledger(&sim);
    assert!(ledger.generated > 0 && ledger.delivered > 0);
    assert_eq!(ledger.missing(), 0, "supervision must keep accounting exact: {ledger:?}");

    // Convergence: the collector over this run's delivered history, with a
    // mid-stream hard kill + reconciliation, equals a crash-free one.
    let deliveries = delivered_history(&sim);
    assert!(!deliveries.is_empty());
    let mut reference = Collector::new();
    reference.ingest(&deliveries);
    let mut collector = Collector::new();
    let half = deliveries.len() / 2;
    collector.ingest(&deliveries[..half]);
    collector.checkpoint();
    collector.ingest(&deliveries[half..]);
    collector.crash_restart(CrashKind::Hard);
    collector.ingest(&deliveries);
    assert_eq!(collector.len(), reference.len(), "exactly-once after the wedge incident");
    assert_eq!(
        collector.store().events(),
        reference.store().events(),
        "the store must converge bit-for-bit to the crash-free reference"
    );
}

/// Scenario 14 — burst overload spills to bounded disk, then drains: the
/// whole delivered history lands in one burst on a collector whose memory
/// watermark is tiny. The overflow parks in the spill instead of being
/// shed (`shed == 0`), the fleet identity extends with the `buffered`
/// term while events sit on disk, and polling the engine applies every
/// spilled event exactly once before deletion-after-ack reclaims the
/// segments.
#[test]
fn burst_overload_spills_then_drains_without_shedding() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};

    let faults = FaultPlan { seed: seed(0x5B11), ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let deliveries = delivered_history(&sim);
    assert!(deliveries.len() > 16, "the workload must out-run the watermark");

    // Tiny watermark + small segments: the burst must spill and rotate.
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 16,
        spill_segment_bytes: 1024,
        ..CollectorConfig::default()
    });
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), link_map_from_sim(&sim));
    engine.attach(&mut collector);
    collector.ingest(&deliveries);
    assert!(collector.spilled > 0, "the burst must overflow the watermark into the spill");
    assert!(collector.buffered() > 0, "spilled events are buffered, not dropped");
    assert_eq!(collector.overflow_refused, 0, "bounded disk absorbs the burst: shed == 0");
    assert!(collector.spill().rotations > 0, "small segments must rotate under the burst");

    // The fleet identity extends with `buffered` while the spill holds
    // events the collector has not yet applied.
    let mut ledger = fleet_ledger(&sim);
    collector.refine_fleet_ledger(&mut ledger);
    assert!(ledger.buffered > 0, "the identity must expose the spill occupancy");
    assert_eq!(ledger.missing(), 0, "identity holds mid-spill: {ledger:?}");

    // Draining restores the memory-only identity: exactly-once through
    // the spill, and the acked segments are deleted.
    engine.poll(&mut collector);
    assert_eq!(collector.buffered(), 0, "polling must drain the spill to quiescence");
    assert_eq!(collector.len(), deliveries.len(), "exactly-once through the spill");
    collector.checkpoint();
    assert!(collector.spill().acked_segments > 0, "ack must delete consumed segments");
    let mut ledger = fleet_ledger(&sim);
    collector.refine_fleet_ledger(&mut ledger);
    assert_eq!(ledger.buffered, 0);
    assert_eq!(ledger.missing(), 0);
    engine.ledger().assert_balanced();
    assert_eq!(engine.ledger().ingested, deliveries.len() as u64);
}

/// Scenario 15 — a hard kill lands mid-spill and the un-fsynced tail of
/// the open segment is torn (bit flips + truncation). Restart keeps the
/// longest CRC-valid prefix, rewinds the volatile read cursor to the
/// durable one, and sender reconciliation re-offers the history; the
/// epoch/seq gates (which revert *with* the spill) dedup the overlap, so
/// the collector and analytics converge bit-for-bit to a crash-free
/// reference over the same delivered history.
#[test]
fn hard_kill_mid_spill_with_torn_tail_converges_to_reference() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};

    let base = seed(0x7054);
    let faults = FaultPlan { seed: base, ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    sim.run_until(30 * MILLIS);

    let deliveries = delivered_history(&sim);
    let half = deliveries.len() / 2;
    assert!(deliveries.len() - half > 16, "the tail must out-run the watermark");
    let links = link_map_from_sim(&sim);

    // Crash-free reference over the same history.
    let mut ref_collector = Collector::new();
    let mut reference = AnalyticsEngine::new(AnalyticsConfig::default(), links.clone());
    reference.attach(&mut ref_collector);
    ref_collector.ingest(&deliveries);
    reference.poll(&mut ref_collector);

    // Crashed run: tight watermark, torn-tail damage armed on its own
    // RNG stream so the rest of the run is byte-identical either way.
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 16,
        ..CollectorConfig::default()
    });
    let spec = CorruptionSpec { flip_per_byte: 0.25, truncate_prob: 0.5, duplicate_prob: 0.0 };
    collector.set_torn_spill(CorruptionGen::new(spec, base, streams::SPILL_CORRUPT));
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), links);
    engine.attach(&mut collector);

    collector.ingest(&deliveries[..half]);
    engine.poll(&mut collector);
    engine.checkpoint(&mut collector); // commits the durable spill cursor
    collector.ingest(&deliveries[half..]); // parks past the watermark, un-fsynced
    assert!(collector.buffered() > 0, "the kill must land mid-spill");

    engine.crash_restart(CrashKind::Hard, &mut collector);
    assert_eq!(collector.spill().crashes, 1);
    assert!(
        collector.spill().torn_records > 0,
        "the armed tear must destroy part of the un-fsynced tail"
    );
    // Whatever survived the tear sits at or past the durable cursor.
    assert!(collector.spill().read_cursor() == collector.spill().durable_cursor());

    collector.ingest(&deliveries); // at-least-once reconciliation
    engine.poll(&mut collector);
    assert_eq!(collector.buffered(), 0, "reconciliation must drain the spill");
    assert_eq!(collector.len(), deliveries.len(), "exactly-once across the torn spill");
    assert!(collector.duplicates_rejected() > 0, "reconciliation must have deduped");
    assert_eq!(engine.ledger(), reference.ledger(), "must converge to the crash-free run");
    assert_eq!(engine.totals(), reference.totals(), "window totals must converge");
    assert_eq!(engine.top_flows(32), reference.top_flows(32), "top-k must converge");
}

/// Scenario 16 — sustained collector pressure widens the flush interval:
/// monitors signalled a backpressure level force partial batches out only
/// every `2^level` timer ticks (capped by `backpressure_max_widen`), so
/// the fabric sends fewer partial CEBPs while full batches still flow.
/// Accounting stays exact, and a runaway level clamps to the same stride
/// as a moderate one — bit-for-bit.
#[test]
fn backpressure_widens_flush_intervals_deterministically() {
    let run = |level: u32| {
        let faults = FaultPlan { seed: seed(0xBAC4), ..FaultPlan::default() };
        let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
        drive_lossy_fabric(&mut sim, &ft, 0.02);
        sim.run_until(5 * MILLIS);
        // The collector's pressure signal reaches every switch monitor
        // (piggybacked on transport ACKs in a real deployment).
        for id in sim.switch_ids() {
            monitor_of_mut(&mut sim, id).set_backpressure(level);
        }
        sim.run_until(30 * MILLIS);
        let skipped: u64 =
            sim.switch_ids().iter().map(|&id| monitor_of(&sim, id).batcher.flushes_skipped).sum();
        let batches: u64 =
            sim.switch_ids().iter().map(|&id| monitor_of(&sim, id).batcher.delivered_batches).sum();
        (fleet_ledger(&sim), skipped, batches)
    };

    let (quiet, skipped_quiet, batches_quiet) = run(0);
    assert_eq!(skipped_quiet, 0, "level 0 never skips a flush");
    assert_eq!(quiet.missing(), 0);

    let (pressured, skipped_wide, batches_wide) = run(3);
    assert!(skipped_wide > 0, "level 3 must skip partial flushes");
    assert!(batches_wide <= batches_quiet, "widening cannot increase the batch count");
    assert_eq!(pressured.missing(), 0, "widened batching must not lose accounting");
    assert!(pressured.generated > 0 && pressured.delivered > 0);

    // 2^3 == 8 meets the default cap of 8, and a runaway level clamps to
    // the very same stride: the two runs must be identical.
    let clamped = run(u32::MAX);
    assert_eq!(
        (pressured, skipped_wide, batches_wide),
        clamped,
        "the widen cap must bound a runaway signal"
    );
}

/// Scenario 17 — a hostile NetFlow/IPFIX exporter storms the collector's
/// wire socket: template floods, count and length lies,
/// data-before-template, reserved sets, raw garbage, and seeded byte
/// corruption layered on top — against a collector with a tight watermark
/// and a tiny spill budget so the whole admission ladder engages. The
/// contract: no panic anywhere, the template cache stays inside its
/// configured bound, every rejected datagram is quarantined and counted
/// under exactly one reason, and the extended ledger identity — now with
/// the `malformed` term — holds exactly.
#[test]
fn hostile_exporter_storm_stays_bounded_and_accounted() {
    use fet_netsim::{HostileExporter, HostileExporterConfig};
    use netseer::{WireConfig, WireIngest};

    let mut exporter = HostileExporter::new(HostileExporterConfig {
        seed: seed(0x3117),
        hostility: 0.5,
        corruption: CorruptionSpec {
            flip_per_byte: 2e-3,
            truncate_prob: 0.05,
            duplicate_prob: 0.02,
        },
        ..HostileExporterConfig::default()
    });
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 32,
        max_spill_bytes: 8 * 1024,
        spill_segment_bytes: 1024,
        ..CollectorConfig::default()
    });
    // A subscriber that never drains: the watermark binds, the storm
    // spills, and the small byte budget forces real shed.
    collector.subscribe();
    let mut wire = WireIngest::new(WireConfig::default());

    let mut sent = 0u64;
    for tick in 0..800u64 {
        let now = tick * 10 * MICROS;
        if let Some(datagram) = exporter.emit() {
            sent += 1;
            wire.ingest_datagram(&mut collector, &datagram, now);
        }
        if tick % 128 == 0 {
            wire.sweep_templates(now);
        }
    }
    assert!(sent > 0 && exporter.attacks > 0, "the storm must mix honest and hostile traffic");

    // The template cache survived the floods inside its configured bounds.
    let cache = wire.session().cache();
    assert!(cache.max_domain_len() <= cache.config().max_templates);
    assert!(cache.domain_count() <= cache.config().max_domains);

    // Every datagram got exactly one disposition; every fatal reject is
    // counted under exactly one reason and offered to quarantine.
    let stats = wire.session().stats();
    assert_eq!(stats.datagrams, sent);
    assert_eq!(stats.accepted + stats.rejected, sent);
    assert_eq!(wire.rejects_by_reason().iter().sum::<u64>(), wire.rejected_datagrams());
    assert!(wire.rejected_datagrams() > 0, "hostility 0.5 must produce fatal rejects");
    assert!(
        wire.rejects_by_reason().iter().filter(|&&c| c > 0).count() >= 3,
        "the attack mix must exercise several reject reasons: {:?}",
        wire.rejects_by_reason()
    );
    assert_eq!(collector.poison_seen, wire.rejected_datagrams());
    assert!(!collector.quarantine().is_empty());
    assert!(collector.quarantine().iter().all(|p| p.reason.starts_with("wire:")));

    // The extended identity holds exactly, with every term engaged.
    let ledger = wire.ledger(&collector);
    ledger.assert_balanced();
    assert!(ledger.malformed > 0, "count lies and missing templates must book malformed");
    assert!(ledger.buffered > 0, "the watermark must divert the storm into the spill");
    assert!(ledger.shed_cpu_overload > 0, "the exhausted spill budget must refuse");
    assert_eq!(
        ledger.generated,
        ledger.delivered + ledger.shed_cpu_overload + ledger.buffered + ledger.malformed,
        "extended identity must hold exactly: {ledger:?}"
    );

    // Upstream datagram drops surface as sequence gaps. (No ceiling check
    // here: byte corruption can also mangle sequence numbers, so under a
    // storm the gap signal is an estimate, not ground truth — the
    // corruption-free ceiling is pinned by the exporter's own tests.)
    assert!(exporter.dropped_upstream > 0, "drop_prob must eat datagrams");
    let detected: u64 = wire.upstream_losses().iter().map(|l| l.lost).sum();
    assert!(detected > 0, "sequence gaps must surface the upstream loss");
}

/// Scenario 18 — a fleet-wide clock storm: every device's clock takes a
/// seeded offset, drift, and periodic steps while global time stays the
/// ordering authority. The contract:
///
/// * the storm changes event *stamps* and nothing else — the same seed
///   with clocks disabled generates the identical event set;
/// * the watchdog records real skew but raises zero incidents (liveness
///   is counter-primary, so wrong clocks can never look like death);
/// * event-time analytics with a lateness bound covering the fleet's
///   worst skew converge exactly to the zero-skew arrival-time reference,
///   with zero late shed; a deliberately tight bound sheds late events
///   *with account* — the extended identity holds either way;
/// * the wire edge under exporter clock lies keeps its own extended
///   identity exact, with every lie booked and every stamp clamped.
#[test]
fn clock_storm_converges_within_watermark_bounds() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine, LinkMap};
    use fet_netsim::{HostileExporter, HostileExporterConfig};
    use netseer::faults::ClockSpec;
    use netseer::{WireConfig, WireIngest};
    use std::collections::BTreeMap;

    const HORIZON: u64 = 30 * MILLIS;
    let spec = ClockSpec {
        offset_ns: 200 * MICROS,
        drift_ppm: 500,
        step_every_ns: 5 * MILLIS,
        step_ns: 50 * MICROS,
        ..ClockSpec::none()
    };

    let run = |clock: ClockSpec| {
        let faults = FaultPlan { seed: seed(0xC10C), clock, ..FaultPlan::default() };
        let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
        drive_lossy_fabric(&mut sim, &ft, 0.02);
        let switches = sim.switch_ids();
        // A tolerance below the storm's skew: drift gets *flagged*, and
        // flagging must be the only consequence.
        let wd_cfg = WatchdogConfig {
            check_interval_ns: 500 * MICROS,
            missed_beats: 2,
            restart_delay_ns: 200 * MICROS,
            drift_tolerance_ns: 100 * MICROS,
        };
        let log = schedule_watchdog(&mut sim, &switches, wd_cfg, HORIZON);
        sim.run_until(HORIZON);
        let ledger = fleet_ledger(&sim);
        let history = delivered_history(&sim);
        let links = link_map_from_sim(&sim);
        (ledger, history, links, log)
    };

    let (ledger, history, links, log) = run(spec);
    let (ref_ledger, ref_history, _, ref_log) = run(ClockSpec::none());

    // Zero watchdog false positives under the storm — but the skew was
    // really there and really seen.
    assert!(log.incidents().is_empty(), "clock skew must never read as death");
    assert!(ref_log.incidents().is_empty());
    assert!(log.max_abs_skew_ns() > 0, "the watchdog must observe the storm's skew");
    assert!(log.drift_flagged() > 0, "skew above the tolerance must be flagged");
    assert_eq!(ref_log.max_abs_skew_ns(), 0, "identity clocks have zero skew");

    // The storm perturbs stamps only: identical ledgers, identical event
    // identities, different times.
    assert!(ledger.generated > 0 && ledger.delivered > 0);
    assert_eq!(ledger, ref_ledger, "clock faults must not change what happens, only when-stamps");
    assert_eq!(history.len(), ref_history.len());
    let key = |e: &netseer::StoredEvent| (e.device, e.epoch, e.seq);
    let ids: std::collections::BTreeSet<_> = history.iter().map(key).collect();
    let ref_ids: std::collections::BTreeSet<_> = ref_history.iter().map(key).collect();
    assert_eq!(ids, ref_ids, "the delivered event set must be identical");
    assert!(
        history.iter().zip(ref_history.iter()).any(|(a, b)| a.time_ns != b.time_ns),
        "the storm must actually skew some stamps"
    );

    // Reconstruct true arrival order from the reference run (identity
    // clocks: stamp == global time), then feed the skewed history in that
    // order — genuinely out-of-order event-time input.
    let arrival: BTreeMap<(u32, u32, u64), u64> =
        ref_history.iter().map(|e| (key(e), e.time_ns)).collect();
    let mut storm_feed = history.clone();
    storm_feed.sort_by_key(|e| (arrival[&key(e)], e.device, e.seq));
    assert!(
        storm_feed.windows(2).any(|w| w[0].time_ns > w[1].time_ns),
        "arrival order must invert some skewed stamps (else the buffer is untested)"
    );

    let engine_over = |events: &[netseer::StoredEvent], cfg: AnalyticsConfig, links: LinkMap| {
        let mut collector = Collector::new();
        let mut engine = AnalyticsEngine::new(cfg, links);
        engine.attach(&mut collector);
        collector.ingest(events);
        engine.poll(&mut collector);
        engine.flush();
        engine
    };

    // Generous bound (covers any two stamps' relative skew): exact
    // convergence to the arrival-time reference, nothing late.
    let bound = 2 * spec.max_abs_skew_ns(HORIZON) + 10 * MICROS;
    let event_time = AnalyticsConfig {
        lateness_bound_ns: bound,
        reorder_cap: 8192,
        ..AnalyticsConfig::default()
    };
    let storm_engine = engine_over(&storm_feed, event_time, links.clone());
    let reference = engine_over(&ref_history, AnalyticsConfig::default(), links.clone());
    let sl = storm_engine.ledger();
    sl.assert_balanced();
    assert_eq!(sl.late_shed, 0, "a bound covering the worst skew sheds nothing");
    assert_eq!(sl.pending_reorder, 0, "flush must drain the reorder buffers");
    assert_eq!(sl.ingested, reference.ledger().ingested);
    assert_eq!(
        storm_engine.totals(),
        reference.totals(),
        "event-time analytics must converge to the zero-skew reference"
    );

    // Tight bound: deep-late events are shed — visibly, with the extended
    // identity (ingested == aggregated + sketch + shed + late_shed +
    // pending) still exact.
    let tight = AnalyticsConfig {
        lateness_bound_ns: 10 * MICROS,
        reorder_cap: 64,
        ..AnalyticsConfig::default()
    };
    let tight_engine = engine_over(&storm_feed, tight, links);
    let tl = tight_engine.ledger();
    tl.assert_balanced();
    assert!(tl.late_shed > 0, "a 10 µs bound under ~0.5 ms skew must shed late events");
    assert_eq!(tl.ingested, sl.ingested, "shedding is accounted, never silent");

    // The wire edge under the same storm's exporter clock lies: every
    // datagram disposed exactly once, every lie booked, stamps clamped,
    // and the extended wire identity exact.
    let mut exporter = HostileExporter::new(HostileExporterConfig {
        seed: seed(0xC10C),
        hostility: 0.2,
        clock_hostility: 0.3,
        corruption: CorruptionSpec { flip_per_byte: 1e-3, ..CorruptionSpec::none() },
        ..HostileExporterConfig::default()
    });
    let mut collector = Collector::new();
    let mut wire = WireIngest::new(WireConfig::default());
    let mut last_now = 0;
    for tick in 0..800u64 {
        last_now = tick * 10 * MICROS;
        if let Some(dg) = exporter.emit() {
            wire.ingest_datagram(&mut collector, &dg, last_now);
        }
    }
    assert!(exporter.clock_attacks > 0 && exporter.attacks > 0);
    let stats = wire.session().stats();
    assert_eq!(stats.accepted + stats.rejected, stats.datagrams);
    assert!(wire.clock_lies().iter().sum::<u64>() > 0, "clock lies must be booked");
    assert!(wire.clamped_stamps() > 0, "implausible stamps must clamp");
    // No stored stamp may outrun the collector's clock: lies were clamped.
    let newest = collector.store().events().iter().map(|e| e.time_ns).max().unwrap_or(0);
    assert!(newest <= last_now + 2_000_000_000, "stored stamps must stay near receive time");
    wire.ledger(&collector).assert_balanced();
}

/// Scenario 18b — drift does not mask death: with the same clock storm
/// running, a genuinely wedged monitor must still be caught (liveness is
/// the heartbeat *counter*, not the heartbeat *clock*), and only the
/// wedged one.
#[test]
fn wedged_monitor_is_still_caught_under_clock_drift() {
    use netseer::faults::ClockSpec;

    let spec = ClockSpec {
        offset_ns: 300 * MICROS,
        drift_ppm: 800,
        freeze_prob: 0.25,
        freeze_after_ns: 5 * MILLIS,
        ..ClockSpec::none()
    };
    let faults = FaultPlan { seed: seed(0xD1F7), clock: spec, ..FaultPlan::default() };
    let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
    drive_lossy_fabric(&mut sim, &ft, 0.02);
    let switches = sim.switch_ids();
    let victim = switches[1];
    schedule_wedge(&mut sim, victim, 3 * MILLIS);
    let wd_cfg = WatchdogConfig {
        check_interval_ns: 500 * MICROS,
        missed_beats: 2,
        restart_delay_ns: 200 * MICROS,
        ..WatchdogConfig::default()
    };
    let log = schedule_watchdog(&mut sim, &switches, wd_cfg, 30 * MILLIS);
    sim.run_until(30 * MILLIS);

    let incidents = log.incidents();
    assert_eq!(incidents.len(), 1, "exactly the wedged monitor: {incidents:?}");
    assert_eq!(incidents[0].device, victim);
    assert_eq!(log.restarts().len(), 1);
    assert!(!monitor_of(&sim, victim).is_wedged(), "the restart must un-wedge");
    assert!(log.max_abs_skew_ns() > 0, "the storm's skew must be visible alongside the catch");
    assert_eq!(fleet_ledger(&sim).missing(), 0);
}

/// Property: `ClockSpec::default()` plus a zero event-time config is
/// byte-identical to the pre-existing arrival-time pipeline — across a
/// seed sweep, the clock layer and the watermark machinery are exact
/// no-ops when disabled.
#[test]
fn zero_skew_zero_lateness_is_bit_identical_to_arrival_time() {
    use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};
    use netseer::faults::ClockSpec;

    for base in [0xA0u64, 0xA1, 0xA2] {
        let run = |clock: ClockSpec, cfg: AnalyticsConfig| {
            let faults = FaultPlan { seed: seed(base), clock, ..FaultPlan::default() };
            let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
            drive_lossy_fabric(&mut sim, &ft, 0.02);
            sim.run_until(12 * MILLIS);
            let history = delivered_history(&sim);
            let mut collector = Collector::new();
            let mut engine = AnalyticsEngine::new(cfg, link_map_from_sim(&sim));
            engine.attach(&mut collector);
            collector.ingest(&history);
            engine.poll(&mut collector);
            engine.flush();
            (history, fleet_ledger(&sim), engine.ledger(), engine.totals(), engine.top_flows(32))
        };
        let a = run(ClockSpec::default(), AnalyticsConfig::default());
        let b = run(ClockSpec::none(), AnalyticsConfig::default());
        assert_eq!(a, b, "seed {base:#x}: the default spec must be the identity");
        // Event-time config at (0, 0) is exact passthrough, so the whole
        // tuple — stamps included — must match byte-for-byte.
        let c = run(
            ClockSpec::none(),
            AnalyticsConfig { lateness_bound_ns: 0, reorder_cap: 0, ..AnalyticsConfig::default() },
        );
        assert_eq!(a, c, "seed {base:#x}: (0,0) event-time must be exact passthrough");
    }
}

/// The reproducibility contract extended to crash-recovery: the same seed
/// reproduces the same crash schedule, the same per-restart loss, and the
/// same final counters — twice.
#[test]
fn same_seed_reproduces_the_same_crashes() {
    let run = |base: u64| {
        let faults = FaultPlan { seed: base, ..FaultPlan::default() };
        let (mut sim, ft) = setup(NetSeerConfig { faults, ..NetSeerConfig::default() });
        drive_lossy_fabric(&mut sim, &ft, 0.02);
        let crashes = crash_schedule(base, &sim, CrashKind::Hard);
        let log = schedule_device_crashes(&mut sim, &crashes);
        sim.run_until(30 * MILLIS);
        let store = collect_events(&mut sim);
        (fleet_ledger(&sim), log.reports(), store.len())
    };
    let a = run(seed(7));
    assert_eq!(a, run(seed(7)), "same seed must reproduce crashes bit-for-bit");
    assert!(a != run(seed(8)), "different seeds should move the crash windows");
}
