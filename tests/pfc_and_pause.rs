//! End-to-end PFC: lossless priorities pause instead of dropping, and
//! NetSeer's pause detector reports the affected flows (the event class
//! the paper could not exercise on its SmartNICs — footnote 1 — but which
//! the simulator covers fully).

use fet_netsim::host::FlowSpec;
use fet_netsim::mmu::MmuConfig;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::MILLIS;
use fet_netsim::topology::{build_fat_tree, FatTreeParams};
use fet_netsim::Simulator;
use fet_packet::event::EventType;
use fet_packet::FlowKey;
use netseer::deploy::{collect_events, deploy, DeployOptions};

fn lossless_params() -> FatTreeParams {
    let mut params = FatTreeParams::default();
    params.switch_config.pfc_priorities = 0x01; // priority 0 is lossless
    params.switch_config.mmu = MmuConfig {
        total_bytes: 256 * 1024,
        alpha: 8.0,
        pfc_xoff_bytes: 40 * 1024,
        pfc_xon_bytes: 10 * 1024,
        queues_per_port: 8,
    };
    params
}

fn run_incast(params: FatTreeParams) -> (Simulator, fet_netsim::topology::FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());
    // 5-way incast into host 0 on the lossless class.
    for (i, src) in [2usize, 3, 4, 5, 6].into_iter().enumerate() {
        let key = FlowKey::tcp(ft.host_ips[src], 42_000 + i as u16, ft.host_ips[0], 9000);
        let h = ft.hosts[src];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 2_000_000,
            pkt_payload: 1000,
            rate_gbps: 25.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    sim.run_until(50 * MILLIS);
    (sim, ft)
}

#[test]
fn pfc_generates_pause_events_and_netseer_reports_them() {
    let (mut sim, ft) = run_incast(lossless_params());
    let gt_pause = sim.gt.flow_events(EventType::Pause);
    assert!(!gt_pause.is_empty(), "incast on a lossless class must pause");
    let store = collect_events(&mut sim);
    let seen = store.flow_events(EventType::Pause);
    let covered = gt_pause.iter().filter(|fe| seen.contains(fe)).count();
    assert_eq!(covered, gt_pause.len(), "pause coverage {covered}/{}", gt_pause.len());
    // PFC frames actually crossed the fabric.
    let pfc_tx: u64 = ft
        .all_switches()
        .iter()
        .map(|&s| sim.switch(s).counters.iter().map(|c| c.pfc_tx).sum::<u64>())
        .sum();
    assert!(pfc_tx > 0, "switches should have sent PAUSE frames");
}

#[test]
fn lossless_class_drops_less_than_lossy() {
    let (sim_lossless, _) = run_incast(lossless_params());
    let mut lossy = lossless_params();
    lossy.switch_config.pfc_priorities = 0;
    let (sim_lossy, _) = run_incast(lossy);
    let drops_lossless = sim_lossless.gt.count(EventType::MmuDrop);
    let drops_lossy = sim_lossy.gt.count(EventType::MmuDrop);
    assert!(
        drops_lossless < drops_lossy / 2 || drops_lossless == 0,
        "PFC should sharply reduce drops: lossless {drops_lossless} vs lossy {drops_lossy}"
    );
}

#[test]
fn pause_state_clears_and_traffic_completes() {
    let (sim, ft) = run_incast(lossless_params());
    // All incast bytes eventually arrive (paused, not dropped).
    let rx: u64 = sim.host(ft.hosts[0]).rx_flows.values().map(|s| s.bytes).sum();
    assert!(rx >= 5 * 2_000_000, "lossless incast should deliver everything, got {rx}");
}
