//! Seeded, structure-aware fuzz harness for every `fet-packet` parser.
//!
//! No external fuzzing dependency: the in-tree `Pcg32` drives two input
//! families per parser —
//!
//! * **random buffers** — raw noise at assorted lengths, including the
//!   empty buffer and off-by-one truncations around each header size;
//! * **mutated-valid buffers** — a well-formed frame from the real
//!   builders, then damaged by `fet_netsim::corrupt::corrupt_buffer`
//!   (bit flips + truncation + duplication), which preserves enough
//!   structure to reach the deep branches of each parser.
//!
//! The contract under test is the data-integrity fault domain's first
//! line: **no parser may panic on any input** — they return typed
//! `ParseError`s — and any input a parser *accepts* must round-trip
//! stably (parse → rebuild → parse gives the same result).
//!
//! `FUZZ_ITERS` overrides the per-parser iteration count (CI smoke runs
//! use a bounded value; the default exercises ≥10k inputs per parser).
//! `CHAOS_SEED` diversifies the corpus per CI matrix leg.

use fet_netsim::corrupt::{corrupt_buffer, CorruptionSpec};
use fet_netsim::rng::Pcg32;
use fet_packet::builder::{
    build_cebp_frame, build_data_packet, build_notification_frames_with, build_pfc_frame, classify,
    extract_flow, insert_seqtag, parse_cebp_frame, parse_notification, peek_seqtag, strip_seqtag,
    strip_seqtag_in_place,
};
use fet_packet::cebp::CebpPacket;
use fet_packet::ethernet::EthernetFrame;
use fet_packet::event::{EventDetail, EventRecord, EventType, EVENT_RECORD_LEN};
use fet_packet::ipv4::Ipv4Addr;
use fet_packet::notification::LossNotification;
use fet_packet::pfc::PfcFrame;
use fet_packet::seqtag::SeqTag;
use fet_packet::FlowKey;
use netseer::spill::{
    decode_spill_prefix, decode_spill_record, encode_spill_record, SPILL_RECORD_LEN,
};
use netseer::StoredEvent;

/// Per-parser iteration budget: ≥10k by default, overridable for smoke.
fn iters() -> u32 {
    match std::env::var("FUZZ_ITERS") {
        Ok(s) => s.parse().expect("FUZZ_ITERS must be a u32"),
        Err(_) => 10_000,
    }
}

/// Corpus diversification for the CI seed matrix.
fn seed(base: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            base ^ s
                .parse::<u64>()
                .expect("CHAOS_SEED must be a u64")
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        }
        Err(_) => base,
    }
}

fn flow(n: u16) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::from_octets([10, 0, (n >> 8) as u8, n as u8]),
        1000 + n,
        Ipv4Addr::from_octets([10, 1, 0, 1]),
        80,
    )
}

fn rec(n: u16) -> EventRecord {
    EventRecord {
        ty: EventType::Congestion,
        flow: flow(n),
        detail: EventDetail::Congestion { egress_port: n as u8, queue: 0, latency_us: n },
        counter: 1,
        hash: u32::from(n).wrapping_mul(0x9e37_79b9),
    }
}

fn stored(n: u16) -> StoredEvent {
    StoredEvent {
        time_ns: u64::from(n) * 1_000,
        device: u32::from(n) % 37,
        epoch: u32::from(n) % 5,
        seq: u64::from(n),
        record: rec(n),
    }
}

/// A valid spill segment image: 1..=16 encoded records back to back.
fn valid_spill_buffer(rng: &mut Pcg32) -> Vec<u8> {
    let n = 1 + rng.next_below(16) as u16;
    let mut buf = Vec::with_capacity(n as usize * SPILL_RECORD_LEN);
    for i in 0..n {
        encode_spill_record(&stored(rng.next_below(500) as u16 ^ i), &mut buf);
    }
    buf
}

/// Drive the spill record/segment decoders over one buffer. The same
/// contract as [`exercise_all`]: never panic, and anything accepted must
/// round-trip stably through the canonical encoder.
fn exercise_spill(buf: &[u8]) {
    if let Some((ev, consumed)) = decode_spill_record(buf) {
        assert_eq!(consumed, SPILL_RECORD_LEN, "spill records are fixed-length");
        let mut rebuilt = Vec::with_capacity(SPILL_RECORD_LEN);
        encode_spill_record(&ev, &mut rebuilt);
        let (again, _) = decode_spill_record(&rebuilt).expect("rebuilt record decodes");
        assert_eq!(again, ev, "spill record round-trip must be stable");
    }
    let survivors = decode_spill_prefix(buf);
    assert!(survivors.len() <= buf.len() / SPILL_RECORD_LEN, "prefix decode cannot invent records");
    // The prefix property itself: record k decodes iff bytes
    // [0, (k+1) * SPILL_RECORD_LEN) all validated, so each survivor must
    // re-decode from its own offset.
    for (k, ev) in survivors.iter().enumerate() {
        let at = k * SPILL_RECORD_LEN;
        let (direct, _) = decode_spill_record(&buf[at..]).expect("survivor re-decodes");
        assert_eq!(direct, *ev, "prefix and direct decode must agree");
    }
}

/// A random buffer with fuzz-friendly length distribution: mostly short
/// (where header bound checks live), occasionally jumbo.
fn random_buffer(rng: &mut Pcg32) -> Vec<u8> {
    let len = match rng.next_below(10) {
        0 => 0,
        1..=5 => rng.next_below(64) as usize,
        6..=8 => rng.next_below(256) as usize,
        _ => rng.next_below(2048) as usize,
    };
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

/// One valid frame from the real builders, chosen by the draw.
fn valid_frame(rng: &mut Pcg32) -> Vec<u8> {
    match rng.next_below(6) {
        0 => build_data_packet(&flow(rng.next_below(500) as u16), 64, 7, 1, 64),
        1 => {
            let f = build_data_packet(&flow(rng.next_below(500) as u16), 64, 7, 1, 64);
            insert_seqtag(&f, rng.next_u32()).expect("taggable")
        }
        2 => {
            let lo = rng.next_u32();
            build_notification_frames_with(lo, lo.wrapping_add(rng.next_below(50)), 3, 1).remove(0)
        }
        3 => build_pfc_frame(rng.next_below(8) as usize, rng.next_u32() as u16),
        4 => {
            let n = 1 + rng.next_below(16) as u16;
            let events: Vec<EventRecord> = (0..n).map(rec).collect();
            build_cebp_frame(n, &events).expect("cebp builds")
        }
        _ => {
            let mut raw = vec![0u8; EVENT_RECORD_LEN];
            raw.copy_from_slice(&rec(rng.next_below(500) as u16).to_bytes());
            raw
        }
    }
}

/// A valid frame damaged by the structure-preserving corruption engine.
fn mutated_valid(rng: &mut Pcg32) -> Vec<u8> {
    let mut buf = valid_frame(rng);
    let spec = CorruptionSpec {
        flip_per_byte: [0.001, 0.01, 0.1][rng.next_below(3) as usize],
        truncate_prob: 0.2,
        duplicate_prob: 0.2,
    };
    corrupt_buffer(&spec, rng, &mut buf);
    buf
}

/// Drive every parser over one buffer. Panics (the test failure mode)
/// only if a parser itself panics or an accepted input fails round-trip.
fn exercise_all(buf: &[u8]) {
    // Ethernet view + classification.
    if let Ok(eth) = EthernetFrame::new_checked(buf) {
        let _ = eth.ethertype();
        let _ = eth.payload();
    }
    let _ = classify(buf);
    let _ = extract_flow(buf);

    // Sequence tags: peek, strip (owned and in-place) must agree.
    let peeked = peek_seqtag(buf);
    match strip_seqtag(buf) {
        Ok((seq, inner)) => {
            assert_eq!(peeked.ok(), Some(seq), "peek and strip must agree");
            let mut in_place = buf.to_vec();
            let seq2 = strip_seqtag_in_place(&mut in_place).expect("in-place agrees");
            assert_eq!((seq, &inner), (seq2, &in_place), "strip variants must agree");
            // Round-trip: re-tagging the stripped frame reproduces the
            // original when the inner frame is still taggable.
            if let Ok(retagged) = insert_seqtag(&inner, seq) {
                assert_eq!(retagged, buf, "seqtag round-trip must be stable");
            }
        }
        Err(_) => {
            let mut in_place = buf.to_vec();
            assert!(strip_seqtag_in_place(&mut in_place).is_err(), "variants must agree on reject");
        }
    }
    let _ = SeqTag::new_checked(buf);

    // Loss notifications: framed parse (CRC-verified) and raw view.
    if let Ok((lo, hi, copy, port)) = parse_notification(buf) {
        // Accepted ⇒ rebuilding the same range reproduces a parseable frame.
        let rebuilt = build_notification_frames_with(lo, hi, port, copy.saturating_add(1))
            .pop()
            .expect("one copy");
        let reparsed = parse_notification(&rebuilt).expect("rebuilt notification parses");
        assert_eq!(reparsed, (lo, hi, copy, port), "notification round-trip must be stable");
    }
    let _ = LossNotification::new_checked(buf);

    // CEBP: framed parse (CRC-verified) and raw view.
    if let Ok(events) = parse_cebp_frame(buf) {
        let rebuilt = build_cebp_frame(events.len().max(1) as u16, &events).expect("rebuild fits");
        let reparsed = parse_cebp_frame(&rebuilt).expect("rebuilt CEBP parses");
        assert_eq!(reparsed, events, "CEBP round-trip must be stable");
    }
    if let Ok(view) = CebpPacket::new_checked(buf) {
        if let Ok(events) = view.events() {
            for e in &events {
                // Accepted records must themselves round-trip.
                assert_eq!(EventRecord::parse(&e.to_bytes()).expect("roundtrip"), *e);
            }
        }
    }

    // Event records and PFC frames from arbitrary prefixes.
    let _ = EventRecord::parse(buf);
    let _ = PfcFrame::new_checked(buf);
}

#[test]
fn parsers_survive_random_buffers() {
    let mut rng = Pcg32::new(seed(0xF0FF_F055), 1);
    for _ in 0..iters() {
        exercise_all(&random_buffer(&mut rng));
    }
}

#[test]
fn parsers_survive_mutated_valid_frames() {
    let mut rng = Pcg32::new(seed(0xBEEF_CAFE), 2);
    for _ in 0..iters() {
        exercise_all(&mutated_valid(&mut rng));
    }
}

#[test]
fn parsers_accept_all_pristine_frames() {
    // The mutation family only proves rejection is graceful; this proves
    // the acceptance path stays reachable (a fuzzer that never sees an
    // accepted input is testing nothing but the length check).
    let mut rng = Pcg32::new(seed(0x5EED_0001), 3);
    for _ in 0..iters() {
        let buf = valid_frame(&mut rng);
        exercise_all(&buf);
    }
    // Spot-check acceptance explicitly for each family.
    let f = build_data_packet(&flow(1), 64, 7, 1, 64);
    assert!(extract_flow(&f).is_some());
    let tagged = insert_seqtag(&f, 99).unwrap();
    assert_eq!(peek_seqtag(&tagged).unwrap(), 99);
    let n = build_notification_frames_with(5, 9, 2, 3);
    assert_eq!(n.len(), 3);
    assert!(parse_notification(&n[0]).is_ok());
    let events: Vec<EventRecord> = (0..4).map(rec).collect();
    let cebp = build_cebp_frame(4, &events).unwrap();
    assert_eq!(parse_cebp_frame(&cebp).unwrap(), events);
}

#[test]
fn truncation_sweep_never_panics() {
    // Every prefix of every valid frame family: the classic slice-index
    // panic audit, exhaustively.
    let mut rng = Pcg32::new(seed(0x7123_4567), 4);
    for _ in 0..64 {
        let frame = valid_frame(&mut rng);
        for cut in 0..=frame.len() {
            exercise_all(&frame[..cut]);
        }
    }
}

#[test]
fn spill_decoders_survive_random_buffers() {
    let mut rng = Pcg32::new(seed(0x5B11_F055), 5);
    for _ in 0..iters() {
        exercise_spill(&random_buffer(&mut rng));
    }
}

#[test]
fn spill_decoders_survive_mutated_valid_segments() {
    let mut rng = Pcg32::new(seed(0x5B1F_CAFE), 6);
    for _ in 0..iters() {
        let mut buf = valid_spill_buffer(&mut rng);
        let spec = CorruptionSpec {
            flip_per_byte: [0.001, 0.01, 0.1][rng.next_below(3) as usize],
            truncate_prob: 0.2,
            duplicate_prob: 0.2,
        };
        corrupt_buffer(&spec, &mut rng, &mut buf);
        exercise_spill(&buf);
        // Undamaged segments must decode in full (acceptance coverage:
        // a fuzzer that never sees an accepted record tests nothing).
        let pristine = valid_spill_buffer(&mut rng);
        assert_eq!(decode_spill_prefix(&pristine).len(), pristine.len() / SPILL_RECORD_LEN);
    }
}

#[test]
fn spill_truncation_sweep_keeps_exact_record_prefixes() {
    // Every prefix of a valid segment image: the longest-valid-prefix
    // decode must keep exactly the records whose bytes fully survived —
    // this is the crash-recovery torn-tail contract, exhaustively.
    let mut rng = Pcg32::new(seed(0x5B1F_4567), 7);
    for _ in 0..64 {
        let buf = valid_spill_buffer(&mut rng);
        let full = decode_spill_prefix(&buf);
        for cut in 0..=buf.len() {
            let survivors = decode_spill_prefix(&buf[..cut]);
            assert_eq!(survivors.len(), cut / SPILL_RECORD_LEN, "cut {cut} of {}", buf.len());
            assert_eq!(survivors[..], full[..survivors.len()], "survivors must be a prefix");
        }
    }
}

// ---------------------------------------------------------------------------
// Wire-ingest family: the NetFlow v5 / v9 / IPFIX parsers (`fet-wire`).
//
// Same discipline as the packet parsers above — never panic, everything
// accepted round-trips stably — plus the wire crate's own contracts: the
// template cache stays bounded whatever the bytes do, and per-datagram
// accounting (decoded == samples, rejected ⇒ nothing claimed) holds on
// every input.
// ---------------------------------------------------------------------------

use fet_netsim::exporter::{HostileExporter, HostileExporterConfig};
use fet_packet::flow::IpProtocol;
use fet_wire::builder::{
    v5_datagram, v5_datagram_with_count, v5_datagram_with_times, IpfixBuilder, V9Builder,
};
use fet_wire::fields::{base_flow_fields, FIRST_SWITCHED, LAST_SWITCHED};
use fet_wire::{translate, FlowSample, TemplateField, WireSession, WireSessionConfig};

fn wire_sample(rng: &mut Pcg32) -> FlowSample {
    let r = rng.next_u32();
    FlowSample {
        flow: FlowKey {
            src: Ipv4Addr::from_octets([10, (r >> 16) as u8, (r >> 8) as u8, r as u8]),
            dst: Ipv4Addr::from_octets([10, 99, (r >> 24) as u8, 1]),
            sport: 1024 + (rng.next_u32() % 40_000) as u16,
            dport: 443,
            proto: if rng.chance(0.8) { IpProtocol::Tcp } else { IpProtocol::Udp },
        },
        in_port: rng.next_below(300) as u16,
        out_port: rng.next_below(300) as u16,
        packets: u64::from(rng.next_u32()),
        bytes: u64::from(rng.next_u32()),
        tcp_flags: rng.next_u32() as u8,
        forwarding_status: match rng.next_below(4) {
            0 => None,
            1 => Some(0x40),
            2 => Some(0x80),
            _ => Some(rng.next_u32() as u8),
        },
        first_ms: 0,
        last_ms: 0,
    }
}

fn wire_samples(rng: &mut Pcg32, max: u32) -> Vec<FlowSample> {
    (0..1 + rng.next_below(max)).map(|_| wire_sample(rng)).collect()
}

/// One valid (or deliberately *almost*-valid, but still panic-safe and
/// well-framed) datagram from the reference builders.
fn valid_wire_datagram(rng: &mut Pcg32) -> Vec<u8> {
    let tid = 256 + rng.next_below(8) as u16;
    match rng.next_below(8) {
        0 => v5_datagram(rng.next_u32(), 0, rng.next_u32() as u8, &wire_samples(rng, 12)),
        1 => {
            // Soft count lie: claims within physical bounds, ships less.
            let rows = wire_samples(rng, 4);
            v5_datagram_with_count(rng.next_u32(), 0, 1, &rows, 1 + rng.next_below(30) as u16)
        }
        2 => V9Builder::new(rng.next_below(5), rng.next_u32())
            .template(tid, &base_flow_fields())
            .data_samples(tid, &wire_samples(rng, 12))
            .build(),
        3 => {
            // Data before template: a legal datagram the cache may or may
            // not be able to decode.
            V9Builder::new(rng.next_below(5), rng.next_u32())
                .data_samples(tid, &wire_samples(rng, 6))
                .build()
        }
        4 => V9Builder::new(rng.next_below(5), rng.next_u32())
            .options_template(900, &[TemplateField::std(1, 4)], &[TemplateField::std(2, 2)])
            .template(tid, &base_flow_fields())
            .data_samples(tid, &wire_samples(rng, 6))
            .build(),
        5 => IpfixBuilder::new(rng.next_below(5), rng.next_u32())
            .template(tid, &base_flow_fields())
            .data_samples(tid, &wire_samples(rng, 12))
            .build(),
        6 => {
            // Enterprise-numbered fields: 4 extra bytes per spec the
            // parser must skip without miscounting.
            let mut fields = base_flow_fields();
            fields.push(TemplateField { field_id: 77, length: 4, enterprise: Some(29305) });
            let rows: Vec<Vec<u8>> = wire_samples(rng, 6)
                .iter()
                .map(|s| {
                    let mut r = fet_wire::fields::encode_record(&base_flow_fields(), s);
                    r.extend_from_slice(&rng.next_u32().to_be_bytes());
                    r
                })
                .collect();
            IpfixBuilder::new(rng.next_below(5), rng.next_u32())
                .template(tid, &fields)
                .data(tid, &rows)
                .build()
        }
        _ => IpfixBuilder::new(rng.next_below(5), rng.next_u32())
            .options_template(901, &[TemplateField::std(1, 4)], &[TemplateField::std(2, 2)])
            .build(),
    }
}

/// Feed one buffer through a shared session and check the per-datagram
/// contracts that must hold on *any* input.
fn exercise_wire(s: &mut WireSession, buf: &[u8]) {
    let r = s.ingest(buf, 0);
    assert_eq!(r.decoded, r.samples.len() as u64, "decoded must equal carried samples");
    if r.rejected.is_some() {
        assert_eq!(r.claimed(), 0, "a rejected datagram contributes nothing to generated");
        assert!(r.samples.is_empty(), "rejected datagrams carry no samples");
    }
    // Translation is total over decoded samples and the 24-byte event
    // encoding round-trips exactly.
    for smp in &r.samples {
        let ev = translate(smp);
        let parsed = EventRecord::parse(&ev.to_bytes()).expect("translated record reparses");
        assert_eq!(parsed, ev, "FET event round-trip must be stable");
    }
    // The bounded-state headline, checked after every single datagram.
    let cache = s.cache();
    assert!(cache.max_domain_len() <= cache.config().max_templates, "template bound violated");
    assert!(cache.domain_count() <= cache.config().max_domains, "domain bound violated");
}

/// Decode → re-encode → decode must reach a fixpoint in one step: the
/// first pass normalizes lossy widths (e.g. an 8-byte counter squeezed
/// into a 4-byte field), the second must change nothing.
fn assert_wire_fixpoint(samples: &[FlowSample]) {
    let reencode = |rows: &[FlowSample]| {
        let mut s = WireSession::new(WireSessionConfig::default());
        let dg =
            V9Builder::new(1, 0).template(256, &base_flow_fields()).data_samples(256, rows).build();
        let r = s.ingest(&dg, 0);
        assert!(r.rejected.is_none(), "re-encoded datagram must parse");
        assert_eq!(r.malformed, 0, "re-encoded datagram must decode in full");
        r.samples
    };
    let once = reencode(samples);
    let twice = reencode(&once);
    assert_eq!(once, twice, "wire round-trip must stabilize after one pass");
}

#[test]
fn wire_parsers_survive_random_buffers() {
    let mut rng = Pcg32::new(seed(0x3136_F055), 8);
    let mut s = WireSession::new(WireSessionConfig::default());
    for _ in 0..iters() {
        exercise_wire(&mut s, &random_buffer(&mut rng));
    }
}

#[test]
fn wire_parsers_survive_mutated_valid_datagrams() {
    let mut rng = Pcg32::new(seed(0x3136_CAFE), 9);
    let mut s = WireSession::new(WireSessionConfig::default());
    for _ in 0..iters() {
        let mut buf = valid_wire_datagram(&mut rng);
        let spec = CorruptionSpec {
            flip_per_byte: [0.001, 0.01, 0.1][rng.next_below(3) as usize],
            truncate_prob: 0.2,
            duplicate_prob: 0.2,
        };
        corrupt_buffer(&spec, &mut rng, &mut buf);
        exercise_wire(&mut s, &buf);
    }
}

#[test]
fn wire_parsers_accept_pristine_datagrams_and_roundtrip() {
    // Acceptance coverage plus the round-trip stability contract on the
    // decoded samples themselves.
    let mut rng = Pcg32::new(seed(0x3136_0001), 10);
    let mut s = WireSession::new(WireSessionConfig::default());
    let mut accepted = 0u64;
    for _ in 0..iters() {
        let buf = valid_wire_datagram(&mut rng);
        let r = s.ingest(&buf, 0);
        assert!(r.rejected.is_none(), "builders only emit well-framed datagrams: {:?}", r.rejected);
        if !r.samples.is_empty() {
            accepted += 1;
            assert_wire_fixpoint(&r.samples);
        }
        exercise_wire(&mut s, &buf);
    }
    assert!(accepted > u64::from(iters()) / 4, "acceptance path must stay reachable");
}

#[test]
fn wire_truncation_sweep_never_panics() {
    // Every prefix of every valid datagram family, through a session that
    // carries template state across sweeps (truncated templates must not
    // poison later decodes).
    let mut rng = Pcg32::new(seed(0x3136_4567), 11);
    let mut s = WireSession::new(WireSessionConfig::default());
    for _ in 0..64 {
        let frame = valid_wire_datagram(&mut rng);
        for cut in 0..=frame.len() {
            exercise_wire(&mut s, &frame[..cut]);
        }
    }
}

#[test]
fn wire_survives_the_hostile_exporter() {
    // The seeded adversarial workload end to end at fuzz volume: every
    // datagram lands in exactly one accounting bucket and state bounds
    // hold throughout (asserted per datagram by exercise_wire).
    let mut ex = HostileExporter::new(HostileExporterConfig {
        seed: seed(0x3136_EEEE),
        hostility: 0.5,
        drop_prob: 0.05,
        corruption: CorruptionSpec { flip_per_byte: 0.01, truncate_prob: 0.1, duplicate_prob: 0.1 },
        ..Default::default()
    });
    let mut s = WireSession::new(WireSessionConfig::default());
    for _ in 0..iters() {
        if let Some(dg) = ex.emit() {
            exercise_wire(&mut s, &dg);
        }
    }
    let st = s.stats();
    assert_eq!(st.accepted + st.rejected, st.datagrams, "every datagram gets one disposition");
    assert!(st.rejects.iter().chain(st.soft.iter()).filter(|&&c| c > 0).count() >= 4);
}

// ---------------------------------------------------------------------------
// Clock-lie family: randomized header clocks and per-record timestamps.
//
// The time-fault contract: exporter clocks are *claims*, never trusted.
// Whatever the time fields say — future export times, backwards first/last
// pairs, sysuptime parked at one value, values straddling the ~49.7-day
// u32 millisecond wrap — the datagram must still land in exactly one
// accounting bucket, never panic, and every accepted stamp must stay
// within the collector's receive-clock plausibility window.
// ---------------------------------------------------------------------------

/// A flow sample whose first/last sysuptime claims are drawn from the
/// clock-lie corpus: absent, plausible, wrap-straddling (honest), and
/// outright lies (backwards pairs, implausible durations, raw noise).
fn clocky_sample(rng: &mut Pcg32) -> FlowSample {
    let mut s = wire_sample(rng);
    let (first, last) = match rng.next_below(6) {
        0 => (0, 0), // absent — not a claim at all
        1 => {
            let f = rng.next_u32() % 1_000_000;
            (f, f + rng.next_u32() % 60_000) // plausible forward pair
        }
        2 => (u32::MAX - rng.next_below(1_000), rng.next_below(1_000)), // wrap-straddler
        3 => {
            let l = rng.next_u32() % 1_000_000;
            (l + 1 + rng.next_u32() % 1_000_000, l) // backwards: a lie
        }
        4 => {
            let f = rng.next_u32() % 1_000;
            (f, f + 3_600_001 + rng.next_u32() % 1_000_000) // implausible duration
        }
        _ => (rng.next_u32(), rng.next_u32()), // raw noise
    };
    s.first_ms = first;
    s.last_ms = last;
    s
}

/// One well-framed datagram whose clock fields lie in every way the wire
/// protocols allow: v5 header sysuptime/unix pairs, v9 `times()`, IPFIX
/// `export_time()`, plus per-record FIRST/LAST_SWITCHED claims.
fn clock_lying_datagram(rng: &mut Pcg32, seq: u32) -> Vec<u8> {
    let rows: Vec<FlowSample> = (0..1 + rng.next_below(8)).map(|_| clocky_sample(rng)).collect();
    let (sys_ms, unix_s) = match rng.next_below(5) {
        0 => (0, 0),                                                    // absent
        1 => (rng.next_u32() % 10_000, 1_700_000_000),                  // plausible
        2 => (u32::MAX - rng.next_below(5_000), 1_700_000_000),         // sysuptime near the wrap
        3 => (0x00BE_EF00, 2_000_000_000 + rng.next_u32() % 1_000_000), // frozen + far future
        _ => (rng.next_u32(), rng.next_u32()),                          // raw noise
    };
    let tid = 256 + rng.next_below(8) as u16;
    let mut timed = base_flow_fields();
    timed.push(TemplateField::std(FIRST_SWITCHED, 4));
    timed.push(TemplateField::std(LAST_SWITCHED, 4));
    match rng.next_below(3) {
        0 => v5_datagram_with_times(seq, 0, 1, &rows, rows.len() as u16, sys_ms, unix_s),
        1 => V9Builder::new(rng.next_below(5), seq)
            .times(sys_ms, unix_s)
            .template(tid, &timed)
            .data_samples(tid, &rows)
            .build(),
        _ => IpfixBuilder::new(rng.next_below(5), seq)
            .export_time(unix_s)
            .template(tid, &timed)
            .data_samples(tid, &rows)
            .build(),
    }
}

#[test]
fn wire_clock_lies_stay_accounted_and_clamped() {
    let mut rng = Pcg32::new(seed(0x3136_C10C), 12);
    let mut s = WireSession::new(WireSessionConfig::default());
    let mut now_ns: u64 = 50_000_000_000;
    for i in 0..iters() {
        now_ns += u64::from(rng.next_below(1_000_000));
        let buf = clock_lying_datagram(&mut rng, i);
        let r = s.ingest(&buf, now_ns);
        // Exactly one disposition per datagram, checked after every input.
        let st = s.stats();
        assert_eq!(st.accepted + st.rejected, st.datagrams, "one bucket per datagram");
        assert_eq!(st.datagrams, u64::from(i) + 1, "every datagram is counted");
        if r.rejected.is_none() {
            // Accepted ⇒ a usable event time that never outruns the
            // collector's own receive clock (plus the 1 s future slack).
            assert!(r.event_time_ns > 0, "accepted datagrams carry an event time");
            assert!(
                r.event_time_ns <= now_ns + 2_000_000_000,
                "vetted stamps stay within the receive-clock window"
            );
        } else {
            assert_eq!(r.event_time_ns, 0, "rejected datagrams carry no event time");
        }
        let cache = s.cache();
        assert!(cache.max_domain_len() <= cache.config().max_templates, "template bound");
        assert!(cache.domain_count() <= cache.config().max_domains, "domain bound");
    }
    // Corpus coverage: the lie taxonomy must actually fire — clock lies
    // are soft damage, so acceptance stays high while lies are booked.
    let st = s.stats();
    assert!(st.accepted > u64::from(iters()) / 2, "clock lies must not cause rejection");
    assert!(st.clock_lies.iter().filter(|&&c| c > 0).count() >= 3, "≥3 lie kinds observed");
    assert!(st.clamped_stamps > 0, "implausible stamps get clamped to the receive clock");
}

#[test]
fn wire_survives_the_clock_hostile_exporter() {
    // End-to-end at fuzz volume: the seeded exporter mixes clock lies with
    // structural attacks and corruption; accounting must stay exact.
    let mut ex = HostileExporter::new(HostileExporterConfig {
        seed: seed(0x3136_DDDD),
        hostility: 0.3,
        clock_hostility: 0.4,
        drop_prob: 0.05,
        corruption: CorruptionSpec {
            flip_per_byte: 0.005,
            truncate_prob: 0.1,
            duplicate_prob: 0.1,
        },
        ..Default::default()
    });
    let mut s = WireSession::new(WireSessionConfig::default());
    let mut now_ns: u64 = 1_000_000_000;
    for _ in 0..iters() {
        now_ns += 10_000;
        if let Some(dg) = ex.emit() {
            let r = s.ingest(&dg, now_ns);
            assert_eq!(r.decoded, r.samples.len() as u64, "decoded must equal carried samples");
            let st = s.stats();
            assert_eq!(st.accepted + st.rejected, st.datagrams, "one bucket per datagram");
        }
    }
    assert!(ex.clock_attacks > 0, "the clock-lie arm must fire at this volume");
    let st = s.stats();
    assert!(st.clock_lies.iter().sum::<u64>() > 0, "clock lies must be booked");
}
