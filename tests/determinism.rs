//! The parallel-execution determinism contract: for every chaos scenario
//! in `tests/chaos.rs`, running the fleet under `run_until_parallel` at
//! any shard count must be **bit-identical** to the serial run — same
//! delivered-event stream, same ledgers, same ground truth, same crash
//! reports, same analytics state.
//!
//! This is the whole point of the canonical-event-key design (see
//! `DESIGN.md` §11): sharding is an execution strategy, never an
//! observable. The scenarios reuse the chaos fault plans (including the
//! `CHAOS_SEED` CI matrix mixing), so each matrix leg verifies the
//! contract over a genuinely different run.

use fet_analytics::{link_map_from_sim, AnalyticsConfig, AnalyticsEngine};
use fet_export::{
    parse_exposition, scrape_analytics, scrape_breaches, scrape_collector, scrape_fleet,
    scrape_ledger, scrape_wire, validate_json, MetricRegistry, RenderedSnapshot,
};
use fet_netsim::host::FlowSpec;
use fet_netsim::link::BurstDrop;
use fet_netsim::routing::install_ecmp_routes;
use fet_netsim::time::{MICROS, MILLIS};
use fet_netsim::topology::{build_fat_tree, FatTree, FatTreeParams};
use fet_netsim::tracer::GtEvent;
use fet_netsim::Simulator;
use fet_packet::FlowKey;
use netseer::deploy::{
    delivered_history, deploy, fleet_ledger, monitor_of, monitor_of_mut, DeployOptions,
};
use netseer::faults::{seeded_device_crashes, streams, OverloadWindow};
use netseer::{
    schedule_device_crashes, schedule_watchdog, schedule_wedge, Collector, CollectorConfig,
    CorruptionGen, CorruptionSpec, CrashKind, CrashReport, DeliveryLedger, FaultPlan, LossProcess,
    NetSeerConfig, StoredEvent, WatchdogConfig, Window,
};

/// Same CI-matrix seed mixing as `tests/chaos.rs`.
fn seed(base: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => base ^ s.trim().parse::<u64>().unwrap_or(0).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        Err(_) => base,
    }
}

/// Shard counts required by the determinism contract. `1` exercises the
/// serial-delegation path; the rest are genuinely parallel.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Horizon long enough for every fault window (crash schedules end at
/// 10 ms) while keeping 10 scenarios x 5 runs affordable in CI.
const HORIZON: u64 = 12 * MILLIS;

/// Everything observable about a finished run. Two runs are "the same
/// run" iff their fingerprints are equal.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    delivered: Vec<StoredEvent>,
    ledger: DeliveryLedger,
    gt: Vec<GtEvent>,
    mgmt_bytes: u64,
    retransmissions: u64,
    notification_drops: u64,
    crash_reports: Vec<CrashReport>,
    host_rx_pkts: u64,
    /// Data-integrity observables: CEBP CRC failures (implicit NACKs) and
    /// WAL records rejected by torn-tail replay, fleet-wide.
    crc_failures: u64,
    wal_rejected: u64,
    /// Backpressure observable: partial flushes the widened stride held
    /// back, fleet-wide (always 0 at stride 1).
    flushes_skipped: u64,
    /// Spill observables from the post-processing collector: peak spill
    /// occupancy, records re-read after a crash rewound the read cursor,
    /// and records destroyed by a torn tail. All 0 when the drill is off.
    buffered: u64,
    spill_replayed: u64,
    spill_torn: u64,
    analytics: AnalyticsState,
    /// Wire-ingestion observables from the seeded hostile-exporter storm
    /// every fingerprint runs: malformed / quarantine / per-reason reject
    /// counters are part of the bit-identical contract.
    wire: WireState,
    /// The fully rendered export snapshot (Prometheus text + OTel JSON)
    /// scraped off every stat surface above: encoders and scrape
    /// adapters are part of the bit-identical contract too.
    export: RenderedSnapshot,
    /// Per-device virtual-clock fingerprints (offset/drift/step/freeze
    /// draws). All-zero when the fault plan leaves clocks perfect; under a
    /// clock storm every shard count must draw the identical fleet of
    /// wrong clocks.
    clock_fingerprints: Vec<u64>,
}

/// Everything observable about the hostile-exporter wire storm.
#[derive(Debug, PartialEq)]
struct WireState {
    ledger: DeliveryLedger,
    quarantined: u64,
    rejects: Vec<u64>,
    soft_rejects: Vec<u64>,
    upstream_lost: u64,
    store: Vec<StoredEvent>,
    /// Clock-lie taxonomy counters and clamped-stamp total (zero for the
    /// honest-clock storm; joined to the contract so the vetting path can
    /// never drift across shard counts).
    clock_lies: Vec<u64>,
    clamped_stamps: u64,
}

/// Storm a dedicated tight-watermark collector with the seeded hostile
/// exporter and capture every wire observable. Deterministic in
/// `storm_seed`; joins [`Fingerprint`] so the contract covers the wire
/// path (BTreeMap-ordered template cache, device map, quarantine). The
/// wire surfaces are also scraped into `reg`, so the export snapshot
/// covers the storm too.
fn run_wire_storm(storm_seed: u64, reg: &mut MetricRegistry) -> WireState {
    use fet_netsim::{HostileExporter, HostileExporterConfig};
    use netseer::{WireConfig, WireIngest};

    let mut exporter = HostileExporter::new(HostileExporterConfig {
        seed: storm_seed,
        hostility: 0.4,
        corruption: CorruptionSpec {
            flip_per_byte: 1e-3,
            truncate_prob: 0.05,
            duplicate_prob: 0.02,
        },
        ..HostileExporterConfig::default()
    });
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 32,
        max_spill_bytes: 8 * 1024,
        spill_segment_bytes: 1024,
        ..CollectorConfig::default()
    });
    collector.subscribe(); // never drains: watermark binds, spill fills, shed engages
    let mut wire = WireIngest::new(WireConfig::default());
    for tick in 0..400u64 {
        if let Some(datagram) = exporter.emit() {
            wire.ingest_datagram(&mut collector, &datagram, tick * 10 * MICROS);
        }
    }
    let ledger = wire.ledger(&collector);
    ledger.assert_balanced();
    scrape_wire(reg, &wire);
    scrape_ledger(reg, "wire", &ledger);
    WireState {
        ledger,
        quarantined: collector.poison_seen,
        rejects: wire.rejects_by_reason().to_vec(),
        soft_rejects: wire.soft_rejects_by_reason().to_vec(),
        upstream_lost: wire.upstream_losses().iter().map(|l| l.lost).sum(),
        store: collector.store().events().to_vec(),
        clock_lies: wire.clock_lies().to_vec(),
        clamped_stamps: wire.clamped_stamps(),
    }
}

/// How the post-processing collector in [`run_scenario_with`] exercises
/// the spill over the delivered history.
#[derive(Clone, Copy, PartialEq)]
enum SpillDrill {
    /// Default collector: the spill never engages.
    Off,
    /// Tight watermark + small segments: the history bursts into the
    /// spill and drains back out through the engine poll.
    Burst,
    /// Tight watermark, torn-tail damage armed: a hard kill lands
    /// mid-spill, then sender reconciliation re-offers the history.
    TornKill,
}

#[derive(Debug, PartialEq)]
struct AnalyticsState {
    processed: u64,
    top_flows: Vec<fet_analytics::TopKEntry>,
    totals: Vec<(fet_analytics::AggKey, fet_analytics::WindowStats)>,
}

fn setup(cfg: NetSeerConfig) -> (Simulator, FatTree) {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });
    (sim, ft)
}

fn add_flow(sim: &mut Simulator, ft: &FatTree, src: usize, dst: usize, sport: u16, bytes: u64) {
    let key = FlowKey::tcp(ft.host_ips[src], sport, ft.host_ips[dst], 80);
    let h = ft.hosts[src];
    let idx = sim.host_mut(h).add_flow(FlowSpec {
        key,
        total_bytes: bytes,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(h, idx);
}

fn drive_lossy_fabric(sim: &mut Simulator, ft: &FatTree, drop_prob: f64) {
    for s in 0..8 {
        add_flow(sim, ft, s, 7 - s, 2000 + s as u16, 4_000_000);
    }
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = drop_prob;
        }
    }
}

/// Run one scenario to `HORIZON` and capture every observable.
///
/// `crash_base` schedules the chaos crash drill (every switch CPU dies
/// once in [2 ms, 10 ms) and restarts 500 µs later) before running.
fn run_scenario_with(
    cfg: NetSeerConfig,
    crash_base: Option<(u64, CrashKind)>,
    drive: impl FnOnce(&mut Simulator, &FatTree),
    shards: usize,
    drill: SpillDrill,
) -> Fingerprint {
    let fault_seed = cfg.faults.seed;
    let (mut sim, ft) = setup(cfg);
    drive(&mut sim, &ft);
    let log = crash_base.map(|(base, kind)| {
        let crashes = seeded_device_crashes(
            base,
            &sim.switch_ids(),
            Window { start_ns: 2 * MILLIS, end_ns: 10 * MILLIS },
            500 * MICROS,
            kind,
        );
        schedule_device_crashes(&mut sim, &crashes)
    });
    if shards == 0 {
        sim.run_until(HORIZON);
    } else {
        sim.run_until_parallel(HORIZON, shards);
    }

    let delivered = delivered_history(&sim);
    // Feed the delivered stream through the full analytics engine: if the
    // parallel run reordered or perturbed anything, aggregation state
    // (top-k, window totals, processed count) diverges. The spill drills
    // route that same stream through a pressured (and possibly crashed)
    // collector, so spill occupancy, tearing, and replay join the
    // fingerprint too.
    let collector_cfg = match drill {
        SpillDrill::Off => CollectorConfig::default(),
        SpillDrill::Burst => CollectorConfig {
            memory_watermark: 16,
            spill_segment_bytes: 1024,
            ..CollectorConfig::default()
        },
        SpillDrill::TornKill => {
            CollectorConfig { memory_watermark: 16, ..CollectorConfig::default() }
        }
    };
    let mut collector = Collector::with_config(collector_cfg);
    if drill == SpillDrill::TornKill {
        let spec = CorruptionSpec { flip_per_byte: 0.25, truncate_prob: 0.5, duplicate_prob: 0.0 };
        collector.set_torn_spill(CorruptionGen::new(spec, fault_seed, streams::SPILL_CORRUPT));
    }
    let mut engine = AnalyticsEngine::new(AnalyticsConfig::default(), link_map_from_sim(&sim));
    engine.attach(&mut collector);
    let buffered = match drill {
        SpillDrill::Off | SpillDrill::Burst => {
            collector.ingest(&delivered);
            let peak = collector.buffered();
            engine.poll(&mut collector);
            peak
        }
        SpillDrill::TornKill => {
            let half = delivered.len() / 2;
            collector.ingest(&delivered[..half]);
            engine.poll(&mut collector);
            engine.checkpoint(&mut collector);
            collector.ingest(&delivered[half..]);
            let peak = collector.buffered();
            engine.crash_restart(CrashKind::Hard, &mut collector);
            collector.ingest(&delivered); // sender reconciliation
            engine.poll(&mut collector);
            peak
        }
    };
    engine.ledger().assert_balanced();
    assert_eq!(collector.buffered(), 0, "every drill must drain the spill to quiescence");
    assert_eq!(collector.len(), delivered.len(), "exactly-once through the spill");

    // Scrape every surface the fingerprint captures into one registry and
    // render both encodings at sim time — the snapshot joins the
    // bit-identical contract below.
    let mut reg = MetricRegistry::default();
    scrape_fleet(&mut reg, &sim);
    scrape_collector(&mut reg, &collector);
    scrape_analytics(&mut reg, &engine, 32);
    let analytics = AnalyticsState {
        processed: engine.processed,
        top_flows: engine.top_flows(32),
        totals: engine.totals(),
    };
    scrape_breaches(&mut reg, &engine.finish_breaches());
    let wire = run_wire_storm(fault_seed ^ 0x3117, &mut reg);
    let export = RenderedSnapshot::render(&reg, 0, HORIZON);

    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    Fingerprint {
        ledger: fleet_ledger(&sim),
        gt: sim.gt.events().to_vec(),
        mgmt_bytes: sim.mgmt.total_bytes(),
        retransmissions: sim
            .switch_ids()
            .into_iter()
            .map(|id| monitor_of(&sim, id).transport.retransmissions)
            .sum(),
        notification_drops: ids
            .iter()
            .map(|&id| monitor_of(&sim, id).notification_copies_dropped)
            .sum(),
        crash_reports: log.map(|l| l.reports()).unwrap_or_default(),
        crc_failures: ids.iter().map(|&id| monitor_of(&sim, id).cebp_crc_failures).sum(),
        wal_rejected: ids
            .iter()
            .map(|&id| monitor_of(&sim, id).recovery.wal_records_rejected)
            .sum(),
        flushes_skipped: ids.iter().map(|&id| monitor_of(&sim, id).batcher.flushes_skipped).sum(),
        buffered,
        spill_replayed: collector.spill_replayed(),
        spill_torn: collector.spill().torn_records,
        host_rx_pkts: sim
            .host_ids()
            .into_iter()
            .map(|h| sim.host(h).rx_flows.values().map(|r| r.pkts).sum::<u64>())
            .sum(),
        clock_fingerprints: ids
            .iter()
            .map(|&id| monitor_of(&sim, id).clock().fingerprint())
            .collect(),
        analytics,
        wire,
        export,
        delivered,
    }
}

/// Assert bit-identical serial/parallel runs for one scenario at every
/// shard count in [`SHARD_COUNTS`].
fn assert_deterministic(
    name: &str,
    cfg: impl Fn() -> NetSeerConfig,
    crash_base: Option<(u64, CrashKind)>,
    drive: impl Fn(&mut Simulator, &FatTree) + Copy,
) -> Fingerprint {
    assert_deterministic_with(name, cfg, crash_base, drive, SpillDrill::Off)
}

/// Like [`assert_deterministic`], with a spill drill applied to the
/// post-processing collector. Returns the serial fingerprint so callers
/// can pin scenario-specific observables (spill occupancy, skipped
/// flushes) on top of the equality sweep.
fn assert_deterministic_with(
    name: &str,
    cfg: impl Fn() -> NetSeerConfig,
    crash_base: Option<(u64, CrashKind)>,
    drive: impl Fn(&mut Simulator, &FatTree) + Copy,
    drill: SpillDrill,
) -> Fingerprint {
    let serial = run_scenario_with(cfg(), crash_base, drive, 0, drill);
    assert!(serial.ledger.generated > 0, "{name}: scenario must generate events");
    for shards in SHARD_COUNTS {
        let parallel = run_scenario_with(cfg(), crash_base, drive, shards, drill);
        assert_eq!(
            parallel, serial,
            "{name}: parallel run at {shards} shards diverged from serial"
        );
    }
    serial
}

/// Scenario 1 — bursty (Gilbert–Elliott) loss on the management network.
#[test]
fn det_01_burst_loss_on_mgmt_network() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xC0FFEE),
            mgmt_loss: LossProcess::GilbertElliott {
                p_enter_bad: 0.2,
                p_exit_bad: 0.2,
                loss_good: 0.05,
                loss_bad: 0.95,
            },
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("burst-loss", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
}

/// Scenario 2 — a hard partition of the management network that heals.
#[test]
fn det_02_mgmt_partition() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xBEEF),
            mgmt_partitions: vec![Window { start_ns: 0, end_ns: 2 * MILLIS }],
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("mgmt-partition", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
}

/// Scenario 3 — independent loss of redundant notification copies, with
/// burst drops on uplinks feeding the inter-switch detector.
#[test]
fn det_03_notification_copy_loss() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0x5EED),
            notification_loss: LossProcess::Bernoulli { p: 0.35 },
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("notification-loss", cfg, None, |sim, ft| {
        for s in 0..4 {
            add_flow(sim, ft, s, 4 + s, 1000 + s as u16, 1_000_000);
        }
        for pod in 0..2 {
            let tor = ft.edges[pod][0];
            for port in 0..2 {
                sim.link_direction_mut(tor, port).unwrap().faults.burst_drop =
                    Some(BurstDrop { at_ns: 50_000, count: 4, corrupt: false });
            }
        }
    });
}

/// Scenario 4 — switch-CPU overload with shedding.
#[test]
fn det_04_cpu_overload() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xFEED),
            cpu_overload: vec![OverloadWindow {
                window: Window { start_ns: 0, end_ns: 100 * MILLIS },
                factor: 5_000.0,
            }],
            ..FaultPlan::default()
        },
        cpu_max_backlog_ns: 200 * MICROS,
        enable_dedup: false,
        ..NetSeerConfig::default()
    };
    assert_deterministic("cpu-overload", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.05));
}

/// Scenario 5 — CEBP recirculation and PCIe stall windows.
#[test]
fn det_05_cebp_and_pcie_stalls() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xD1CE),
            cebp_stalls: vec![Window { start_ns: MILLIS, end_ns: 3 * MILLIS }],
            pcie_stalls: vec![Window { start_ns: 2 * MILLIS, end_ns: 5 * MILLIS }],
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("stalls", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
}

/// Scenario 6 — combined chaos: GE loss + notification loss + partition
/// (the `same_seed_reproduces_the_same_chaos` plan).
#[test]
fn det_06_combined_chaos() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(42),
            mgmt_loss: LossProcess::GilbertElliott {
                p_enter_bad: 0.2,
                p_exit_bad: 0.2,
                loss_good: 0.05,
                loss_bad: 0.95,
            },
            notification_loss: LossProcess::Bernoulli { p: 0.2 },
            mgmt_partitions: vec![Window { start_ns: 2 * MILLIS, end_ns: 3 * MILLIS }],
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("combined", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
}

/// Scenario 7 — every switch CPU stops cleanly once, mid-run.
#[test]
fn det_07_clean_restarts() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0xCAFE), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    assert_deterministic(
        "clean-restart",
        cfg,
        Some((seed(0xCAFE), CrashKind::Clean)),
        |sim, ft| drive_lossy_fabric(sim, ft, 0.02),
    );
}

/// Scenario 8 — every switch CPU is hard-killed once (WAL tail lost).
#[test]
fn det_08_hard_kills() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0xDEAD), ..FaultPlan::default() },
        checkpoint_interval_ns: MILLIS,
        ..NetSeerConfig::default()
    };
    assert_deterministic("hard-kill", cfg, Some((seed(0xDEAD), CrashKind::Hard)), |sim, ft| {
        drive_lossy_fabric(sim, ft, 0.02)
    });
}

/// Scenario 9 — restart discontinuities on a clean fabric (gap detectors
/// must re-base identically in serial and parallel runs).
#[test]
fn det_09_restart_discontinuity() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0xAB1E), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    assert_deterministic("rebase", cfg, Some((seed(0xAB1E), CrashKind::Hard)), |sim, ft| {
        drive_lossy_fabric(sim, ft, 0.0)
    });
}

/// Scenario 10 — hard switch-CPU kills under the collector-reconciliation
/// plan, with mid-run control-plane mutation (drop-prob bump at 3 ms):
/// controls are a serial synchronization point the parallel executor must
/// place identically.
#[test]
fn det_10_crashes_with_midrun_control() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0xFA11), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    assert_deterministic(
        "midrun-control",
        cfg,
        Some((seed(0xFA11), CrashKind::Hard)),
        |sim, ft| {
            drive_lossy_fabric(sim, ft, 0.02);
            let tor = ft.edges[1][0];
            sim.schedule_control(3 * MILLIS, move |s| {
                s.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.05;
            });
        },
    );
}

/// Scenario 11 — the bit-flip corruption storm: residual link corruption
/// plus CEBP/notification byte damage. Corruption draws ride per-object
/// RNG streams, so retransmit cascades and quarantine decisions must land
/// identically at every shard count (the `crc_failures` fingerprint field
/// pins this directly).
#[test]
fn det_11_corruption_storm() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xB17F),
            cebp_corruption: CorruptionSpec::bit_flips(1e-3),
            notification_corruption: CorruptionSpec::bit_flips(1e-3),
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    assert_deterministic("corruption-storm", cfg, None, |sim, ft| {
        drive_lossy_fabric(sim, ft, 0.02);
        let tor = ft.edges[0][0];
        for port in 0..2 {
            let dir = sim.link_direction_mut(tor, port).unwrap();
            dir.faults.corrupt_prob = 0.05;
            dir.faults.corrupt_bytes = Some(CorruptionSpec::bit_flips(1e-3));
        }
    });
}

/// Scenario 12 — torn WAL tails under hard kills: the surviving record
/// prefix (and therefore per-restart loss, replay, and the `corrupted`
/// ledger term) must be bit-identical across shard counts.
#[test]
fn det_12_torn_wal_hard_kills() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0x7047),
            torn_wal: CorruptionSpec {
                flip_per_byte: 0.25,
                truncate_prob: 0.5,
                duplicate_prob: 0.0,
            },
            ..FaultPlan::default()
        },
        checkpoint_interval_ns: MILLIS,
        ..NetSeerConfig::default()
    };
    assert_deterministic("torn-wal", cfg, Some((seed(0x7047), CrashKind::Hard)), |sim, ft| {
        drive_lossy_fabric(sim, ft, 0.02)
    });
}

/// Scenario 14 — burst-overload spill-then-drain: the delivered history
/// bursts into a tight-watermark collector, parks in small rotating
/// segments, and drains back out. Peak spill occupancy (`buffered`) joins
/// the fingerprint, so any divergence in the delivered stream — order or
/// content — shows up as a different spill trajectory at some shard count.
#[test]
fn det_14_burst_spill_then_drain() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0x5B14),
            mgmt_loss: LossProcess::GilbertElliott {
                p_enter_bad: 0.2,
                p_exit_bad: 0.2,
                loss_good: 0.05,
                loss_bad: 0.95,
            },
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    let fp = assert_deterministic_with(
        "burst-spill",
        cfg,
        None,
        |sim, ft| drive_lossy_fabric(sim, ft, 0.02),
        SpillDrill::Burst,
    );
    assert!(fp.buffered > 0, "the burst must actually engage the spill");
    assert_eq!(fp.spill_torn, 0, "no crash, no tearing");
}

/// Scenario 15 — hard kill mid-spill with a torn tail: the surviving
/// record prefix, the rewound replay, and the reconciled exactly-once
/// store must all be bit-identical across shard counts (`buffered`,
/// `spill_replayed`, and `spill_torn` pin them in the fingerprint).
#[test]
fn det_15_hard_kill_mid_spill_torn_tail() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0x5B15), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    let fp = assert_deterministic_with(
        "torn-spill",
        cfg,
        None,
        |sim, ft| drive_lossy_fabric(sim, ft, 0.02),
        SpillDrill::TornKill,
    );
    assert!(fp.buffered > 0, "the kill must land mid-spill");
    assert!(fp.spill_torn > 0, "the armed tear must destroy part of the un-fsynced tail");
}

/// Scenario 16 — backpressure widening under sustained overload: the
/// collector's pressure level reaches every switch mid-run (a scheduled
/// control, which the parallel executor must place identically), and the
/// widened stride's skipped flushes join the fingerprint.
#[test]
fn det_16_backpressure_widening() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0x5B16), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    let fp = assert_deterministic_with(
        "backpressure",
        cfg,
        None,
        |sim, ft| {
            drive_lossy_fabric(sim, ft, 0.02);
            sim.schedule_control(3 * MILLIS, |s| {
                for id in s.switch_ids() {
                    monitor_of_mut(s, id).set_backpressure(3);
                }
            });
        },
        SpillDrill::Off,
    );
    assert!(fp.flushes_skipped > 0, "the widened stride must hold partial flushes back");
    assert_eq!(fp.ledger.missing(), 0, "widened batching must not lose accounting");
}

/// Scenario 17 — the hostile-exporter wire storm. Every fingerprint in
/// this file already replays the seeded storm (see [`run_wire_storm`]),
/// so the malformed / quarantine / per-reason reject counters are part of
/// the bit-identical contract at every shard count; this scenario
/// additionally pins that the storm genuinely engages every term it is
/// supposed to.
#[test]
fn det_17_hostile_wire_storm() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0x3117), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    let fp =
        assert_deterministic("wire-storm", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
    let wire = &fp.wire;
    assert!(wire.ledger.malformed > 0, "the storm must book malformed records");
    assert!(wire.ledger.shed_cpu_overload > 0, "the tiny spill budget must refuse");
    assert!(wire.quarantined > 0, "fatal rejects must be quarantined");
    assert_eq!(
        wire.rejects.iter().sum::<u64>(),
        wire.quarantined,
        "every rejected datagram must be counted under exactly one reason"
    );
    assert!(wire.upstream_lost > 0, "dropped datagrams must surface as sequence gaps");
    assert!(!wire.store.is_empty(), "honest records must still reach the store");
}

/// Scenario 18 — the export snapshot itself. Every fingerprint in this
/// file already renders the full Prometheus + OTel snapshot off every
/// stat surface (see [`Fingerprint::export`]), so the encoders'
/// byte-for-byte output is part of the bit-identical contract at every
/// shard count; this scenario additionally pins that the snapshot is
/// well-formed and that the conservation identity can be re-derived
/// from the scraped text alone — the exporter as oracle.
#[test]
fn det_18_export_snapshot_joins_the_fingerprint() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xE690),
            notification_loss: LossProcess::Bernoulli { p: 0.2 },
            cebp_corruption: CorruptionSpec::bit_flips(1e-3),
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    let fp = assert_deterministic("export", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
    let doc = parse_exposition(&fp.export.prometheus)
        .expect("the snapshot must parse as Prometheus text v0.0.4");
    assert!(validate_json(&fp.export.otel), "the OTel snapshot must be valid JSON");
    assert_eq!(fp.export.rendered_at_ns, HORIZON, "timestamps are sim time, never wall clock");

    // Re-derive the fleet conservation identity from the scraped text
    // and check it against the in-memory ledger term by term.
    let get = |name: &str| {
        doc.value(name, &[("scope", "fleet")])
            .unwrap_or_else(|| panic!("scraped output missing {name}"))
    };
    assert_eq!(get("fet_events_generated_total"), fp.ledger.generated as f64);
    let shed: f64 = doc
        .samples
        .iter()
        .filter(|s| {
            s.name == "fet_events_shed_total"
                && s.labels.iter().any(|(k, v)| k == "scope" && v == "fleet")
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(shed, fp.ledger.shed_total() as f64);
    assert_eq!(
        get("fet_events_generated_total"),
        get("fet_events_delivered_total")
            + shed
            + get("fet_events_pending")
            + get("fet_events_buffered")
            + get("fet_events_lost_to_crash_total")
            + get("fet_events_corrupted_total")
            + get("fet_events_malformed_total"),
        "the scraped fleet identity must balance"
    );
    // The wire storm's scrape is in the same snapshot under its own scope.
    assert_eq!(
        doc.value("fet_events_generated_total", &[("scope", "wire")]),
        Some(fp.wire.ledger.generated as f64)
    );
    // The scrape discipline keeps cardinality well under the caps: the
    // registry must never have refused anything.
    assert_eq!(doc.value("fet_export_series_rejected_total", &[]), Some(0.0));
    assert_eq!(doc.value("fet_export_families_rejected_total", &[]), Some(0.0));
}

/// Scenario 19 — the cross-shard synchronization counters themselves.
/// Epoch/ring statistics depend on the shard count, so they stay out of
/// the serial-vs-parallel [`Fingerprint`]; the contract they *do* carry
/// is that they are a pure function of (scenario, shard count, ring
/// capacity). Two runs of the same configuration must agree exactly —
/// on the counters and on every simulation observable — under the same
/// `CHAOS_SEED` / `FET_RING_CAP` matrix legs CI sweeps.
#[test]
fn det_19_sync_stats_deterministic_per_configuration() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xD19),
            notification_loss: LossProcess::Bernoulli { p: 0.2 },
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    for shards in SHARD_COUNTS {
        let run = || {
            let (mut sim, ft) = setup(cfg());
            drive_lossy_fabric(&mut sim, &ft, 0.02);
            sim.run_until_parallel(HORIZON, shards);
            (
                fleet_ledger(&sim),
                delivered_history(&sim),
                sim.gt.events().to_vec(),
                sim.sync_stats(),
            )
        };
        let (ledger_a, delivered_a, gt_a, sync_a) = run();
        let (ledger_b, delivered_b, gt_b, sync_b) = run();
        assert_eq!(ledger_a, ledger_b, "{shards} shards: ledgers diverged between identical runs");
        assert_eq!(delivered_a, delivered_b, "{shards} shards: delivered stream diverged");
        assert_eq!(gt_a, gt_b, "{shards} shards: ground truth diverged");
        assert_eq!(
            sync_a, sync_b,
            "{shards} shards: sync counters must be a pure function of the configuration"
        );
        if shards > 1 {
            assert!(sync_a.segments > 0, "{shards} shards: no segments recorded");
            assert!(sync_a.epochs_executed > 0, "{shards} shards: no epochs recorded");
            assert!(sync_a.ring_messages > 0, "{shards} shards: no cross-shard traffic");
        } else {
            assert_eq!(
                sync_a,
                fet_netsim::SyncStats::default(),
                "1 shard delegates to the serial engine and must record no sync work"
            );
        }
    }
}

/// Scenario 20 — the fleet-wide clock storm: every device draws a wrong
/// clock (offset, drift, steps, and a freeze probability) from the fault
/// plan's dedicated RNG stream. The skewed stamps flow through CEBP
/// batches, the WAL, and the delivered history — all already in the
/// fingerprint — and the per-device clock fingerprints join it
/// explicitly, so a single divergent draw at any shard count fails the
/// sweep. On top, an event-time engine over the (skewed) delivered
/// history must be reproducible and balanced.
#[test]
fn det_20_clock_storm() {
    use netseer::faults::ClockSpec;

    let spec = ClockSpec {
        offset_ns: 200 * MICROS,
        drift_ppm: 500,
        step_every_ns: 5 * MILLIS,
        step_ns: 50 * MICROS,
        freeze_prob: 0.2,
        freeze_after_ns: 4 * MILLIS,
    };
    let cfg = || NetSeerConfig {
        faults: FaultPlan {
            seed: seed(0xC20),
            clock: spec,
            notification_loss: LossProcess::Bernoulli { p: 0.2 },
            ..FaultPlan::default()
        },
        ..NetSeerConfig::default()
    };
    let fp =
        assert_deterministic("clock-storm", cfg, None, |sim, ft| drive_lossy_fabric(sim, ft, 0.02));
    assert!(
        fp.clock_fingerprints.iter().any(|&f| f != 0),
        "the storm must arm device clocks: {:?}",
        fp.clock_fingerprints
    );
    assert!(
        fp.clock_fingerprints.iter().filter(|&&f| f != 0).count() > 1,
        "offset/drift draws must differ across the fleet"
    );

    // Event-time analytics over the skewed history: same input, same
    // config, bit-identical engine state — and the extended ledger
    // identity (late terms included) holds after the flush.
    let run_engine = || {
        let mut collector = Collector::new();
        let mut engine = AnalyticsEngine::new(
            AnalyticsConfig {
                lateness_bound_ns: 2 * spec.max_abs_skew_ns(HORIZON) + 10 * MICROS,
                reorder_cap: 4096,
                ..AnalyticsConfig::default()
            },
            fet_analytics::LinkMap::default(),
        );
        engine.attach(&mut collector);
        collector.ingest(&fp.delivered);
        engine.poll(&mut collector);
        engine.flush();
        let ledger = engine.ledger();
        ledger.assert_balanced();
        assert_eq!(ledger.pending_reorder, 0, "flush must drain the reorder buffers");
        (ledger, engine.totals(), engine.top_flows(32))
    };
    assert_eq!(run_engine(), run_engine(), "event-time analytics must be reproducible");
}

/// Scenario 13 — watchdog supervision of wedged monitors: checks are
/// controls and the restart is a dynamically-scheduled control, both of
/// which the parallel executor must place identically.
#[test]
fn det_13_watchdog_restarts() {
    let cfg = || NetSeerConfig {
        faults: FaultPlan { seed: seed(0xD06), ..FaultPlan::default() },
        ..NetSeerConfig::default()
    };
    assert_deterministic("watchdog", cfg, None, |sim, ft| {
        drive_lossy_fabric(sim, ft, 0.02);
        let switches = sim.switch_ids();
        let victims = [switches[0], switches[switches.len() / 2]];
        for (i, &v) in victims.iter().enumerate() {
            schedule_wedge(sim, v, 3 * MILLIS + 100 * MICROS * (i as u64 + 1));
        }
        // The log is observable through the fingerprint (epochs, ledgers,
        // delivered history all shift if supervision diverges).
        let _ = schedule_watchdog(sim, &switches, WatchdogConfig::default(), HORIZON);
    });
}
