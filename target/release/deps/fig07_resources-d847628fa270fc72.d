/root/repo/target/release/deps/fig07_resources-d847628fa270fc72.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/release/deps/fig07_resources-d847628fa270fc72: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
