/root/repo/target/release/deps/fig08a_case_study-5fdaff7481f3dcf2.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/release/deps/fig08a_case_study-5fdaff7481f3dcf2: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
