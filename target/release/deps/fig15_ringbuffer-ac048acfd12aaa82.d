/root/repo/target/release/deps/fig15_ringbuffer-ac048acfd12aaa82.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/release/deps/fig15_ringbuffer-ac048acfd12aaa82: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
