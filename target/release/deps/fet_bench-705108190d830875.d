/root/repo/target/release/deps/fet_bench-705108190d830875.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/fet_bench-705108190d830875: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
