/root/repo/target/release/deps/fig07_resources-81633263db663b39.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/release/deps/fig07_resources-81633263db663b39: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
