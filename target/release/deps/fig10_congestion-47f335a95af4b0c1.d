/root/repo/target/release/deps/fig10_congestion-47f335a95af4b0c1.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/release/deps/fig10_congestion-47f335a95af4b0c1: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
