/root/repo/target/release/deps/fig03_drop_stats-16d876d55d19df61.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/release/deps/fig03_drop_stats-16d876d55d19df61: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
