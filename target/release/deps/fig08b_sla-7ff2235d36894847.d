/root/repo/target/release/deps/fig08b_sla-7ff2235d36894847.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/release/deps/fig08b_sla-7ff2235d36894847: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
