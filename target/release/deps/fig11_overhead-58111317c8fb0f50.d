/root/repo/target/release/deps/fig11_overhead-58111317c8fb0f50.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/release/deps/fig11_overhead-58111317c8fb0f50: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
