/root/repo/target/release/deps/fig10_congestion-88b839f5608f711e.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/release/deps/fig10_congestion-88b839f5608f711e: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
