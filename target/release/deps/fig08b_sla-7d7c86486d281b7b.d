/root/repo/target/release/deps/fig08b_sla-7d7c86486d281b7b.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/release/deps/fig08b_sla-7d7c86486d281b7b: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
