/root/repo/target/release/deps/fig08a_case_study-16aa5cb6882e298b.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/release/deps/fig08a_case_study-16aa5cb6882e298b: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
