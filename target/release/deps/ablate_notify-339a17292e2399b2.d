/root/repo/target/release/deps/ablate_notify-339a17292e2399b2.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/release/deps/ablate_notify-339a17292e2399b2: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
