/root/repo/target/release/deps/fig09_coverage-cd3afb225910831b.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/release/deps/fig09_coverage-cd3afb225910831b: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
