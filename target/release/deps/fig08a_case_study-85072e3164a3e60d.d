/root/repo/target/release/deps/fig08a_case_study-85072e3164a3e60d.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/release/deps/fig08a_case_study-85072e3164a3e60d: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
