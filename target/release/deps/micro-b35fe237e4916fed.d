/root/repo/target/release/deps/micro-b35fe237e4916fed.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-b35fe237e4916fed: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
