/root/repo/target/release/deps/fig13_per_step-dc46cda69e053465.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/release/deps/fig13_per_step-dc46cda69e053465: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
