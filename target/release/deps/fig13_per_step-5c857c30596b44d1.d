/root/repo/target/release/deps/fig13_per_step-5c857c30596b44d1.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/release/deps/fig13_per_step-5c857c30596b44d1: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
