/root/repo/target/release/deps/fig03_drop_stats-9aacee3ae2921d0f.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/release/deps/fig03_drop_stats-9aacee3ae2921d0f: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
