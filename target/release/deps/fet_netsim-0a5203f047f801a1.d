/root/repo/target/release/deps/fet_netsim-0a5203f047f801a1.d: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

/root/repo/target/release/deps/libfet_netsim-0a5203f047f801a1.rlib: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

/root/repo/target/release/deps/libfet_netsim-0a5203f047f801a1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

crates/netsim/src/lib.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/host.rs:
crates/netsim/src/link.rs:
crates/netsim/src/mmu.rs:
crates/netsim/src/monitor.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/switchdev.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/tracer.rs:
