/root/repo/target/release/deps/ablate_dedup-b3c1cd92dae05d5d.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/release/deps/ablate_dedup-b3c1cd92dae05d5d: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
