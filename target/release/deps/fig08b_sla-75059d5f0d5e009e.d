/root/repo/target/release/deps/fig08b_sla-75059d5f0d5e009e.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/release/deps/fig08b_sla-75059d5f0d5e009e: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
