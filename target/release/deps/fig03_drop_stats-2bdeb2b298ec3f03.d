/root/repo/target/release/deps/fig03_drop_stats-2bdeb2b298ec3f03.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/release/deps/fig03_drop_stats-2bdeb2b298ec3f03: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
