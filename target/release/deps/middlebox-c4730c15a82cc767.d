/root/repo/target/release/deps/middlebox-c4730c15a82cc767.d: tests/middlebox.rs

/root/repo/target/release/deps/middlebox-c4730c15a82cc767: tests/middlebox.rs

tests/middlebox.rs:
