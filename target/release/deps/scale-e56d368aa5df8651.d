/root/repo/target/release/deps/scale-e56d368aa5df8651.d: tests/scale.rs

/root/repo/target/release/deps/scale-e56d368aa5df8651: tests/scale.rs

tests/scale.rs:
