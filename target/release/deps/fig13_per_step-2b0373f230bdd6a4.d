/root/repo/target/release/deps/fig13_per_step-2b0373f230bdd6a4.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/release/deps/fig13_per_step-2b0373f230bdd6a4: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
