/root/repo/target/release/deps/fig15_ringbuffer-de4d711cbe929a9d.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/release/deps/fig15_ringbuffer-de4d711cbe929a9d: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
