/root/repo/target/release/deps/netseer_repro-128aeebbfd96babd.d: src/lib.rs

/root/repo/target/release/deps/libnetseer_repro-128aeebbfd96babd.rlib: src/lib.rs

/root/repo/target/release/deps/libnetseer_repro-128aeebbfd96babd.rmeta: src/lib.rs

src/lib.rs:
