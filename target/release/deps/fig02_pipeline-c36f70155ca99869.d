/root/repo/target/release/deps/fig02_pipeline-c36f70155ca99869.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/release/deps/fig02_pipeline-c36f70155ca99869: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
