/root/repo/target/release/deps/fig02_pipeline-c6a8a7fda1df7f75.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/release/deps/fig02_pipeline-c6a8a7fda1df7f75: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
