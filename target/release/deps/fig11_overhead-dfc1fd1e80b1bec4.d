/root/repo/target/release/deps/fig11_overhead-dfc1fd1e80b1bec4.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/release/deps/fig11_overhead-dfc1fd1e80b1bec4: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
