/root/repo/target/release/deps/fig16_analytics-89b7c262595ea640.d: crates/bench/src/bin/fig16_analytics.rs

/root/repo/target/release/deps/fig16_analytics-89b7c262595ea640: crates/bench/src/bin/fig16_analytics.rs

crates/bench/src/bin/fig16_analytics.rs:
