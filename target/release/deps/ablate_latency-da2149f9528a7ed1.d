/root/repo/target/release/deps/ablate_latency-da2149f9528a7ed1.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/release/deps/ablate_latency-da2149f9528a7ed1: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
