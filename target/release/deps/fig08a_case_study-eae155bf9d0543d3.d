/root/repo/target/release/deps/fig08a_case_study-eae155bf9d0543d3.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/release/deps/fig08a_case_study-eae155bf9d0543d3: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
