/root/repo/target/release/deps/fig15_ringbuffer-13e03c9c1a045152.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/release/deps/fig15_ringbuffer-13e03c9c1a045152: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
