/root/repo/target/release/deps/fig11_overhead-da5d780208e66d22.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/release/deps/fig11_overhead-da5d780208e66d22: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
