/root/repo/target/release/deps/chaos-281936f6d9a7b23d.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-281936f6d9a7b23d: tests/chaos.rs

tests/chaos.rs:
