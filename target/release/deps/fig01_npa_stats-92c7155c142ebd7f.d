/root/repo/target/release/deps/fig01_npa_stats-92c7155c142ebd7f.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/release/deps/fig01_npa_stats-92c7155c142ebd7f: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
