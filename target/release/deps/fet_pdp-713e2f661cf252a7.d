/root/repo/target/release/deps/fet_pdp-713e2f661cf252a7.d: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs

/root/repo/target/release/deps/libfet_pdp-713e2f661cf252a7.rlib: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs

/root/repo/target/release/deps/libfet_pdp-713e2f661cf252a7.rmeta: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs

crates/pdp/src/lib.rs:
crates/pdp/src/channel.rs:
crates/pdp/src/hash.rs:
crates/pdp/src/layout.rs:
crates/pdp/src/phv.rs:
crates/pdp/src/register.rs:
crates/pdp/src/resources.rs:
crates/pdp/src/table.rs:
