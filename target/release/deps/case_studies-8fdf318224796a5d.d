/root/repo/target/release/deps/case_studies-8fdf318224796a5d.d: tests/case_studies.rs

/root/repo/target/release/deps/case_studies-8fdf318224796a5d: tests/case_studies.rs

tests/case_studies.rs:
