/root/repo/target/release/deps/fig11_overhead-854709ba8dd30168.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/release/deps/fig11_overhead-854709ba8dd30168: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
