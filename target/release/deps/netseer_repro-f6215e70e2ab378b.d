/root/repo/target/release/deps/netseer_repro-f6215e70e2ab378b.d: src/lib.rs

/root/repo/target/release/deps/netseer_repro-f6215e70e2ab378b: src/lib.rs

src/lib.rs:
