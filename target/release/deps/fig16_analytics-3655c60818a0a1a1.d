/root/repo/target/release/deps/fig16_analytics-3655c60818a0a1a1.d: crates/bench/src/bin/fig16_analytics.rs

/root/repo/target/release/deps/fig16_analytics-3655c60818a0a1a1: crates/bench/src/bin/fig16_analytics.rs

crates/bench/src/bin/fig16_analytics.rs:
