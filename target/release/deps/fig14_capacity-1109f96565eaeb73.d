/root/repo/target/release/deps/fig14_capacity-1109f96565eaeb73.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/release/deps/fig14_capacity-1109f96565eaeb73: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
