/root/repo/target/release/deps/fig09_coverage-40b090fe6b9a6ae0.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/release/deps/fig09_coverage-40b090fe6b9a6ae0: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
