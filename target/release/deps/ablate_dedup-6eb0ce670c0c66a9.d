/root/repo/target/release/deps/ablate_dedup-6eb0ce670c0c66a9.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/release/deps/ablate_dedup-6eb0ce670c0c66a9: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
