/root/repo/target/release/deps/baseline_monitors-6e94269c2134d9f7.d: tests/baseline_monitors.rs

/root/repo/target/release/deps/baseline_monitors-6e94269c2134d9f7: tests/baseline_monitors.rs

tests/baseline_monitors.rs:
