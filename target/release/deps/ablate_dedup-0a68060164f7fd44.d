/root/repo/target/release/deps/ablate_dedup-0a68060164f7fd44.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/release/deps/ablate_dedup-0a68060164f7fd44: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
