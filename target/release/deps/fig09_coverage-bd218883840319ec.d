/root/repo/target/release/deps/fig09_coverage-bd218883840319ec.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/release/deps/fig09_coverage-bd218883840319ec: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
