/root/repo/target/release/deps/ablate_latency-204bea9ad883cfbc.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/release/deps/ablate_latency-204bea9ad883cfbc: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
