/root/repo/target/release/deps/netseer_repro-52794f00d48bf2d4.d: src/lib.rs

/root/repo/target/release/deps/libnetseer_repro-52794f00d48bf2d4.rlib: src/lib.rs

/root/repo/target/release/deps/libnetseer_repro-52794f00d48bf2d4.rmeta: src/lib.rs

src/lib.rs:
