/root/repo/target/release/deps/fig08b_sla-529573b8f2312760.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/release/deps/fig08b_sla-529573b8f2312760: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
