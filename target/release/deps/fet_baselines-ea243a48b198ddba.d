/root/repo/target/release/deps/fet_baselines-ea243a48b198ddba.d: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

/root/repo/target/release/deps/libfet_baselines-ea243a48b198ddba.rlib: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

/root/repo/target/release/deps/libfet_baselines-ea243a48b198ddba.rmeta: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/everflow.rs:
crates/baselines/src/netsight.rs:
crates/baselines/src/observe.rs:
crates/baselines/src/pingmesh.rs:
crates/baselines/src/sampling.rs:
crates/baselines/src/snmp.rs:
