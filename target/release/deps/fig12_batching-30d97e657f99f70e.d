/root/repo/target/release/deps/fig12_batching-30d97e657f99f70e.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/release/deps/fig12_batching-30d97e657f99f70e: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
