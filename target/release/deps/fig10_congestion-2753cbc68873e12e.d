/root/repo/target/release/deps/fig10_congestion-2753cbc68873e12e.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/release/deps/fig10_congestion-2753cbc68873e12e: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
