/root/repo/target/release/deps/fig01_npa_stats-ba7b63e0ed23678e.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/release/deps/fig01_npa_stats-ba7b63e0ed23678e: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
