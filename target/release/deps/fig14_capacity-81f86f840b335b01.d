/root/repo/target/release/deps/fig14_capacity-81f86f840b335b01.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/release/deps/fig14_capacity-81f86f840b335b01: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
