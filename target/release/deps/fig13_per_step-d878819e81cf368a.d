/root/repo/target/release/deps/fig13_per_step-d878819e81cf368a.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/release/deps/fig13_per_step-d878819e81cf368a: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
