/root/repo/target/release/deps/pfc_and_pause-47f1057d31225116.d: tests/pfc_and_pause.rs

/root/repo/target/release/deps/pfc_and_pause-47f1057d31225116: tests/pfc_and_pause.rs

tests/pfc_and_pause.rs:
