/root/repo/target/release/deps/fig12_batching-fba17a73ef90e320.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/release/deps/fig12_batching-fba17a73ef90e320: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
