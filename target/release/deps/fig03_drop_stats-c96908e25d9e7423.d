/root/repo/target/release/deps/fig03_drop_stats-c96908e25d9e7423.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/release/deps/fig03_drop_stats-c96908e25d9e7423: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
