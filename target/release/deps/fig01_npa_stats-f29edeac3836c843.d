/root/repo/target/release/deps/fig01_npa_stats-f29edeac3836c843.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/release/deps/fig01_npa_stats-f29edeac3836c843: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
