/root/repo/target/release/deps/fig02_pipeline-2926c555c0b01db2.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/release/deps/fig02_pipeline-2926c555c0b01db2: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
