/root/repo/target/release/deps/fet_workloads-12cc2b31b8e52e9e.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

/root/repo/target/release/deps/libfet_workloads-12cc2b31b8e52e9e.rlib: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

/root/repo/target/release/deps/libfet_workloads-12cc2b31b8e52e9e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/scenarios.rs:
crates/workloads/src/tickets.rs:
