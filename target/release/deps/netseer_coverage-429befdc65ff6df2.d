/root/repo/target/release/deps/netseer_coverage-429befdc65ff6df2.d: tests/netseer_coverage.rs

/root/repo/target/release/deps/netseer_coverage-429befdc65ff6df2: tests/netseer_coverage.rs

tests/netseer_coverage.rs:
