/root/repo/target/release/deps/ablate_notify-4c22b610588b52e8.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/release/deps/ablate_notify-4c22b610588b52e8: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
