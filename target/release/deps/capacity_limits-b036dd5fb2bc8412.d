/root/repo/target/release/deps/capacity_limits-b036dd5fb2bc8412.d: tests/capacity_limits.rs

/root/repo/target/release/deps/capacity_limits-b036dd5fb2bc8412: tests/capacity_limits.rs

tests/capacity_limits.rs:
