/root/repo/target/release/deps/ablate_dedup-c1d274a37aeea834.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/release/deps/ablate_dedup-c1d274a37aeea834: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
