/root/repo/target/release/deps/fig07_resources-da9daf2c30e2977f.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/release/deps/fig07_resources-da9daf2c30e2977f: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
