/root/repo/target/release/deps/fig14_capacity-4000d883b73bddcd.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/release/deps/fig14_capacity-4000d883b73bddcd: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
