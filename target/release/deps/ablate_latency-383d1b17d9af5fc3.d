/root/repo/target/release/deps/ablate_latency-383d1b17d9af5fc3.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/release/deps/ablate_latency-383d1b17d9af5fc3: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
