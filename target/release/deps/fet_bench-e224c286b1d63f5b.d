/root/repo/target/release/deps/fet_bench-e224c286b1d63f5b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfet_bench-e224c286b1d63f5b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfet_bench-e224c286b1d63f5b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
