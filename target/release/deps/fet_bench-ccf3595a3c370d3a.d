/root/repo/target/release/deps/fet_bench-ccf3595a3c370d3a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfet_bench-ccf3595a3c370d3a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfet_bench-ccf3595a3c370d3a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
