/root/repo/target/release/deps/fig07_resources-bb18be7ec98fe30a.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/release/deps/fig07_resources-bb18be7ec98fe30a: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
