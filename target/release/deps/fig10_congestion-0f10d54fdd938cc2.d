/root/repo/target/release/deps/fig10_congestion-0f10d54fdd938cc2.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/release/deps/fig10_congestion-0f10d54fdd938cc2: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
