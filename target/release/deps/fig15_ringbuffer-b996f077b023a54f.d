/root/repo/target/release/deps/fig15_ringbuffer-b996f077b023a54f.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/release/deps/fig15_ringbuffer-b996f077b023a54f: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
