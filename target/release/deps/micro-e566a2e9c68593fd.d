/root/repo/target/release/deps/micro-e566a2e9c68593fd.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-e566a2e9c68593fd: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
