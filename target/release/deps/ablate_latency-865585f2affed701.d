/root/repo/target/release/deps/ablate_latency-865585f2affed701.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/release/deps/ablate_latency-865585f2affed701: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
