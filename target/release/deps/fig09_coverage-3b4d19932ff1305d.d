/root/repo/target/release/deps/fig09_coverage-3b4d19932ff1305d.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/release/deps/fig09_coverage-3b4d19932ff1305d: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
