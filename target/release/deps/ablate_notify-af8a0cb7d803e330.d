/root/repo/target/release/deps/ablate_notify-af8a0cb7d803e330.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/release/deps/ablate_notify-af8a0cb7d803e330: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
