/root/repo/target/release/deps/fet_analytics-604e028291b610bd.d: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

/root/repo/target/release/deps/libfet_analytics-604e028291b610bd.rlib: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

/root/repo/target/release/deps/libfet_analytics-604e028291b610bd.rmeta: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

crates/analytics/src/lib.rs:
crates/analytics/src/correlate.rs:
crates/analytics/src/engine.rs:
crates/analytics/src/shard.rs:
crates/analytics/src/sla.rs:
crates/analytics/src/topk.rs:
crates/analytics/src/window.rs:
crates/analytics/src/wire.rs:
