/root/repo/target/release/deps/fig12_batching-ba90b09307a42df6.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/release/deps/fig12_batching-ba90b09307a42df6: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
