/root/repo/target/release/deps/ablate_notify-dc84fb2148cad389.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/release/deps/ablate_notify-dc84fb2148cad389: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
