/root/repo/target/release/deps/extensions-573911aab508c5e2.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-573911aab508c5e2: tests/extensions.rs

tests/extensions.rs:
