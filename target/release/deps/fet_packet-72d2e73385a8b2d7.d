/root/repo/target/release/deps/fet_packet-72d2e73385a8b2d7.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/release/deps/libfet_packet-72d2e73385a8b2d7.rlib: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/release/deps/libfet_packet-72d2e73385a8b2d7.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/cebp.rs:
crates/packet/src/checksum.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/event.rs:
crates/packet/src/flow.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/notification.rs:
crates/packet/src/pfc.rs:
crates/packet/src/seqtag.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
