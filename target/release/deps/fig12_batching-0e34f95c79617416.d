/root/repo/target/release/deps/fig12_batching-0e34f95c79617416.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/release/deps/fig12_batching-0e34f95c79617416: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
