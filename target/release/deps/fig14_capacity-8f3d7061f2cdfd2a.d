/root/repo/target/release/deps/fig14_capacity-8f3d7061f2cdfd2a.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/release/deps/fig14_capacity-8f3d7061f2cdfd2a: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
