/root/repo/target/release/deps/fig01_npa_stats-d1b78e14de062b58.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/release/deps/fig01_npa_stats-d1b78e14de062b58: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
