/root/repo/target/release/deps/fet_bench-9502103338cd7763.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/fet_bench-9502103338cd7763: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
