/root/repo/target/release/deps/fig02_pipeline-84f5bff7292fe569.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/release/deps/fig02_pipeline-84f5bff7292fe569: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
