/root/repo/target/release/examples/crash_recovery-38976e991fda44f0.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-38976e991fda44f0: examples/crash_recovery.rs

examples/crash_recovery.rs:
