/root/repo/target/release/examples/chaos_drill-fe13933ac7e660b2.d: examples/chaos_drill.rs

/root/repo/target/release/examples/chaos_drill-fe13933ac7e660b2: examples/chaos_drill.rs

examples/chaos_drill.rs:
