/root/repo/target/release/examples/incast_congestion-b715ce932d609a0b.d: examples/incast_congestion.rs

/root/repo/target/release/examples/incast_congestion-b715ce932d609a0b: examples/incast_congestion.rs

examples/incast_congestion.rs:
