/root/repo/target/release/examples/chaos_drill-8c15a4cd9d04bc88.d: examples/chaos_drill.rs

/root/repo/target/release/examples/chaos_drill-8c15a4cd9d04bc88: examples/chaos_drill.rs

examples/chaos_drill.rs:
