/root/repo/target/release/examples/silent_drop_hunt-87e39a2ff3ecae45.d: examples/silent_drop_hunt.rs

/root/repo/target/release/examples/silent_drop_hunt-87e39a2ff3ecae45: examples/silent_drop_hunt.rs

examples/silent_drop_hunt.rs:
