/root/repo/target/release/examples/analytics_pipeline-f027bfaba5a4e9d4.d: examples/analytics_pipeline.rs

/root/repo/target/release/examples/analytics_pipeline-f027bfaba5a4e9d4: examples/analytics_pipeline.rs

examples/analytics_pipeline.rs:
