/root/repo/target/release/examples/sla_violations-96bed058008bd6b5.d: examples/sla_violations.rs

/root/repo/target/release/examples/sla_violations-96bed058008bd6b5: examples/sla_violations.rs

examples/sla_violations.rs:
