/root/repo/target/release/examples/crash_recovery-0df6054bd3b14d81.d: examples/crash_recovery.rs

/root/repo/target/release/examples/crash_recovery-0df6054bd3b14d81: examples/crash_recovery.rs

examples/crash_recovery.rs:
