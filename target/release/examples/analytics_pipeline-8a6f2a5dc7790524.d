/root/repo/target/release/examples/analytics_pipeline-8a6f2a5dc7790524.d: examples/analytics_pipeline.rs

/root/repo/target/release/examples/analytics_pipeline-8a6f2a5dc7790524: examples/analytics_pipeline.rs

examples/analytics_pipeline.rs:
