/root/repo/target/release/examples/quickstart-12479c9e4d101239.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-12479c9e4d101239: examples/quickstart.rs

examples/quickstart.rs:
