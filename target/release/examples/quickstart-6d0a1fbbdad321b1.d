/root/repo/target/release/examples/quickstart-6d0a1fbbdad321b1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6d0a1fbbdad321b1: examples/quickstart.rs

examples/quickstart.rs:
