/root/repo/target/release/examples/firewall_bump-362a4e50a0235b51.d: examples/firewall_bump.rs

/root/repo/target/release/examples/firewall_bump-362a4e50a0235b51: examples/firewall_bump.rs

examples/firewall_bump.rs:
