/root/repo/target/debug/examples/silent_drop_hunt-c3e605c016ff79e5.d: examples/silent_drop_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libsilent_drop_hunt-c3e605c016ff79e5.rmeta: examples/silent_drop_hunt.rs Cargo.toml

examples/silent_drop_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
