/root/repo/target/debug/examples/quickstart-457aa59f10507ce8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-457aa59f10507ce8: examples/quickstart.rs

examples/quickstart.rs:
