/root/repo/target/debug/examples/incast_congestion-6209609c73c01b26.d: examples/incast_congestion.rs Cargo.toml

/root/repo/target/debug/examples/libincast_congestion-6209609c73c01b26.rmeta: examples/incast_congestion.rs Cargo.toml

examples/incast_congestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
