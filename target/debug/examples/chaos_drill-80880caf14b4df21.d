/root/repo/target/debug/examples/chaos_drill-80880caf14b4df21.d: examples/chaos_drill.rs

/root/repo/target/debug/examples/chaos_drill-80880caf14b4df21: examples/chaos_drill.rs

examples/chaos_drill.rs:
