/root/repo/target/debug/examples/silent_drop_hunt-7d332b9826031f8a.d: examples/silent_drop_hunt.rs

/root/repo/target/debug/examples/silent_drop_hunt-7d332b9826031f8a: examples/silent_drop_hunt.rs

examples/silent_drop_hunt.rs:
