/root/repo/target/debug/examples/silent_drop_hunt-03186b5f3d47a509.d: examples/silent_drop_hunt.rs

/root/repo/target/debug/examples/silent_drop_hunt-03186b5f3d47a509: examples/silent_drop_hunt.rs

examples/silent_drop_hunt.rs:
