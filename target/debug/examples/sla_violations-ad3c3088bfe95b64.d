/root/repo/target/debug/examples/sla_violations-ad3c3088bfe95b64.d: examples/sla_violations.rs Cargo.toml

/root/repo/target/debug/examples/libsla_violations-ad3c3088bfe95b64.rmeta: examples/sla_violations.rs Cargo.toml

examples/sla_violations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
