/root/repo/target/debug/examples/incast_congestion-82168407f7abf1e1.d: examples/incast_congestion.rs Cargo.toml

/root/repo/target/debug/examples/libincast_congestion-82168407f7abf1e1.rmeta: examples/incast_congestion.rs Cargo.toml

examples/incast_congestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
