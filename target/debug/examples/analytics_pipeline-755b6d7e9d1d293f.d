/root/repo/target/debug/examples/analytics_pipeline-755b6d7e9d1d293f.d: examples/analytics_pipeline.rs

/root/repo/target/debug/examples/analytics_pipeline-755b6d7e9d1d293f: examples/analytics_pipeline.rs

examples/analytics_pipeline.rs:
