/root/repo/target/debug/examples/sla_violations-b9b44ea7049c6c7f.d: examples/sla_violations.rs

/root/repo/target/debug/examples/sla_violations-b9b44ea7049c6c7f: examples/sla_violations.rs

examples/sla_violations.rs:
