/root/repo/target/debug/examples/quickstart-9db8e7a2c9755056.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9db8e7a2c9755056: examples/quickstart.rs

examples/quickstart.rs:
