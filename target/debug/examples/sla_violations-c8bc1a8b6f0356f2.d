/root/repo/target/debug/examples/sla_violations-c8bc1a8b6f0356f2.d: examples/sla_violations.rs

/root/repo/target/debug/examples/sla_violations-c8bc1a8b6f0356f2: examples/sla_violations.rs

examples/sla_violations.rs:
