/root/repo/target/debug/examples/analytics_pipeline-5a958e0209c748b7.d: examples/analytics_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libanalytics_pipeline-5a958e0209c748b7.rmeta: examples/analytics_pipeline.rs Cargo.toml

examples/analytics_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
