/root/repo/target/debug/examples/crash_recovery-5fd0c44335bd4985.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-5fd0c44335bd4985: examples/crash_recovery.rs

examples/crash_recovery.rs:
