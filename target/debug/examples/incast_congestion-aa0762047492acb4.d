/root/repo/target/debug/examples/incast_congestion-aa0762047492acb4.d: examples/incast_congestion.rs

/root/repo/target/debug/examples/incast_congestion-aa0762047492acb4: examples/incast_congestion.rs

examples/incast_congestion.rs:
