/root/repo/target/debug/examples/crash_recovery-65482ed272e777e3.d: examples/crash_recovery.rs

/root/repo/target/debug/examples/crash_recovery-65482ed272e777e3: examples/crash_recovery.rs

examples/crash_recovery.rs:
