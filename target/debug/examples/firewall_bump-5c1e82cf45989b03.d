/root/repo/target/debug/examples/firewall_bump-5c1e82cf45989b03.d: examples/firewall_bump.rs Cargo.toml

/root/repo/target/debug/examples/libfirewall_bump-5c1e82cf45989b03.rmeta: examples/firewall_bump.rs Cargo.toml

examples/firewall_bump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
