/root/repo/target/debug/examples/chaos_drill-dca7c07dbec035d4.d: examples/chaos_drill.rs

/root/repo/target/debug/examples/chaos_drill-dca7c07dbec035d4: examples/chaos_drill.rs

examples/chaos_drill.rs:
