/root/repo/target/debug/examples/chaos_drill-face37a4d52de258.d: examples/chaos_drill.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_drill-face37a4d52de258.rmeta: examples/chaos_drill.rs Cargo.toml

examples/chaos_drill.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
