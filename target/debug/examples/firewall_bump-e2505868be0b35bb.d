/root/repo/target/debug/examples/firewall_bump-e2505868be0b35bb.d: examples/firewall_bump.rs

/root/repo/target/debug/examples/firewall_bump-e2505868be0b35bb: examples/firewall_bump.rs

examples/firewall_bump.rs:
