/root/repo/target/debug/examples/incast_congestion-bd49f35fcd8fd708.d: examples/incast_congestion.rs

/root/repo/target/debug/examples/incast_congestion-bd49f35fcd8fd708: examples/incast_congestion.rs

examples/incast_congestion.rs:
