/root/repo/target/debug/examples/firewall_bump-fff47df8831c3eff.d: examples/firewall_bump.rs

/root/repo/target/debug/examples/firewall_bump-fff47df8831c3eff: examples/firewall_bump.rs

examples/firewall_bump.rs:
