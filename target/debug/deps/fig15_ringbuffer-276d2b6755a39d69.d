/root/repo/target/debug/deps/fig15_ringbuffer-276d2b6755a39d69.d: crates/bench/src/bin/fig15_ringbuffer.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_ringbuffer-276d2b6755a39d69.rmeta: crates/bench/src/bin/fig15_ringbuffer.rs Cargo.toml

crates/bench/src/bin/fig15_ringbuffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
