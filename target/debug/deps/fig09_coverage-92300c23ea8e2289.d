/root/repo/target/debug/deps/fig09_coverage-92300c23ea8e2289.d: crates/bench/src/bin/fig09_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_coverage-92300c23ea8e2289.rmeta: crates/bench/src/bin/fig09_coverage.rs Cargo.toml

crates/bench/src/bin/fig09_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
