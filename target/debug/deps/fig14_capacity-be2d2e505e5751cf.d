/root/repo/target/debug/deps/fig14_capacity-be2d2e505e5751cf.d: crates/bench/src/bin/fig14_capacity.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_capacity-be2d2e505e5751cf.rmeta: crates/bench/src/bin/fig14_capacity.rs Cargo.toml

crates/bench/src/bin/fig14_capacity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
