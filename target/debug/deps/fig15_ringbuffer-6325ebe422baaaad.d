/root/repo/target/debug/deps/fig15_ringbuffer-6325ebe422baaaad.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/debug/deps/fig15_ringbuffer-6325ebe422baaaad: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
