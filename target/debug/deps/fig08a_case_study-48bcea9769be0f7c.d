/root/repo/target/debug/deps/fig08a_case_study-48bcea9769be0f7c.d: crates/bench/src/bin/fig08a_case_study.rs Cargo.toml

/root/repo/target/debug/deps/libfig08a_case_study-48bcea9769be0f7c.rmeta: crates/bench/src/bin/fig08a_case_study.rs Cargo.toml

crates/bench/src/bin/fig08a_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
