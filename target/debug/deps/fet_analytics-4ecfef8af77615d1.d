/root/repo/target/debug/deps/fet_analytics-4ecfef8af77615d1.d: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libfet_analytics-4ecfef8af77615d1.rmeta: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs Cargo.toml

crates/analytics/src/lib.rs:
crates/analytics/src/correlate.rs:
crates/analytics/src/engine.rs:
crates/analytics/src/shard.rs:
crates/analytics/src/sla.rs:
crates/analytics/src/topk.rs:
crates/analytics/src/window.rs:
crates/analytics/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
