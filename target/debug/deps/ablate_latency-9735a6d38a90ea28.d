/root/repo/target/debug/deps/ablate_latency-9735a6d38a90ea28.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/debug/deps/ablate_latency-9735a6d38a90ea28: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
