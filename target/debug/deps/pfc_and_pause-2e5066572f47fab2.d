/root/repo/target/debug/deps/pfc_and_pause-2e5066572f47fab2.d: tests/pfc_and_pause.rs

/root/repo/target/debug/deps/pfc_and_pause-2e5066572f47fab2: tests/pfc_and_pause.rs

tests/pfc_and_pause.rs:
