/root/repo/target/debug/deps/fig07_resources-4745641de53f3911.d: crates/bench/src/bin/fig07_resources.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_resources-4745641de53f3911.rmeta: crates/bench/src/bin/fig07_resources.rs Cargo.toml

crates/bench/src/bin/fig07_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
