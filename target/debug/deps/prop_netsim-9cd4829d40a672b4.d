/root/repo/target/debug/deps/prop_netsim-9cd4829d40a672b4.d: crates/netsim/tests/prop_netsim.rs

/root/repo/target/debug/deps/prop_netsim-9cd4829d40a672b4: crates/netsim/tests/prop_netsim.rs

crates/netsim/tests/prop_netsim.rs:
