/root/repo/target/debug/deps/fet_analytics-a0dafaf1ec050fed.d: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

/root/repo/target/debug/deps/libfet_analytics-a0dafaf1ec050fed.rlib: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

/root/repo/target/debug/deps/libfet_analytics-a0dafaf1ec050fed.rmeta: crates/analytics/src/lib.rs crates/analytics/src/correlate.rs crates/analytics/src/engine.rs crates/analytics/src/shard.rs crates/analytics/src/sla.rs crates/analytics/src/topk.rs crates/analytics/src/window.rs crates/analytics/src/wire.rs

crates/analytics/src/lib.rs:
crates/analytics/src/correlate.rs:
crates/analytics/src/engine.rs:
crates/analytics/src/shard.rs:
crates/analytics/src/sla.rs:
crates/analytics/src/topk.rs:
crates/analytics/src/window.rs:
crates/analytics/src/wire.rs:
