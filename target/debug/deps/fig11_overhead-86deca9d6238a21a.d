/root/repo/target/debug/deps/fig11_overhead-86deca9d6238a21a.d: crates/bench/src/bin/fig11_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_overhead-86deca9d6238a21a.rmeta: crates/bench/src/bin/fig11_overhead.rs Cargo.toml

crates/bench/src/bin/fig11_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
