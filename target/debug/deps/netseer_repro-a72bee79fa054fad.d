/root/repo/target/debug/deps/netseer_repro-a72bee79fa054fad.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer_repro-a72bee79fa054fad.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
