/root/repo/target/debug/deps/fig12_batching-599cace925860eae.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/debug/deps/fig12_batching-599cace925860eae: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
