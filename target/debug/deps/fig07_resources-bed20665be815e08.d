/root/repo/target/debug/deps/fig07_resources-bed20665be815e08.d: crates/bench/src/bin/fig07_resources.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_resources-bed20665be815e08.rmeta: crates/bench/src/bin/fig07_resources.rs Cargo.toml

crates/bench/src/bin/fig07_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
