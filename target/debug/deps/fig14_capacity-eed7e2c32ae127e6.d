/root/repo/target/debug/deps/fig14_capacity-eed7e2c32ae127e6.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/debug/deps/fig14_capacity-eed7e2c32ae127e6: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
