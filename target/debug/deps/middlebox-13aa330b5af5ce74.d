/root/repo/target/debug/deps/middlebox-13aa330b5af5ce74.d: tests/middlebox.rs Cargo.toml

/root/repo/target/debug/deps/libmiddlebox-13aa330b5af5ce74.rmeta: tests/middlebox.rs Cargo.toml

tests/middlebox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
