/root/repo/target/debug/deps/fig08a_case_study-6cf25ca28c8244bd.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/debug/deps/fig08a_case_study-6cf25ca28c8244bd: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
