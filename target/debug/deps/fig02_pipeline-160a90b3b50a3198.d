/root/repo/target/debug/deps/fig02_pipeline-160a90b3b50a3198.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/debug/deps/fig02_pipeline-160a90b3b50a3198: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
