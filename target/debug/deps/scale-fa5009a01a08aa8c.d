/root/repo/target/debug/deps/scale-fa5009a01a08aa8c.d: tests/scale.rs

/root/repo/target/debug/deps/scale-fa5009a01a08aa8c: tests/scale.rs

tests/scale.rs:
