/root/repo/target/debug/deps/fig11_overhead-51dc1e076f87a6d3.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/debug/deps/fig11_overhead-51dc1e076f87a6d3: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
