/root/repo/target/debug/deps/baseline_monitors-8c8cfcda751f2b30.d: tests/baseline_monitors.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_monitors-8c8cfcda751f2b30.rmeta: tests/baseline_monitors.rs Cargo.toml

tests/baseline_monitors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
