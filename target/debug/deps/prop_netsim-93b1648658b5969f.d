/root/repo/target/debug/deps/prop_netsim-93b1648658b5969f.d: crates/netsim/tests/prop_netsim.rs Cargo.toml

/root/repo/target/debug/deps/libprop_netsim-93b1648658b5969f.rmeta: crates/netsim/tests/prop_netsim.rs Cargo.toml

crates/netsim/tests/prop_netsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
