/root/repo/target/debug/deps/prop_roundtrip-ae3c31b19daf1abc.d: crates/packet/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-ae3c31b19daf1abc.rmeta: crates/packet/tests/prop_roundtrip.rs Cargo.toml

crates/packet/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
