/root/repo/target/debug/deps/capacity_limits-3d0d129ad0dbc186.d: tests/capacity_limits.rs

/root/repo/target/debug/deps/capacity_limits-3d0d129ad0dbc186: tests/capacity_limits.rs

tests/capacity_limits.rs:
