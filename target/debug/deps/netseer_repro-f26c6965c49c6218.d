/root/repo/target/debug/deps/netseer_repro-f26c6965c49c6218.d: src/lib.rs

/root/repo/target/debug/deps/libnetseer_repro-f26c6965c49c6218.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetseer_repro-f26c6965c49c6218.rmeta: src/lib.rs

src/lib.rs:
