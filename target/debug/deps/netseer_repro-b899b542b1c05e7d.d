/root/repo/target/debug/deps/netseer_repro-b899b542b1c05e7d.d: src/lib.rs

/root/repo/target/debug/deps/netseer_repro-b899b542b1c05e7d: src/lib.rs

src/lib.rs:
