/root/repo/target/debug/deps/baseline_monitors-307774f8e2c0b77b.d: tests/baseline_monitors.rs

/root/repo/target/debug/deps/baseline_monitors-307774f8e2c0b77b: tests/baseline_monitors.rs

tests/baseline_monitors.rs:
