/root/repo/target/debug/deps/extensions-7c937c83ce26e8f6.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-7c937c83ce26e8f6: tests/extensions.rs

tests/extensions.rs:
