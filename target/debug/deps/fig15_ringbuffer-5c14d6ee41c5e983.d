/root/repo/target/debug/deps/fig15_ringbuffer-5c14d6ee41c5e983.d: crates/bench/src/bin/fig15_ringbuffer.rs

/root/repo/target/debug/deps/fig15_ringbuffer-5c14d6ee41c5e983: crates/bench/src/bin/fig15_ringbuffer.rs

crates/bench/src/bin/fig15_ringbuffer.rs:
