/root/repo/target/debug/deps/fig02_pipeline-d5f3f15160bb7e9d.d: crates/bench/src/bin/fig02_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_pipeline-d5f3f15160bb7e9d.rmeta: crates/bench/src/bin/fig02_pipeline.rs Cargo.toml

crates/bench/src/bin/fig02_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
