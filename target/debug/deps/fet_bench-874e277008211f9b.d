/root/repo/target/debug/deps/fet_bench-874e277008211f9b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfet_bench-874e277008211f9b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
