/root/repo/target/debug/deps/extensions-e77dae09f7878d93.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-e77dae09f7878d93: tests/extensions.rs

tests/extensions.rs:
