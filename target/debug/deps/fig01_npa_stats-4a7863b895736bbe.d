/root/repo/target/debug/deps/fig01_npa_stats-4a7863b895736bbe.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/debug/deps/fig01_npa_stats-4a7863b895736bbe: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
