/root/repo/target/debug/deps/fig07_resources-d6322b27fe4b33f4.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/debug/deps/fig07_resources-d6322b27fe4b33f4: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
