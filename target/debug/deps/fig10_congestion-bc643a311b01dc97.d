/root/repo/target/debug/deps/fig10_congestion-bc643a311b01dc97.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/debug/deps/fig10_congestion-bc643a311b01dc97: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
