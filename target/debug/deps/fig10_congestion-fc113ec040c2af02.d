/root/repo/target/debug/deps/fig10_congestion-fc113ec040c2af02.d: crates/bench/src/bin/fig10_congestion.rs

/root/repo/target/debug/deps/fig10_congestion-fc113ec040c2af02: crates/bench/src/bin/fig10_congestion.rs

crates/bench/src/bin/fig10_congestion.rs:
