/root/repo/target/debug/deps/case_studies-08f4b0658ffb6dc6.d: tests/case_studies.rs Cargo.toml

/root/repo/target/debug/deps/libcase_studies-08f4b0658ffb6dc6.rmeta: tests/case_studies.rs Cargo.toml

tests/case_studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
