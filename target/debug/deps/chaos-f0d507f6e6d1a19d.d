/root/repo/target/debug/deps/chaos-f0d507f6e6d1a19d.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-f0d507f6e6d1a19d: tests/chaos.rs

tests/chaos.rs:
