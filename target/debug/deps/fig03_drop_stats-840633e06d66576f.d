/root/repo/target/debug/deps/fig03_drop_stats-840633e06d66576f.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/debug/deps/fig03_drop_stats-840633e06d66576f: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
