/root/repo/target/debug/deps/fig08a_case_study-c4526e02a8646125.d: crates/bench/src/bin/fig08a_case_study.rs Cargo.toml

/root/repo/target/debug/deps/libfig08a_case_study-c4526e02a8646125.rmeta: crates/bench/src/bin/fig08a_case_study.rs Cargo.toml

crates/bench/src/bin/fig08a_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
