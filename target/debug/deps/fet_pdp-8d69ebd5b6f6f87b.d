/root/repo/target/debug/deps/fet_pdp-8d69ebd5b6f6f87b.d: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libfet_pdp-8d69ebd5b6f6f87b.rmeta: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs Cargo.toml

crates/pdp/src/lib.rs:
crates/pdp/src/channel.rs:
crates/pdp/src/hash.rs:
crates/pdp/src/layout.rs:
crates/pdp/src/phv.rs:
crates/pdp/src/register.rs:
crates/pdp/src/resources.rs:
crates/pdp/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
