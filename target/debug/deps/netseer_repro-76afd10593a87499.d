/root/repo/target/debug/deps/netseer_repro-76afd10593a87499.d: src/lib.rs

/root/repo/target/debug/deps/netseer_repro-76afd10593a87499: src/lib.rs

src/lib.rs:
