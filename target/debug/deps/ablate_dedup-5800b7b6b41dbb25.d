/root/repo/target/debug/deps/ablate_dedup-5800b7b6b41dbb25.d: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

/root/repo/target/debug/deps/libablate_dedup-5800b7b6b41dbb25.rmeta: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

crates/bench/src/bin/ablate_dedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
