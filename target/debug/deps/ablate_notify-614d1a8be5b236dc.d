/root/repo/target/debug/deps/ablate_notify-614d1a8be5b236dc.d: crates/bench/src/bin/ablate_notify.rs Cargo.toml

/root/repo/target/debug/deps/libablate_notify-614d1a8be5b236dc.rmeta: crates/bench/src/bin/ablate_notify.rs Cargo.toml

crates/bench/src/bin/ablate_notify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
