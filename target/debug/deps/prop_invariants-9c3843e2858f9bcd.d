/root/repo/target/debug/deps/prop_invariants-9c3843e2858f9bcd.d: crates/core/tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-9c3843e2858f9bcd: crates/core/tests/prop_invariants.rs

crates/core/tests/prop_invariants.rs:
