/root/repo/target/debug/deps/netseer_repro-fb0b34259a487724.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer_repro-fb0b34259a487724.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
