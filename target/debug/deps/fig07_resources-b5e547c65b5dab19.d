/root/repo/target/debug/deps/fig07_resources-b5e547c65b5dab19.d: crates/bench/src/bin/fig07_resources.rs

/root/repo/target/debug/deps/fig07_resources-b5e547c65b5dab19: crates/bench/src/bin/fig07_resources.rs

crates/bench/src/bin/fig07_resources.rs:
