/root/repo/target/debug/deps/prop_roundtrip-85f699fb72054356.d: crates/packet/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-85f699fb72054356: crates/packet/tests/prop_roundtrip.rs

crates/packet/tests/prop_roundtrip.rs:
