/root/repo/target/debug/deps/fig11_overhead-4c2c10afd5484306.d: crates/bench/src/bin/fig11_overhead.rs

/root/repo/target/debug/deps/fig11_overhead-4c2c10afd5484306: crates/bench/src/bin/fig11_overhead.rs

crates/bench/src/bin/fig11_overhead.rs:
