/root/repo/target/debug/deps/fig12_batching-c6bf1ea57b974a6c.d: crates/bench/src/bin/fig12_batching.rs

/root/repo/target/debug/deps/fig12_batching-c6bf1ea57b974a6c: crates/bench/src/bin/fig12_batching.rs

crates/bench/src/bin/fig12_batching.rs:
