/root/repo/target/debug/deps/fig03_drop_stats-84f667032c8d064f.d: crates/bench/src/bin/fig03_drop_stats.rs Cargo.toml

/root/repo/target/debug/deps/libfig03_drop_stats-84f667032c8d064f.rmeta: crates/bench/src/bin/fig03_drop_stats.rs Cargo.toml

crates/bench/src/bin/fig03_drop_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
