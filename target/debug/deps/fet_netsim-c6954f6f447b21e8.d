/root/repo/target/debug/deps/fet_netsim-c6954f6f447b21e8.d: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

/root/repo/target/debug/deps/libfet_netsim-c6954f6f447b21e8.rlib: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

/root/repo/target/debug/deps/libfet_netsim-c6954f6f447b21e8.rmeta: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

crates/netsim/src/lib.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/host.rs:
crates/netsim/src/link.rs:
crates/netsim/src/mmu.rs:
crates/netsim/src/monitor.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/switchdev.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/tracer.rs:
