/root/repo/target/debug/deps/prop_tables-0e4d93b10ea85183.d: crates/pdp/tests/prop_tables.rs Cargo.toml

/root/repo/target/debug/deps/libprop_tables-0e4d93b10ea85183.rmeta: crates/pdp/tests/prop_tables.rs Cargo.toml

crates/pdp/tests/prop_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
