/root/repo/target/debug/deps/fig12_batching-9678948e26502d1c.d: crates/bench/src/bin/fig12_batching.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_batching-9678948e26502d1c.rmeta: crates/bench/src/bin/fig12_batching.rs Cargo.toml

crates/bench/src/bin/fig12_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
