/root/repo/target/debug/deps/ablate_dedup-add39b1f040b3aeb.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/debug/deps/ablate_dedup-add39b1f040b3aeb: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
