/root/repo/target/debug/deps/chaos-4c4fef7a4b20dd0e.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-4c4fef7a4b20dd0e.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
