/root/repo/target/debug/deps/ablate_latency-cd2e55c2e73fc934.d: crates/bench/src/bin/ablate_latency.rs Cargo.toml

/root/repo/target/debug/deps/libablate_latency-cd2e55c2e73fc934.rmeta: crates/bench/src/bin/ablate_latency.rs Cargo.toml

crates/bench/src/bin/ablate_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
