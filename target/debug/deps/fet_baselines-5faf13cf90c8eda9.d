/root/repo/target/debug/deps/fet_baselines-5faf13cf90c8eda9.d: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs Cargo.toml

/root/repo/target/debug/deps/libfet_baselines-5faf13cf90c8eda9.rmeta: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/everflow.rs:
crates/baselines/src/netsight.rs:
crates/baselines/src/observe.rs:
crates/baselines/src/pingmesh.rs:
crates/baselines/src/sampling.rs:
crates/baselines/src/snmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
