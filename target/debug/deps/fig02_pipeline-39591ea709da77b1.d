/root/repo/target/debug/deps/fig02_pipeline-39591ea709da77b1.d: crates/bench/src/bin/fig02_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_pipeline-39591ea709da77b1.rmeta: crates/bench/src/bin/fig02_pipeline.rs Cargo.toml

crates/bench/src/bin/fig02_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
