/root/repo/target/debug/deps/middlebox-9f5789fc62c28ff4.d: tests/middlebox.rs Cargo.toml

/root/repo/target/debug/deps/libmiddlebox-9f5789fc62c28ff4.rmeta: tests/middlebox.rs Cargo.toml

tests/middlebox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
