/root/repo/target/debug/deps/fet_workloads-07cd967a526aa45b.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

/root/repo/target/debug/deps/fet_workloads-07cd967a526aa45b: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/scenarios.rs:
crates/workloads/src/tickets.rs:
