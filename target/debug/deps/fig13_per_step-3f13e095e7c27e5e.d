/root/repo/target/debug/deps/fig13_per_step-3f13e095e7c27e5e.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/debug/deps/fig13_per_step-3f13e095e7c27e5e: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
