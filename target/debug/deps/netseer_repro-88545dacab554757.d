/root/repo/target/debug/deps/netseer_repro-88545dacab554757.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer_repro-88545dacab554757.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
