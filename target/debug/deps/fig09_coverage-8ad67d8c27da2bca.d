/root/repo/target/debug/deps/fig09_coverage-8ad67d8c27da2bca.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/debug/deps/fig09_coverage-8ad67d8c27da2bca: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
