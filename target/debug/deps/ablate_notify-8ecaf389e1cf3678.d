/root/repo/target/debug/deps/ablate_notify-8ecaf389e1cf3678.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/debug/deps/ablate_notify-8ecaf389e1cf3678: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
