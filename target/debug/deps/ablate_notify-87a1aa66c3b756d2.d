/root/repo/target/debug/deps/ablate_notify-87a1aa66c3b756d2.d: crates/bench/src/bin/ablate_notify.rs

/root/repo/target/debug/deps/ablate_notify-87a1aa66c3b756d2: crates/bench/src/bin/ablate_notify.rs

crates/bench/src/bin/ablate_notify.rs:
