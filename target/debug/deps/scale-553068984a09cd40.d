/root/repo/target/debug/deps/scale-553068984a09cd40.d: tests/scale.rs

/root/repo/target/debug/deps/scale-553068984a09cd40: tests/scale.rs

tests/scale.rs:
