/root/repo/target/debug/deps/pfc_and_pause-7d7f1f3087c6169e.d: tests/pfc_and_pause.rs Cargo.toml

/root/repo/target/debug/deps/libpfc_and_pause-7d7f1f3087c6169e.rmeta: tests/pfc_and_pause.rs Cargo.toml

tests/pfc_and_pause.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
