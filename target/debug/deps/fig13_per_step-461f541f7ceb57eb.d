/root/repo/target/debug/deps/fig13_per_step-461f541f7ceb57eb.d: crates/bench/src/bin/fig13_per_step.rs

/root/repo/target/debug/deps/fig13_per_step-461f541f7ceb57eb: crates/bench/src/bin/fig13_per_step.rs

crates/bench/src/bin/fig13_per_step.rs:
