/root/repo/target/debug/deps/scale-69fde60b5656ea16.d: tests/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-69fde60b5656ea16.rmeta: tests/scale.rs Cargo.toml

tests/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
