/root/repo/target/debug/deps/fig08b_sla-c258af877c3c3785.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/debug/deps/fig08b_sla-c258af877c3c3785: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
