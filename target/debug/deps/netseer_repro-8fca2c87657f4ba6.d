/root/repo/target/debug/deps/netseer_repro-8fca2c87657f4ba6.d: src/lib.rs

/root/repo/target/debug/deps/libnetseer_repro-8fca2c87657f4ba6.rlib: src/lib.rs

/root/repo/target/debug/deps/libnetseer_repro-8fca2c87657f4ba6.rmeta: src/lib.rs

src/lib.rs:
