/root/repo/target/debug/deps/ablate_latency-dc4e1264832dbefd.d: crates/bench/src/bin/ablate_latency.rs

/root/repo/target/debug/deps/ablate_latency-dc4e1264832dbefd: crates/bench/src/bin/ablate_latency.rs

crates/bench/src/bin/ablate_latency.rs:
