/root/repo/target/debug/deps/analytics-f380bc94c2b626f2.d: tests/analytics.rs

/root/repo/target/debug/deps/analytics-f380bc94c2b626f2: tests/analytics.rs

tests/analytics.rs:
