/root/repo/target/debug/deps/chaos-3619c062a82aa4b8.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-3619c062a82aa4b8: tests/chaos.rs

tests/chaos.rs:
