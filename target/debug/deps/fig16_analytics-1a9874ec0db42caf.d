/root/repo/target/debug/deps/fig16_analytics-1a9874ec0db42caf.d: crates/bench/src/bin/fig16_analytics.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_analytics-1a9874ec0db42caf.rmeta: crates/bench/src/bin/fig16_analytics.rs Cargo.toml

crates/bench/src/bin/fig16_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
