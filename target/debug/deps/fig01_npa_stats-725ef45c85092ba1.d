/root/repo/target/debug/deps/fig01_npa_stats-725ef45c85092ba1.d: crates/bench/src/bin/fig01_npa_stats.rs

/root/repo/target/debug/deps/fig01_npa_stats-725ef45c85092ba1: crates/bench/src/bin/fig01_npa_stats.rs

crates/bench/src/bin/fig01_npa_stats.rs:
