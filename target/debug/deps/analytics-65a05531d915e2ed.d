/root/repo/target/debug/deps/analytics-65a05531d915e2ed.d: tests/analytics.rs Cargo.toml

/root/repo/target/debug/deps/libanalytics-65a05531d915e2ed.rmeta: tests/analytics.rs Cargo.toml

tests/analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
