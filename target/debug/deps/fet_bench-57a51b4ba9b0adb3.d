/root/repo/target/debug/deps/fet_bench-57a51b4ba9b0adb3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfet_bench-57a51b4ba9b0adb3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfet_bench-57a51b4ba9b0adb3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
