/root/repo/target/debug/deps/netseer_coverage-6de496b77e34957b.d: tests/netseer_coverage.rs

/root/repo/target/debug/deps/netseer_coverage-6de496b77e34957b: tests/netseer_coverage.rs

tests/netseer_coverage.rs:
