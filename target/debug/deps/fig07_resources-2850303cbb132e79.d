/root/repo/target/debug/deps/fig07_resources-2850303cbb132e79.d: crates/bench/src/bin/fig07_resources.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_resources-2850303cbb132e79.rmeta: crates/bench/src/bin/fig07_resources.rs Cargo.toml

crates/bench/src/bin/fig07_resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
