/root/repo/target/debug/deps/ablate_dedup-066cedfd64f188bb.d: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

/root/repo/target/debug/deps/libablate_dedup-066cedfd64f188bb.rmeta: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

crates/bench/src/bin/ablate_dedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
