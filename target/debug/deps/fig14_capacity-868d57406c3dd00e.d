/root/repo/target/debug/deps/fig14_capacity-868d57406c3dd00e.d: crates/bench/src/bin/fig14_capacity.rs

/root/repo/target/debug/deps/fig14_capacity-868d57406c3dd00e: crates/bench/src/bin/fig14_capacity.rs

crates/bench/src/bin/fig14_capacity.rs:
