/root/repo/target/debug/deps/fet_bench-307977b25a2521ac.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfet_bench-307977b25a2521ac.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
