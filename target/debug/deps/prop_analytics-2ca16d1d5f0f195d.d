/root/repo/target/debug/deps/prop_analytics-2ca16d1d5f0f195d.d: crates/analytics/tests/prop_analytics.rs

/root/repo/target/debug/deps/prop_analytics-2ca16d1d5f0f195d: crates/analytics/tests/prop_analytics.rs

crates/analytics/tests/prop_analytics.rs:
