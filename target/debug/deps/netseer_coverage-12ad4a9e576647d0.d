/root/repo/target/debug/deps/netseer_coverage-12ad4a9e576647d0.d: tests/netseer_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer_coverage-12ad4a9e576647d0.rmeta: tests/netseer_coverage.rs Cargo.toml

tests/netseer_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
