/root/repo/target/debug/deps/fig03_drop_stats-154e8b5564b904b3.d: crates/bench/src/bin/fig03_drop_stats.rs

/root/repo/target/debug/deps/fig03_drop_stats-154e8b5564b904b3: crates/bench/src/bin/fig03_drop_stats.rs

crates/bench/src/bin/fig03_drop_stats.rs:
