/root/repo/target/debug/deps/prop_tables-a54148a400d71661.d: crates/pdp/tests/prop_tables.rs

/root/repo/target/debug/deps/prop_tables-a54148a400d71661: crates/pdp/tests/prop_tables.rs

crates/pdp/tests/prop_tables.rs:
