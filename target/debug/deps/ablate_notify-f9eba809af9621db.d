/root/repo/target/debug/deps/ablate_notify-f9eba809af9621db.d: crates/bench/src/bin/ablate_notify.rs Cargo.toml

/root/repo/target/debug/deps/libablate_notify-f9eba809af9621db.rmeta: crates/bench/src/bin/ablate_notify.rs Cargo.toml

crates/bench/src/bin/ablate_notify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
