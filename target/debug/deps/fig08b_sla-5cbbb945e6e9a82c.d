/root/repo/target/debug/deps/fig08b_sla-5cbbb945e6e9a82c.d: crates/bench/src/bin/fig08b_sla.rs Cargo.toml

/root/repo/target/debug/deps/libfig08b_sla-5cbbb945e6e9a82c.rmeta: crates/bench/src/bin/fig08b_sla.rs Cargo.toml

crates/bench/src/bin/fig08b_sla.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
