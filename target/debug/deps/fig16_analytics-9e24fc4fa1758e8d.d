/root/repo/target/debug/deps/fig16_analytics-9e24fc4fa1758e8d.d: crates/bench/src/bin/fig16_analytics.rs

/root/repo/target/debug/deps/fig16_analytics-9e24fc4fa1758e8d: crates/bench/src/bin/fig16_analytics.rs

crates/bench/src/bin/fig16_analytics.rs:
