/root/repo/target/debug/deps/ablate_dedup-77cd92e1e2baa144.d: crates/bench/src/bin/ablate_dedup.rs

/root/repo/target/debug/deps/ablate_dedup-77cd92e1e2baa144: crates/bench/src/bin/ablate_dedup.rs

crates/bench/src/bin/ablate_dedup.rs:
