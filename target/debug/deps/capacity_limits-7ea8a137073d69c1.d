/root/repo/target/debug/deps/capacity_limits-7ea8a137073d69c1.d: tests/capacity_limits.rs Cargo.toml

/root/repo/target/debug/deps/libcapacity_limits-7ea8a137073d69c1.rmeta: tests/capacity_limits.rs Cargo.toml

tests/capacity_limits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
