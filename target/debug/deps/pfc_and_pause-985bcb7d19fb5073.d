/root/repo/target/debug/deps/pfc_and_pause-985bcb7d19fb5073.d: tests/pfc_and_pause.rs

/root/repo/target/debug/deps/pfc_and_pause-985bcb7d19fb5073: tests/pfc_and_pause.rs

tests/pfc_and_pause.rs:
