/root/repo/target/debug/deps/netseer_coverage-471f0c0619b5a585.d: tests/netseer_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer_coverage-471f0c0619b5a585.rmeta: tests/netseer_coverage.rs Cargo.toml

tests/netseer_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
