/root/repo/target/debug/deps/fet_bench-252c8ff2f7eba99f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfet_bench-252c8ff2f7eba99f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
