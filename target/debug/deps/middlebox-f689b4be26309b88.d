/root/repo/target/debug/deps/middlebox-f689b4be26309b88.d: tests/middlebox.rs

/root/repo/target/debug/deps/middlebox-f689b4be26309b88: tests/middlebox.rs

tests/middlebox.rs:
