/root/repo/target/debug/deps/fet_baselines-bbe673152861ec00.d: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

/root/repo/target/debug/deps/fet_baselines-bbe673152861ec00: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/everflow.rs:
crates/baselines/src/netsight.rs:
crates/baselines/src/observe.rs:
crates/baselines/src/pingmesh.rs:
crates/baselines/src/sampling.rs:
crates/baselines/src/snmp.rs:
