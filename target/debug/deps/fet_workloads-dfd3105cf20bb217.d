/root/repo/target/debug/deps/fet_workloads-dfd3105cf20bb217.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

/root/repo/target/debug/deps/libfet_workloads-dfd3105cf20bb217.rlib: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

/root/repo/target/debug/deps/libfet_workloads-dfd3105cf20bb217.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/scenarios.rs:
crates/workloads/src/tickets.rs:
