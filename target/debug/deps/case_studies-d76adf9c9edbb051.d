/root/repo/target/debug/deps/case_studies-d76adf9c9edbb051.d: tests/case_studies.rs Cargo.toml

/root/repo/target/debug/deps/libcase_studies-d76adf9c9edbb051.rmeta: tests/case_studies.rs Cargo.toml

tests/case_studies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
