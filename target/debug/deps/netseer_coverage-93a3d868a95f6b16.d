/root/repo/target/debug/deps/netseer_coverage-93a3d868a95f6b16.d: tests/netseer_coverage.rs

/root/repo/target/debug/deps/netseer_coverage-93a3d868a95f6b16: tests/netseer_coverage.rs

tests/netseer_coverage.rs:
