/root/repo/target/debug/deps/fig09_coverage-518416cf9164ed08.d: crates/bench/src/bin/fig09_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_coverage-518416cf9164ed08.rmeta: crates/bench/src/bin/fig09_coverage.rs Cargo.toml

crates/bench/src/bin/fig09_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
