/root/repo/target/debug/deps/fig13_per_step-2445c43e0b4a3fe4.d: crates/bench/src/bin/fig13_per_step.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_per_step-2445c43e0b4a3fe4.rmeta: crates/bench/src/bin/fig13_per_step.rs Cargo.toml

crates/bench/src/bin/fig13_per_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
