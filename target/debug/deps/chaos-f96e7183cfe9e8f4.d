/root/repo/target/debug/deps/chaos-f96e7183cfe9e8f4.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-f96e7183cfe9e8f4: tests/chaos.rs

tests/chaos.rs:
