/root/repo/target/debug/deps/fet_workloads-6f2efa4483db3488.d: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs Cargo.toml

/root/repo/target/debug/deps/libfet_workloads-6f2efa4483db3488.rmeta: crates/workloads/src/lib.rs crates/workloads/src/distributions.rs crates/workloads/src/generator.rs crates/workloads/src/scenarios.rs crates/workloads/src/tickets.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/distributions.rs:
crates/workloads/src/generator.rs:
crates/workloads/src/scenarios.rs:
crates/workloads/src/tickets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
