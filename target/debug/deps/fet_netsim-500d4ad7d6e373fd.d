/root/repo/target/debug/deps/fet_netsim-500d4ad7d6e373fd.d: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

/root/repo/target/debug/deps/fet_netsim-500d4ad7d6e373fd: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs

crates/netsim/src/lib.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/host.rs:
crates/netsim/src/link.rs:
crates/netsim/src/mmu.rs:
crates/netsim/src/monitor.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/switchdev.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/tracer.rs:
