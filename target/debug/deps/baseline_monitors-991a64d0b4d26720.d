/root/repo/target/debug/deps/baseline_monitors-991a64d0b4d26720.d: tests/baseline_monitors.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_monitors-991a64d0b4d26720.rmeta: tests/baseline_monitors.rs Cargo.toml

tests/baseline_monitors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
