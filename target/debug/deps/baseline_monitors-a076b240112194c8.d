/root/repo/target/debug/deps/baseline_monitors-a076b240112194c8.d: tests/baseline_monitors.rs

/root/repo/target/debug/deps/baseline_monitors-a076b240112194c8: tests/baseline_monitors.rs

tests/baseline_monitors.rs:
