/root/repo/target/debug/deps/fet_bench-287e707385babda0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fet_bench-287e707385babda0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
