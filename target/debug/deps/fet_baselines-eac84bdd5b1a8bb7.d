/root/repo/target/debug/deps/fet_baselines-eac84bdd5b1a8bb7.d: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

/root/repo/target/debug/deps/libfet_baselines-eac84bdd5b1a8bb7.rlib: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

/root/repo/target/debug/deps/libfet_baselines-eac84bdd5b1a8bb7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/everflow.rs crates/baselines/src/netsight.rs crates/baselines/src/observe.rs crates/baselines/src/pingmesh.rs crates/baselines/src/sampling.rs crates/baselines/src/snmp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/everflow.rs:
crates/baselines/src/netsight.rs:
crates/baselines/src/observe.rs:
crates/baselines/src/pingmesh.rs:
crates/baselines/src/sampling.rs:
crates/baselines/src/snmp.rs:
