/root/repo/target/debug/deps/fig01_npa_stats-d7f234d1db09c732.d: crates/bench/src/bin/fig01_npa_stats.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_npa_stats-d7f234d1db09c732.rmeta: crates/bench/src/bin/fig01_npa_stats.rs Cargo.toml

crates/bench/src/bin/fig01_npa_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
