/root/repo/target/debug/deps/fig10_congestion-aa7bdd38caeeeab4.d: crates/bench/src/bin/fig10_congestion.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_congestion-aa7bdd38caeeeab4.rmeta: crates/bench/src/bin/fig10_congestion.rs Cargo.toml

crates/bench/src/bin/fig10_congestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
