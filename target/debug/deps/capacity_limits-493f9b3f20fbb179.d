/root/repo/target/debug/deps/capacity_limits-493f9b3f20fbb179.d: tests/capacity_limits.rs

/root/repo/target/debug/deps/capacity_limits-493f9b3f20fbb179: tests/capacity_limits.rs

tests/capacity_limits.rs:
