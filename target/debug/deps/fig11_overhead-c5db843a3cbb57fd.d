/root/repo/target/debug/deps/fig11_overhead-c5db843a3cbb57fd.d: crates/bench/src/bin/fig11_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_overhead-c5db843a3cbb57fd.rmeta: crates/bench/src/bin/fig11_overhead.rs Cargo.toml

crates/bench/src/bin/fig11_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
