/root/repo/target/debug/deps/fet_packet-1b69b578b85e3969.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libfet_packet-1b69b578b85e3969.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/cebp.rs:
crates/packet/src/checksum.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/event.rs:
crates/packet/src/flow.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/notification.rs:
crates/packet/src/pfc.rs:
crates/packet/src/seqtag.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
