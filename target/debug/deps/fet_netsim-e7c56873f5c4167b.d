/root/repo/target/debug/deps/fet_netsim-e7c56873f5c4167b.d: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libfet_netsim-e7c56873f5c4167b.rmeta: crates/netsim/src/lib.rs crates/netsim/src/counters.rs crates/netsim/src/engine.rs crates/netsim/src/host.rs crates/netsim/src/link.rs crates/netsim/src/mmu.rs crates/netsim/src/monitor.rs crates/netsim/src/rng.rs crates/netsim/src/routing.rs crates/netsim/src/switchdev.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/tracer.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/host.rs:
crates/netsim/src/link.rs:
crates/netsim/src/mmu.rs:
crates/netsim/src/monitor.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/routing.rs:
crates/netsim/src/switchdev.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
