/root/repo/target/debug/deps/fet_bench-c8a36ff06c969252.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fet_bench-c8a36ff06c969252: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
