/root/repo/target/debug/deps/fig09_coverage-fed7dea35de2825f.d: crates/bench/src/bin/fig09_coverage.rs

/root/repo/target/debug/deps/fig09_coverage-fed7dea35de2825f: crates/bench/src/bin/fig09_coverage.rs

crates/bench/src/bin/fig09_coverage.rs:
