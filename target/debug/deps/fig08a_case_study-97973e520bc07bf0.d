/root/repo/target/debug/deps/fig08a_case_study-97973e520bc07bf0.d: crates/bench/src/bin/fig08a_case_study.rs

/root/repo/target/debug/deps/fig08a_case_study-97973e520bc07bf0: crates/bench/src/bin/fig08a_case_study.rs

crates/bench/src/bin/fig08a_case_study.rs:
