/root/repo/target/debug/deps/netseer-36f29b3f7f5f72b0.d: crates/core/src/lib.rs crates/core/src/acl_agg.rs crates/core/src/batch.rs crates/core/src/capacity.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dedup.rs crates/core/src/deploy.rs crates/core/src/detect/mod.rs crates/core/src/detect/interswitch.rs crates/core/src/detect/path_change.rs crates/core/src/detect/pause.rs crates/core/src/extract.rs crates/core/src/faults.rs crates/core/src/monitor.rs crates/core/src/recovery.rs crates/core/src/storage.rs crates/core/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libnetseer-36f29b3f7f5f72b0.rmeta: crates/core/src/lib.rs crates/core/src/acl_agg.rs crates/core/src/batch.rs crates/core/src/capacity.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/dedup.rs crates/core/src/deploy.rs crates/core/src/detect/mod.rs crates/core/src/detect/interswitch.rs crates/core/src/detect/path_change.rs crates/core/src/detect/pause.rs crates/core/src/extract.rs crates/core/src/faults.rs crates/core/src/monitor.rs crates/core/src/recovery.rs crates/core/src/storage.rs crates/core/src/transport.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/acl_agg.rs:
crates/core/src/batch.rs:
crates/core/src/capacity.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/dedup.rs:
crates/core/src/deploy.rs:
crates/core/src/detect/mod.rs:
crates/core/src/detect/interswitch.rs:
crates/core/src/detect/path_change.rs:
crates/core/src/detect/pause.rs:
crates/core/src/extract.rs:
crates/core/src/faults.rs:
crates/core/src/monitor.rs:
crates/core/src/recovery.rs:
crates/core/src/storage.rs:
crates/core/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
