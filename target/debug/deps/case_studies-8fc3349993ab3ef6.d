/root/repo/target/debug/deps/case_studies-8fc3349993ab3ef6.d: tests/case_studies.rs

/root/repo/target/debug/deps/case_studies-8fc3349993ab3ef6: tests/case_studies.rs

tests/case_studies.rs:
