/root/repo/target/debug/deps/analytics-dd07d59b92119054.d: tests/analytics.rs

/root/repo/target/debug/deps/analytics-dd07d59b92119054: tests/analytics.rs

tests/analytics.rs:
