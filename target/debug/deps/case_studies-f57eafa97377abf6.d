/root/repo/target/debug/deps/case_studies-f57eafa97377abf6.d: tests/case_studies.rs

/root/repo/target/debug/deps/case_studies-f57eafa97377abf6: tests/case_studies.rs

tests/case_studies.rs:
