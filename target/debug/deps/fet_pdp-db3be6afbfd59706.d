/root/repo/target/debug/deps/fet_pdp-db3be6afbfd59706.d: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs

/root/repo/target/debug/deps/fet_pdp-db3be6afbfd59706: crates/pdp/src/lib.rs crates/pdp/src/channel.rs crates/pdp/src/hash.rs crates/pdp/src/layout.rs crates/pdp/src/phv.rs crates/pdp/src/register.rs crates/pdp/src/resources.rs crates/pdp/src/table.rs

crates/pdp/src/lib.rs:
crates/pdp/src/channel.rs:
crates/pdp/src/hash.rs:
crates/pdp/src/layout.rs:
crates/pdp/src/phv.rs:
crates/pdp/src/register.rs:
crates/pdp/src/resources.rs:
crates/pdp/src/table.rs:
