/root/repo/target/debug/deps/fig02_pipeline-25ddcc91eab9ba9d.d: crates/bench/src/bin/fig02_pipeline.rs

/root/repo/target/debug/deps/fig02_pipeline-25ddcc91eab9ba9d: crates/bench/src/bin/fig02_pipeline.rs

crates/bench/src/bin/fig02_pipeline.rs:
