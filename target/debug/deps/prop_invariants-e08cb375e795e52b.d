/root/repo/target/debug/deps/prop_invariants-e08cb375e795e52b.d: crates/core/tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-e08cb375e795e52b.rmeta: crates/core/tests/prop_invariants.rs Cargo.toml

crates/core/tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
