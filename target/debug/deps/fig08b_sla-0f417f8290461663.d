/root/repo/target/debug/deps/fig08b_sla-0f417f8290461663.d: crates/bench/src/bin/fig08b_sla.rs

/root/repo/target/debug/deps/fig08b_sla-0f417f8290461663: crates/bench/src/bin/fig08b_sla.rs

crates/bench/src/bin/fig08b_sla.rs:
