/root/repo/target/debug/deps/fet_packet-faf68b31c4bff1b5.d: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/libfet_packet-faf68b31c4bff1b5.rlib: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/libfet_packet-faf68b31c4bff1b5.rmeta: crates/packet/src/lib.rs crates/packet/src/builder.rs crates/packet/src/cebp.rs crates/packet/src/checksum.rs crates/packet/src/error.rs crates/packet/src/ethernet.rs crates/packet/src/event.rs crates/packet/src/flow.rs crates/packet/src/ipv4.rs crates/packet/src/notification.rs crates/packet/src/pfc.rs crates/packet/src/seqtag.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/builder.rs:
crates/packet/src/cebp.rs:
crates/packet/src/checksum.rs:
crates/packet/src/error.rs:
crates/packet/src/ethernet.rs:
crates/packet/src/event.rs:
crates/packet/src/flow.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/notification.rs:
crates/packet/src/pfc.rs:
crates/packet/src/seqtag.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
