/root/repo/target/debug/deps/extensions-01f40454703889b6.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-01f40454703889b6.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
