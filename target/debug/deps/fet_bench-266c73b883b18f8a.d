/root/repo/target/debug/deps/fet_bench-266c73b883b18f8a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfet_bench-266c73b883b18f8a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfet_bench-266c73b883b18f8a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
