/root/repo/target/debug/deps/middlebox-f15fdaca2a2d8c03.d: tests/middlebox.rs

/root/repo/target/debug/deps/middlebox-f15fdaca2a2d8c03: tests/middlebox.rs

tests/middlebox.rs:
