/root/repo/target/debug/deps/ablate_dedup-5358be6638682826.d: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

/root/repo/target/debug/deps/libablate_dedup-5358be6638682826.rmeta: crates/bench/src/bin/ablate_dedup.rs Cargo.toml

crates/bench/src/bin/ablate_dedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
