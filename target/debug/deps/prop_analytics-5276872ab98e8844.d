/root/repo/target/debug/deps/prop_analytics-5276872ab98e8844.d: crates/analytics/tests/prop_analytics.rs Cargo.toml

/root/repo/target/debug/deps/libprop_analytics-5276872ab98e8844.rmeta: crates/analytics/tests/prop_analytics.rs Cargo.toml

crates/analytics/tests/prop_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
