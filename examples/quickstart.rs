//! Quickstart: build the paper's testbed topology, deploy NetSeer on
//! every switch and NIC, run traffic past an injected fault, and query the
//! backend like an operator would.
//!
//! Run with: `cargo run --release --example quickstart`

use netseer_repro::fet_netsim::host::FlowSpec;
use netseer_repro::fet_netsim::routing::{install_ecmp_routes, remove_route};
use netseer_repro::fet_netsim::time::{fmt_ns, MILLIS};
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::FlowKey;
use netseer_repro::netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer_repro::netseer::Query;

fn main() {
    // 1. The testbed: 10 switches in a 4-ary fat-tree, 8 servers.
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);

    // 2. NetSeer everywhere: all switches + server SmartNICs.
    deploy(&mut sim, &DeployOptions::default());

    // 3. A customer flow: host 0 (pod 0) talking to host 7 (pod 1).
    let flow = FlowKey::tcp(ft.host_ips[0], 50_000, ft.host_ips[7], 443);
    let src = ft.hosts[0];
    let idx = sim.host_mut(src).add_flow(FlowSpec {
        key: flow,
        total_bytes: 5_000_000,
        pkt_payload: 1000,
        rate_gbps: 5.0,
        start_ns: 0,
        dscp: 0,
    });
    sim.schedule_flow(src, idx);

    // 4. At t = 2 ms, a "memory bit flip" silently corrupts the route for
    //    host 7 on one aggregation switch — the paper's case #3 fault.
    let agg = ft.aggs[0][0];
    let victim_ip = ft.host_ips[7];
    sim.schedule_control(2 * MILLIS, move |s| remove_route(s, agg, victim_ip));

    // 5. Run for 20 ms of simulated time.
    sim.run_until(20 * MILLIS);

    // 6. The operator has the customer's 5-tuple. One query answers
    //    "did the network touch this flow, and where?"
    let store = collect_events(&mut sim);
    println!("backend holds {} events total", store.len());
    let hits = store.query(&Query::any().flow(flow));
    println!("\nevents for the customer flow {flow}:");
    for e in hits.iter().take(10) {
        let name = &sim.switch(e.device).name;
        println!(
            "  t={:<12} device={name:<8} {:<18} counter={} detail={:?}",
            fmt_ns(e.time_ns),
            e.record.ty.to_string(),
            e.record.counter,
            e.record.detail,
        );
    }
    let drops = store
        .query(&Query::any().flow(flow).ty(netseer_repro::fet_packet::EventType::PipelineDrop));
    assert!(!drops.is_empty(), "the blackhole must be visible");
    let device = drops[0].device;
    println!(
        "\n=> diagnosis: pipeline drops (table miss) at '{}' starting {} — \
         the corrupted route.",
        sim.switch(device).name,
        fmt_ns(drops[0].time_ns),
    );
}
