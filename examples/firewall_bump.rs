//! Middlebox triage (paper §3.7): a firewall sits bump-in-the-wire on the
//! path. When RPCs slow down, is it the fabric, the firewall's cables, or
//! the firewall itself running out of steam? With NetSeer's three
//! middlebox principles, one query distinguishes all three.
//!
//! Run with: `cargo run --release --example firewall_bump`

use netseer_repro::fet_netsim::host::{FlowSpec, HostConfig};
use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::switchdev::{ProcessingModel, SwitchConfig};
use netseer_repro::fet_netsim::time::{fmt_ns, MILLIS};
use netseer_repro::fet_netsim::topology::TopologyBuilder;
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::event::DropCode;
use netseer_repro::fet_packet::ipv4::Ipv4Addr;
use netseer_repro::fet_packet::{EventType, FlowKey};
use netseer_repro::netseer::deploy::collect_events;
use netseer_repro::netseer::{NetSeerConfig, NetSeerMonitor, Query, Role};

fn main() {
    // client — sw1 — firewall — sw2 — server, with NetSeer on everything.
    let mut sim = Simulator::new();
    let mut b = TopologyBuilder::new();
    let sw1 = b.switch(&mut sim, "sw1", SwitchConfig::default());
    let sw2 = b.switch(&mut sim, "sw2", SwitchConfig::default());
    // The firewall inspects at most 8 Gbps.
    let fw = b.switch(
        &mut sim,
        "firewall0",
        SwitchConfig {
            processing: Some(ProcessingModel { gbps: 8.0, buffer_bytes: 64 * 1024 }),
            ..SwitchConfig::default()
        },
    );
    let client_ip = Ipv4Addr::from_octets([10, 20, 0, 1]);
    let server_ip = Ipv4Addr::from_octets([10, 20, 0, 2]);
    let client =
        b.host(&mut sim, HostConfig { ip: client_ip, nic_gbps: 25.0, ..Default::default() });
    let server =
        b.host(&mut sim, HostConfig { ip: server_ip, nic_gbps: 25.0, ..Default::default() });
    b.connect(&mut sim, sw1, fw, 25.0, 200, 1);
    b.connect(&mut sim, fw, sw2, 25.0, 200, 2);
    b.connect(&mut sim, sw1, client, 25.0, 200, 3);
    b.connect(&mut sim, sw2, server, 25.0, 200, 4);
    install_ecmp_routes(&mut sim);
    for dev in [sw1, sw2, fw] {
        let m = NetSeerMonitor::new(dev, Role::Switch, NetSeerConfig::default());
        sim.switch_mut(dev).set_monitor(Box::new(m));
        for port in 0..2 {
            sim.switch_mut(dev).tag_ports[port] = true;
        }
    }

    // Backup traffic ramps from polite to firewall-crushing at t = 5 ms.
    let polite = FlowKey::tcp(client_ip, 4000, server_ip, 445);
    let burst = FlowKey::tcp(client_ip, 4001, server_ip, 445);
    for (key, rate, start, bytes) in
        [(polite, 4.0, 0u64, 3_000_000u64), (burst, 20.0, 5 * MILLIS, 20_000_000)]
    {
        let idx = sim.host_mut(client).add_flow(FlowSpec {
            key,
            total_bytes: bytes,
            pkt_payload: 1000,
            rate_gbps: rate,
            start_ns: start,
            dscp: 0,
        });
        sim.schedule_flow(client, idx);
    }
    sim.run_until(40 * MILLIS);

    // The "backups are slow" ticket arrives. Query by the path's devices.
    let store = collect_events(&mut sim);
    println!("events per device:");
    for (dev, ty, n) in store.summarize() {
        println!("  {:<10} {:<18} {n}", sim.switch(dev).name, ty.to_string());
    }

    let fw_drops = store.query(&Query::any().device(fw).ty(EventType::PipelineDrop));
    let overloads: Vec<_> = fw_drops
        .iter()
        .filter(|e| {
            matches!(
                e.record.detail,
                netseer_repro::fet_packet::event::EventDetail::Drop {
                    code: DropCode::Overload,
                    ..
                }
            )
        })
        .collect();
    assert!(!overloads.is_empty());
    let first = overloads.iter().map(|e| e.time_ns).min().unwrap();
    let victims: std::collections::BTreeSet<_> = overloads.iter().map(|e| e.record.flow).collect();
    println!(
        "\n=> verdict: '{}' overload starting {} — not the fabric, not a cable.",
        sim.switch(fw).name,
        fmt_ns(first)
    );
    println!("   victim flows:");
    for v in victims {
        let who = if v == burst { "<- the new backup job" } else { "" };
        println!("     {v} {who}");
    }
    println!("   (fabric exonerated: zero drop/congestion events at sw1 or sw2)");
    for dev in [sw1, sw2] {
        assert!(store.query(&Query::any().device(dev).ty(EventType::PipelineDrop)).is_empty());
    }
}
