//! Crash-recovery drill: hard-kill every switch CPU mid-run, then hard-kill
//! the collector, and audit the recovery contract end to end.
//!
//! What this exercises:
//!
//! * each switch CPU checkpoints its monitor state and WAL-logs the pending
//!   event queue; a hard kill *tears* the un-fsynced WAL tail (bit flips +
//!   truncation mid-flush), per-record CRCs keep the longest valid record
//!   prefix, and the loss is *accounted* (`lost_to_crash`), never silent;
//! * the extended ledger identity holds fleet-wide across the restarts:
//!   `generated == delivered + shed + pending + buffered + lost_to_crash
//!   + corrupted`;
//! * the collector reverts to its last checkpoint on a hard kill; the
//!   reconnect handshake retransmits the uncovered suffix and the
//!   `(device, epoch, seq)` gates dedup the rest — exactly-once end to end;
//! * the same seed reproduces the identical crash schedule, per-restart
//!   loss, and final counters.
//!
//! Run with: `cargo run --release --example crash_recovery`

use netseer_repro::fet_netsim::host::FlowSpec;
use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::{MICROS, MILLIS};
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::FlowKey;
use netseer_repro::netseer::deploy::{deploy, monitor_of, DeployOptions};
use netseer_repro::netseer::faults::seeded_device_crashes;
use netseer_repro::netseer::{
    run_collector_crash_drill, schedule_device_crashes, Collector, CollectorCrash, CorruptionSpec,
    CrashKind, CrashReport, DeliveryLedger, FaultPlan, NetSeerConfig, StoredEvent, Window,
};

struct Outcome {
    ledger: DeliveryLedger,
    reports: Vec<CrashReport>,
    reverted: u64,
    stored: usize,
    delivered_history: usize,
    duplicates_rejected: u64,
    wal_rejected: u64,
}

fn run(seed: u64) -> Outcome {
    let faults = FaultPlan {
        seed,
        // A hard kill lands mid-flush: the un-fsynced WAL tail takes bit
        // flips and truncation, and replay keeps the CRC-valid prefix.
        torn_wal: CorruptionSpec { flip_per_byte: 0.05, truncate_prob: 0.5, duplicate_prob: 0.0 },
        ..FaultPlan::default()
    };
    let cfg = NetSeerConfig {
        faults,
        // A tight checkpoint cadence keeps the hard-kill exposure window
        // (and therefore `lost_to_crash`) small.
        checkpoint_interval_ns: MILLIS,
        ..NetSeerConfig::default()
    };

    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });

    // Cross-pod traffic over lossy uplinks: a steady stream of real events
    // still flowing when the crash windows open.
    for s in 0..8 {
        let key = FlowKey::tcp(ft.host_ips[s], 2000 + s as u16, ft.host_ips[7 - s], 80);
        let h = ft.hosts[s];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 4_000_000,
            pkt_payload: 1000,
            rate_gbps: 5.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.02;
        }
    }

    // Hard-kill every switch CPU once, at a seeded moment in [2 ms, 10 ms);
    // each stays down for 500 µs and then recovers from checkpoint + WAL.
    let crashes = seeded_device_crashes(
        seed,
        &sim.switch_ids(),
        Window { start_ns: 2 * MILLIS, end_ns: 10 * MILLIS },
        500 * MICROS,
        CrashKind::Hard,
    );
    let log = schedule_device_crashes(&mut sim, &crashes);
    sim.run_until(30 * MILLIS);

    // Fleet ledger: every device must balance on its own, crash loss
    // included, before the totals mean anything.
    let mut ledger = DeliveryLedger::default();
    let mut wal_rejected = 0u64;
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    for &id in &ids {
        let m = monitor_of(&sim, id);
        let l = m.ledger();
        l.assert_balanced();
        ledger.generated += l.generated;
        ledger.delivered += l.delivered;
        ledger.shed_stack += l.shed_stack;
        ledger.shed_pcie += l.shed_pcie;
        ledger.shed_cpu_overload += l.shed_cpu_overload;
        ledger.shed_false_positive += l.shed_false_positive;
        ledger.shed_transport += l.shed_transport;
        ledger.pending += l.pending;
        ledger.buffered += l.buffered;
        ledger.lost_to_crash += l.lost_to_crash;
        ledger.corrupted += l.corrupted;
        wal_rejected += m.recovery.wal_records_rejected;
    }

    // Collector drill: checkpoint at the median delivery, hard-kill after
    // the last one, then reconcile via retransmit + epoch/seq dedup.
    let deliveries: Vec<StoredEvent> =
        ids.iter().flat_map(|&id| monitor_of(&sim, id).delivered.iter().copied()).collect();
    let mut times: Vec<u64> = deliveries.iter().map(|e| e.time_ns).collect();
    times.sort_unstable();
    let t_mid = times[times.len() / 2];
    let t_crash = *times.last().unwrap() + 1;

    let mut collector = Collector::new();
    let mid: Vec<StoredEvent> = deliveries.iter().filter(|e| e.time_ns < t_mid).copied().collect();
    collector.ingest(&mid);
    collector.checkpoint();
    let reverted = run_collector_crash_drill(
        &mut collector,
        &deliveries,
        &[CollectorCrash { at_ns: t_crash, kind: CrashKind::Hard }],
    );

    Outcome {
        ledger,
        reports: log.reports(),
        reverted,
        stored: collector.len(),
        delivered_history: deliveries.len(),
        duplicates_rejected: collector.duplicates_rejected(),
        wal_rejected,
    }
}

fn main() {
    let seed = 0x5EED_CAFE;
    let a = run(seed);

    println!("seed {seed:#x}: {} switch-CPU hard kills (torn WAL tails)", a.reports.len());
    println!("  events generated        {}", a.ledger.generated);
    println!("  delivered to backend    {}", a.ledger.delivered);
    println!("  shed at choke points    {}", a.ledger.shed_total());
    println!("  pending in pipeline     {}", a.ledger.pending);
    println!("  buffered in spill       {}", a.ledger.buffered);
    println!("  lost to hard kills      {}", a.ledger.lost_to_crash);
    println!("  corrupted past retries  {}", a.ledger.corrupted);
    println!("  WAL records torn away   {}", a.wal_rejected);
    for r in &a.reports {
        println!(
            "  device {:>2}: killed {:>8} ns, replayed {:>3}, lost {:>3}, epoch {}",
            r.device, r.killed_ns, r.replayed, r.lost, r.epoch
        );
    }
    println!(
        "  collector: {} reverted by the hard kill, {} duplicates rejected, \
         {} of {} events stored",
        a.reverted, a.duplicates_rejected, a.stored, a.delivered_history
    );
    println!(
        "  => identity: {} generated == {} delivered + {} shed + {} pending \
         + {} buffered + {} lost-to-crash + {} corrupted (silently lost: {})",
        a.ledger.generated,
        a.ledger.delivered,
        a.ledger.shed_total(),
        a.ledger.pending,
        a.ledger.buffered,
        a.ledger.lost_to_crash,
        a.ledger.corrupted,
        a.ledger.missing()
    );

    // The recovery contract, asserted.
    assert_eq!(a.ledger.missing(), 0, "crash loss must be accounted, never silent");
    for r in &a.reports {
        assert!(r.lost <= r.pending_at_kill, "loss is bounded by the pending set");
        assert_eq!(r.replayed + r.lost, r.pending_at_kill, "replay + loss covers it");
    }
    assert!(a.reverted > 0, "the hard kill must actually revert ingested work");
    assert_eq!(a.stored, a.delivered_history, "exactly-once after reconciliation");

    // Reproducibility: the same seed reproduces the identical outcome.
    let b = run(seed);
    assert_eq!(a.ledger, b.ledger, "same seed, same ledger");
    assert_eq!(a.reports, b.reports, "same seed, same crash reports");
    assert_eq!(a.stored, b.stored, "same seed, same reconciled store");
    println!("\nsame seed reproduced the identical recovery — drill passed.");
}
