//! Chaos drill: run NetSeer through a compound failure — bursty loss on
//! the management network, a hard partition that heals, lost loss-
//! notification copies, a switch-CPU overload window, and byte corruption
//! on the reporting path — all from one seeded [`FaultPlan`], and audit
//! the delivery ledger afterwards.
//!
//! The contract under test: every generated event is delivered, shed at a
//! named choke point, still pending, or counted as corrupted-beyond-
//! retransmit. Nothing disappears silently, and the same seed reproduces
//! the same run bit-for-bit.
//!
//! Run with: `cargo run --release --example chaos_drill`

use netseer_repro::fet_netsim::host::FlowSpec;
use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::{MICROS, MILLIS};
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::FlowKey;
use netseer_repro::netseer::deploy::{deploy, monitor_of, DeployOptions};
use netseer_repro::netseer::faults::OverloadWindow;
use netseer_repro::netseer::{
    CorruptionSpec, DeliveryLedger, FaultPlan, LossProcess, NetSeerConfig, Window,
};

fn run(seed: u64) -> DeliveryLedger {
    let faults = FaultPlan {
        seed,
        // The mgmt network flaps in bursts (Gilbert–Elliott)...
        mgmt_loss: LossProcess::GilbertElliott {
            p_enter_bad: 0.1,
            p_exit_bad: 0.2,
            loss_good: 0.02,
            loss_bad: 0.9,
        },
        // ...and is hard-partitioned for the first 2 ms.
        mgmt_partitions: vec![Window { start_ns: 0, end_ns: 2 * MILLIS }],
        // Each redundant loss-notification copy dies with p = 0.3.
        notification_loss: LossProcess::Bernoulli { p: 0.3 },
        // The switch CPU is three-and-a-half decimal orders slower for
        // 5 ms mid-run (event cores stolen by other control-plane work).
        cpu_overload: vec![OverloadWindow {
            window: Window { start_ns: 3 * MILLIS, end_ns: 8 * MILLIS },
            factor: 5_000.0,
        }],
        // Every CEBP report and loss notification takes byte damage at
        // 1e-3/byte; CRC trailers catch it and the transport retries.
        cebp_corruption: CorruptionSpec::bit_flips(1e-3),
        notification_corruption: CorruptionSpec::bit_flips(1e-3),
        ..FaultPlan::default()
    };
    let cfg = NetSeerConfig {
        faults,
        cpu_max_backlog_ns: 500 * MICROS,
        // Worst case for the reporting path: no in-pipeline aggregation, so
        // every dropped packet becomes its own record (an event storm).
        enable_dedup: false,
        ..NetSeerConfig::default()
    };

    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions { cfg, on_nics: true });

    // Cross-pod traffic over lossy uplinks: a steady stream of real events.
    for s in 0..8 {
        let key = FlowKey::tcp(ft.host_ips[s], 2000 + s as u16, ft.host_ips[7 - s], 80);
        let h = ft.hosts[s];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 4_000_000,
            pkt_payload: 1000,
            rate_gbps: 5.0,
            start_ns: 0,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
    }
    for pod in 0..2 {
        let tor = ft.edges[pod][0];
        for port in 0..2 {
            sim.link_direction_mut(tor, port).unwrap().faults.drop_prob = 0.03;
        }
    }
    sim.run_until(30 * MILLIS);

    // Audit: sum the per-device ledgers; each must balance on its own.
    let mut total = DeliveryLedger::default();
    let mut retransmissions = 0u64;
    let mut notif_dropped = 0u64;
    let mut crc_failures = 0u64;
    let mut notif_rejected = 0u64;
    let ids: Vec<u32> = sim.switch_ids().into_iter().chain(sim.host_ids()).collect();
    for id in ids {
        let m = monitor_of(&sim, id);
        let l = m.ledger();
        l.assert_balanced();
        total.generated += l.generated;
        total.delivered += l.delivered;
        total.shed_stack += l.shed_stack;
        total.shed_pcie += l.shed_pcie;
        total.shed_cpu_overload += l.shed_cpu_overload;
        total.shed_false_positive += l.shed_false_positive;
        total.shed_transport += l.shed_transport;
        total.pending += l.pending;
        total.buffered += l.buffered;
        total.corrupted += l.corrupted;
        retransmissions += m.transport.retransmissions;
        notif_dropped += m.notification_copies_dropped;
        crc_failures += m.cebp_crc_failures;
        notif_rejected += m.notifications_crc_rejected;
    }
    println!("seed {seed:#x}:");
    println!("  events generated        {}", total.generated);
    println!("  delivered to backend    {}", total.delivered);
    println!("  shed (stack overflow)   {}", total.shed_stack);
    println!("  shed (PCIe)             {}", total.shed_pcie);
    println!("  shed (CPU overload)     {}", total.shed_cpu_overload);
    println!("  shed (false positive)   {}", total.shed_false_positive);
    println!("  shed (transport)        {}", total.shed_transport);
    println!("  pending in pipeline     {}", total.pending);
    println!("  buffered in spill       {}", total.buffered);
    println!("  corrupted past retries  {}", total.corrupted);
    println!("  transport retransmits   {retransmissions}");
    println!("  notification copies eaten {notif_dropped}");
    println!("  CEBP CRC failures (implicit NACKs) {crc_failures}");
    println!("  notification copies CRC-rejected   {notif_rejected}");
    println!(
        "  => identity: {} generated == {} delivered + {} shed + {} pending \
         + {} buffered + {} corrupted (silently lost: {})",
        total.generated,
        total.delivered,
        total.shed_total(),
        total.pending,
        total.buffered,
        total.corrupted,
        total.missing()
    );
    total
}

fn main() {
    let a = run(0xC0FFEE);
    assert_eq!(a.missing(), 0, "zero silent loss");
    // Reproducibility: the same seed gives the identical ledger.
    let b = run(0xC0FFEE);
    assert_eq!(a, b, "same seed, same chaos, same ledger");
    println!("\nsame seed reproduced the identical ledger — drill passed.");
}
