//! Wire-ingestion demo: untrusted NetFlow/IPFIX datagrams — honest,
//! hostile, and corrupted — flow through the collector's normal admission
//! path, end to end.
//!
//! What this exercises:
//!
//! * a seeded hostile exporter speaks NetFlow v5, v9, and IPFIX while
//!   mixing in template floods, count/length lies, data-before-template,
//!   reserved sets, raw garbage, and upstream datagram drops, with byte
//!   corruption layered on every frame;
//! * the panic-free parsers decode what they can and book what they
//!   cannot: undecodable records land in the ledger's `malformed` term,
//!   datagram-fatal rejects are quarantined verbatim with a per-reason
//!   count, and the bounded template cache shrugs off the floods;
//! * decoded records become 24-byte FET events and ride the memory →
//!   spill → shed admission ladder like any switch delivery, so the
//!   extended ledger identity
//!   `generated == delivered + shed + pending + buffered + lost_to_crash
//!   + corrupted + malformed` holds exactly at any instant;
//! * NetFlow sequence gaps surface upstream loss the exporter never got
//!   to send — bounded by what was actually dropped.
//!
//! Run with: `cargo run --release --example wire_ingest`

use netseer_repro::fet_netsim::{HostileExporter, HostileExporterConfig};
use netseer_repro::fet_wire::ALL_REASONS;
use netseer_repro::netseer::{Collector, CollectorConfig, CorruptionSpec, WireConfig, WireIngest};

const TICKS: u64 = 4_000;
const TICK_NS: u64 = 10_000;

fn main() {
    println!("=== NetSeer wire ingestion: hostile exporters on the collector socket ===\n");

    // A hostile exporter: 8 honest observation domains, a 40% chance per
    // tick of an attack datagram instead, 5% upstream datagram loss, and
    // byte corruption on every emitted frame.
    let mut exporter = HostileExporter::new(HostileExporterConfig {
        seed: 0x31BE,
        hostility: 0.4,
        corruption: CorruptionSpec {
            flip_per_byte: 1e-3,
            truncate_prob: 0.05,
            duplicate_prob: 0.02,
        },
        ..HostileExporterConfig::default()
    });

    // A collector under pressure: tight memory watermark, small spill
    // budget, and a subscriber that drains only every 1024 ticks — so the
    // storm genuinely exercises memory, spill, and shed between drains.
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 256,
        max_spill_bytes: 64 * 1024,
        spill_segment_bytes: 8 * 1024,
        ..CollectorConfig::default()
    });
    let sub = collector.subscribe();
    let mut wire = WireIngest::new(WireConfig::default());

    let mut sent = 0u64;
    let mut drained = 0usize;
    let mut mid_storm: Option<netseer_repro::netseer::DeliveryLedger> = None;
    for tick in 0..TICKS {
        let now = tick * TICK_NS;
        if let Some(datagram) = exporter.emit() {
            sent += 1;
            wire.ingest_datagram(&mut collector, &datagram, now);
        }
        if tick % 1024 == 1023 {
            // Snapshot the identity at peak pressure, *before* draining:
            // events are parked on disk (`buffered`) and the exhausted
            // spill budget has refused some (`shed`) — still balanced.
            if mid_storm.is_none() {
                mid_storm = Some(wire.ledger(&collector));
            }
            drained += collector.drain_ordered(sub).len();
            while collector.pump_spill() > 0 {
                drained += collector.drain_ordered(sub).len();
            }
            wire.sweep_templates(now);
        }
    }
    drained += collector.drain_ordered(sub).len();
    while collector.pump_spill() > 0 {
        drained += collector.drain_ordered(sub).len();
    }

    println!("--- storm ---");
    println!("  datagrams sent:        {sent}");
    println!("  attack datagrams:      {}", exporter.attacks);
    println!("  dropped upstream:      {}", exporter.dropped_upstream);
    println!("  corrupted in flight:   {}", exporter.corrupted);

    let stats = wire.session().stats();
    println!("\n--- parser session ---");
    println!("  accepted:              {}", stats.accepted);
    println!("  rejected:              {}", stats.rejected);
    println!("  records decoded:       {}", stats.decoded);
    println!("  records malformed:     {}", stats.malformed);

    println!("\n--- quarantine (fatal rejects, by reason) ---");
    for reason in ALL_REASONS {
        let n = wire.rejects_by_reason()[reason.index()];
        if n > 0 {
            println!("  {:<18} {n}", reason.as_str());
        }
    }
    println!("  frames retained:       {}", collector.quarantine().len());
    assert_eq!(collector.poison_seen, wire.rejected_datagrams());

    let cache = wire.session().cache();
    println!("\n--- template cache (flood-proof) ---");
    println!(
        "  domains: {} / {}   busiest domain: {} / {} templates",
        cache.domain_count(),
        cache.config().max_domains,
        cache.max_domain_len(),
        cache.config().max_templates
    );
    println!(
        "  installed: {}  refreshed: {}  evicted(LRU): {}  rejected: {}",
        cache.stats().installed,
        cache.stats().refreshed,
        cache.stats().evicted_lru,
        cache.stats().rejected
    );
    assert!(cache.max_domain_len() <= cache.config().max_templates);

    println!("\n--- upstream loss (sequence gaps) ---");
    let losses = wire.upstream_losses();
    let detected: u64 = losses.iter().map(|l| l.lost).sum();
    let gaps: u64 = losses.iter().map(|l| l.gaps).sum();
    println!("  streams tracked:       {}", losses.len());
    println!("  gap events:            {gaps}");
    println!("  detected loss estimate: {detected} records");
    println!("  ground truth:           {} datagrams dropped upstream", exporter.dropped_upstream);
    println!(
        "  (byte corruption also mangles sequence numbers, so under a storm the\n   \
         estimate is a noisy signal; on a clean wire it is bounded by the truth)"
    );

    // Mid-storm, with the subscriber stalled: events parked on disk and a
    // spill budget running dry — the identity still balances exactly.
    let peak = mid_storm.expect("storm long enough to hit the first drain");
    peak.assert_balanced();
    println!("\n--- ledger identity at peak pressure (subscriber stalled) ---");
    println!(
        "  {} generated == {} delivered + {} shed + {} buffered + {} malformed  ✓",
        peak.generated, peak.delivered, peak.shed_cpu_overload, peak.buffered, peak.malformed
    );

    let ledger = wire.ledger(&collector);
    ledger.assert_balanced();
    println!("\n--- ledger identity after the final drain ---");
    println!("  generated            = {}", ledger.generated);
    println!("  delivered            = {}", ledger.delivered);
    println!("  shed (spill full)    = {}", ledger.shed_cpu_overload);
    println!("  buffered (on disk)   = {}", ledger.buffered);
    println!("  malformed            = {}", ledger.malformed);
    assert_eq!(
        ledger.generated,
        ledger.delivered + ledger.shed_cpu_overload + ledger.buffered + ledger.malformed,
        "identity must hold exactly"
    );
    println!(
        "  identity: {} == {} + {} + {} + {}  ✓",
        ledger.generated,
        ledger.delivered,
        ledger.shed_cpu_overload,
        ledger.buffered,
        ledger.malformed
    );
    println!("\n  events drained by the subscriber: {drained}");
    println!("  events in the store:              {}", collector.len());

    println!("\n=== wire storm absorbed: bounded, accounted, panic-free ===");
}
