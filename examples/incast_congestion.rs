//! Incast congestion (the paper's case #4, "unexpected volume"): many
//! senders converge on one server; NetSeer's MMU-drop and congestion
//! events name the hog flows an operator should reschedule — visibility
//! that interface counters cannot give.
//!
//! Run with: `cargo run --release --example incast_congestion`

use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::MILLIS;
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::EventType;
use netseer_repro::fet_workloads::generator::{generate_incast, generate_traffic, TrafficParams};
use netseer_repro::netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer_repro::netseer::Query;
use std::collections::HashMap;

fn main() {
    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 128 * 1024; // small buffers
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());

    // Normal background traffic...
    let tp = TrafficParams {
        utilization: 0.3,
        duration_ns: 30 * MILLIS,
        max_flows: 1_000,
        ..Default::default()
    };
    generate_traffic(&mut sim, &ft, &netseer_repro::fet_workloads::distributions::WEB, &tp);
    // ...plus somebody's 6-way incast into host 0 at t = 5 ms.
    let hogs = generate_incast(&mut sim, &ft, 0, &[2, 3, 4, 5, 6, 7], 3_000_000, 5 * MILLIS);

    sim.run_until(50 * MILLIS);

    let store = collect_events(&mut sim);
    let tor = ft.edges[0][0]; // host 0's ToR
    let drops = store.query(&Query::any().device(tor).ty(EventType::MmuDrop));
    println!(
        "MMU-drop events at '{}': {} (ground truth drops: {})",
        sim.switch(tor).name,
        drops.len(),
        sim.gt.count(EventType::MmuDrop),
    );

    // Who contributed most? Sort flows by their aggregated drop counters.
    let mut per_flow: HashMap<_, u32> = HashMap::new();
    for e in &drops {
        let c = per_flow.entry(e.record.flow).or_insert(0);
        *c = (*c).max(u32::from(e.record.counter));
    }
    let mut ranked: Vec<_> = per_flow.into_iter().collect();
    ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\ntop flows by dropped packets (the candidates to reschedule):");
    for (flow, count) in ranked.iter().take(8) {
        let is_hog = hogs.contains(flow);
        println!("  {flow}  dropped>={count:<6} {}", if is_hog { "<- hog" } else { "" });
    }
    // The incast hogs must dominate the top of the list.
    let top: Vec<_> = ranked.iter().take(hogs.len()).map(|(f, _)| *f).collect();
    let found = hogs.iter().filter(|h| top.contains(h)).count();
    println!("\n=> {found}/{} hog flows identified from drop counters alone", hogs.len());

    let congestion = store.query(&Query::any().device(tor).ty(EventType::Congestion));
    println!("congestion events at the same ToR: {}", congestion.len());
}
