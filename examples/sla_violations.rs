//! SLA-violation triage (the paper's block-storage study, §5.1): slow
//! RPCs arrive in a ticket queue; for each one, decide — network or not?
//! NetSeer either produces the exact events that hit the RPC's flow, or
//! its silence positively exonerates the fabric so the storage team keeps
//! digging on their side (the paper's case #5 ending: an SSD firmware
//! bug, not the network).
//!
//! Run with: `cargo run --release --example sla_violations`

use netseer_repro::fet_netsim::host::FlowSpec;
use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::MILLIS;
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::FlowKey;
use netseer_repro::fet_workloads::generator::generate_incast;
use netseer_repro::netseer::deploy::{collect_events, deploy, DeployOptions};
use netseer_repro::netseer::Query;

fn main() {
    let mut params = FatTreeParams::default();
    params.switch_config.mmu.total_bytes = 128 * 1024;
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &params);
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());

    // Storage RPCs from pod-0 clients to pod-1 storage servers. Every
    // third RPC is artificially stalled host-side ("SSD firmware bug").
    let mut rpcs: Vec<(FlowKey, bool)> = Vec::new();
    for i in 0..60u32 {
        let app_slow = i % 3 == 0;
        let key = FlowKey::tcp(
            ft.host_ips[(i % 4) as usize],
            20_000 + i as u16,
            ft.host_ips[4 + (i % 4) as usize],
            3260,
        );
        let h = ft.hosts[(i % 4) as usize];
        let idx = sim.host_mut(h).add_flow(FlowSpec {
            key,
            total_bytes: 64_000,
            pkt_payload: 1000,
            rate_gbps: if app_slow { 0.05 } else { 5.0 },
            start_ns: u64::from(i) * 500_000,
            dscp: 0,
        });
        sim.schedule_flow(h, idx);
        rpcs.push((key, app_slow));
    }
    // A genuine network problem mid-run: incast congestion into server 4.
    generate_incast(&mut sim, &ft, 4, &[1, 2, 3, 6, 7], 2_000_000, 10 * MILLIS);

    sim.run_until(80 * MILLIS);
    let store = collect_events(&mut sim);

    // Triage every "slow RPC" ticket. Path-change events are routine (every
    // new flow produces them); what blames the network is drops,
    // congestion, or pause hitting the RPC's own flow.
    let anomaly_events = |key: &FlowKey| {
        use netseer_repro::fet_packet::EventType::*;
        [PipelineDrop, MmuDrop, InterSwitchDrop, Congestion, Pause]
            .into_iter()
            .flat_map(|ty| store.query(&Query::any().flow(*key).ty(ty)))
            .collect::<Vec<_>>()
    };
    let mut network_blamed = 0;
    let mut exonerated = 0;
    println!("ticket triage:");
    for (key, app_slow) in &rpcs {
        let events = anomaly_events(key);
        let verdict = if events.is_empty() { "network exonerated" } else { "network events" };
        if events.is_empty() {
            exonerated += 1;
        } else {
            network_blamed += 1;
        }
        if *app_slow && !events.is_empty() {
            // Rare but legitimate: an app-slow RPC ALSO hit congestion —
            // the "Both" category of Figure 8(b).
            println!("  {key}: {verdict} AND app-slow (the 'Both' bucket)");
        }
    }
    println!("\n  RPCs with network events:   {network_blamed}");
    println!("  RPCs with none (exonerated): {exonerated}");

    // Exoneration must be trustworthy: no app-slow-only RPC should have
    // been blamed on the network falsely, and the incast victims should
    // all have events.
    let app_only: Vec<_> = rpcs.iter().filter(|(_, s)| *s).collect();
    println!(
        "  app-slow RPCs: {} — of which {} (correctly) show no network events",
        app_only.len(),
        app_only.iter().filter(|(k, _)| anomaly_events(k).is_empty()).count()
    );
    println!("\n=> with NetSeer the network answers in seconds; without it, case #5");
    println!("   took 284 minutes of back-and-forth before the SSD bug surfaced.");
}
