//! Export endpoint demo: run the mixed sim/real replay (a faulted fleet
//! plus captured hostile NetFlow bytes), publish the scrape snapshot,
//! serve it on `/metrics` and `/otel`, then scrape *ourselves* over a
//! plain `std::net::TcpStream` and re-derive the conservation identity
//! from the scraped text — the exporter as its own oracle.
//!
//! Run with: `cargo run --release --example export_endpoint`

use netseer_repro::fet_export::{
    http_get, parse_exposition, run_mixed_replay, validate_json, ExportServer, MixedReplayConfig,
    SnapshotHandle,
};

fn main() {
    println!("=== fet-export: scrape endpoint over a mixed sim/real replay ===\n");

    let report = run_mixed_replay(&MixedReplayConfig::default());
    println!("--- replay ---");
    println!("  fleet events generated:  {}", report.fleet.generated);
    println!("  wire records generated:  {}", report.wire.generated);
    println!("  analytics processed:     {}", report.processed);

    let handle = SnapshotHandle::new();
    handle.publish(report.snapshot.clone());
    let server = ExportServer::bind(handle).expect("bind 127.0.0.1:0");
    println!("\nserving on http://{}/metrics and /otel", server.addr());

    // Curl ourselves over a raw TcpStream.
    let body = http_get(server.addr(), "/metrics").expect("self-scrape");
    let doc = parse_exposition(&body).expect("served body must parse as Prometheus text");
    let otel = http_get(server.addr(), "/otel").expect("self-scrape otel");
    assert!(validate_json(&otel), "served OTel body must be valid JSON");
    server.stop();

    let get = |name: &str| {
        doc.value(name, &[("scope", "merged")])
            .unwrap_or_else(|| panic!("scraped output missing {name}"))
    };
    let generated = get("fet_events_generated_total");
    let delivered = get("fet_events_delivered_total");
    let shed: f64 = doc
        .samples
        .iter()
        .filter(|s| {
            s.name == "fet_events_shed_total"
                && s.labels.iter().any(|(k, v)| k == "scope" && v == "merged")
        })
        .map(|s| s.value)
        .sum();
    let pending = get("fet_events_pending");
    let buffered = get("fet_events_buffered");
    let lost = get("fet_events_lost_to_crash_total");
    let corrupted = get("fet_events_corrupted_total");
    let malformed = get("fet_events_malformed_total");

    println!("\n--- conservation identity, read back off the wire ---");
    println!("  generated      = {generated}");
    println!("  delivered      = {delivered}");
    println!("  shed           = {shed}");
    println!("  pending        = {pending}");
    println!("  buffered       = {buffered}");
    println!("  lost_to_crash  = {lost}");
    println!("  corrupted      = {corrupted}");
    println!("  malformed      = {malformed}");
    assert_eq!(
        generated,
        delivered + shed + pending + buffered + lost + corrupted + malformed,
        "the scraped identity must balance exactly"
    );
    println!(
        "  identity: {generated} == {delivered} + {shed} + {pending} + {buffered} \
         + {lost} + {corrupted} + {malformed}  ✓"
    );
    println!("\n  scraped {} samples across {} families", doc.samples.len(), doc.types.len());
    println!("\n=== scrape served, parsed, and balanced — endpoint demo passed ===");
}
