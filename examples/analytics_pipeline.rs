//! Analytics pipeline demo: a seeded fleet with one lossy link, analyzed
//! end to end by the streaming engine.
//!
//! What this exercises:
//!
//! * the collector's `subscribe()`/`drain_ordered()` feed: the engine
//!   consumes the exactly-once delivery stream, never the store internals;
//! * cross-device localization: the correlator joins upstream
//!   inter-switch-drop reports with downstream gap scrapes and names the
//!   exact link that was given elevated loss — corroborated by both ends;
//! * Space-Saving top-k: the heaviest victim flows, with per-entry error
//!   bounds (`count - error <= true <= count`);
//! * SLA breach windows per device, and the extended analytics ledger
//!   identity `ingested == aggregated + sketch_absorbed + shed_analytics`.
//!
//! Run with: `cargo run --release --example analytics_pipeline`

use netseer_repro::fet_analytics::{
    harvest_gap_reports, link_map_from_sim, AnalyticsConfig, AnalyticsEngine, LinkId, SlaPolicy,
};
use netseer_repro::fet_netsim::host::FlowSpec;
use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::MILLIS;
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::FlowKey;
use netseer_repro::netseer::deploy::{delivered_history, deploy, DeployOptions};
use netseer_repro::netseer::{Collector, CollectorConfig, FaultPlan, NetSeerConfig};

fn main() {
    let seed = 0xA11A_10CA;

    // A seeded fat-tree fleet with NetSeer everywhere.
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    let faults = FaultPlan { seed, ..FaultPlan::default() };
    deploy(
        &mut sim,
        &DeployOptions { cfg: NetSeerConfig { faults, ..Default::default() }, on_nics: true },
    );

    // Cross-pod traffic: three flows per source host.
    for s in 0..8usize {
        for rep in 0..3u16 {
            let key =
                FlowKey::tcp(ft.host_ips[s], 2000 + (s as u16) * 8 + rep, ft.host_ips[7 - s], 80);
            let h = ft.hosts[s];
            let idx = sim.host_mut(h).add_flow(FlowSpec {
                key,
                total_bytes: 4_000_000,
                pkt_payload: 1000,
                rate_gbps: 5.0,
                start_ns: 0,
                dscp: 0,
            });
            sim.schedule_flow(h, idx);
        }
    }

    // The fault: ToR 0's uplink port 0 silently drops 5% of its packets.
    let tor = ft.edges[0][0];
    sim.link_direction_mut(tor, 0).unwrap().faults.drop_prob = 0.05;
    let (down, down_port) = sim.peer_of(tor, 0).expect("uplink is wired");
    let guilty = LinkId { up: tor, up_port: 0, down, down_port };
    println!("injected 5% loss on link {guilty}");

    sim.run_until(30 * MILLIS);

    // The production feed: collector ingests deliveries, the engine
    // subscribes and polls; gap scrapes arrive on the side channel.
    // Zero-loss SLA: any dropped packet in a 1 ms window is a breach.
    let cfg = AnalyticsConfig {
        sla: SlaPolicy {
            window_ns: MILLIS,
            max_drops_per_window: 0,
            max_congestion_latency_us: 400,
        },
        ..AnalyticsConfig::default()
    };
    // A deliberately tight memory watermark: the burst of history spills
    // to bounded disk instead of shedding, and polling drains it back.
    let mut collector = Collector::with_config(CollectorConfig {
        memory_watermark: 32,
        ..CollectorConfig::default()
    });
    let mut engine = AnalyticsEngine::new(cfg, link_map_from_sim(&sim));
    engine.attach(&mut collector);
    let deliveries = delivered_history(&sim);
    collector.ingest(&deliveries);
    let buffered_at_peak = collector.buffered();
    let processed = engine.poll(&mut collector);
    engine.ingest_gap_reports(harvest_gap_reports(&sim));
    println!(
        "engine processed {processed} delivered events across {} shards",
        engine.shard_count()
    );
    println!(
        "collector spill: {} events spilled past the watermark, {} buffered at \
         peak, {} applied on drain, {} buffered after ({} segments, {} fsyncs)",
        collector.spilled,
        buffered_at_peak,
        collector.spill_applied,
        collector.buffered(),
        collector.spill().rotations,
        collector.spill().fsyncs
    );
    assert!(collector.spilled > 0, "the tight watermark must engage the spill");
    assert_eq!(collector.buffered(), 0, "polling must drain the spill fully");
    assert_eq!(collector.overflow_refused, 0, "bounded disk absorbs the burst: no shed");

    // Localization: which link is eating packets?
    println!("\nlink verdicts (worst first):");
    for v in engine.localize().iter().take(4) {
        println!(
            "  {} — upstream reports {:>3} (weight {:>4}), downstream gaps {:>3}{}",
            v.link,
            v.upstream_reports,
            v.upstream_weight,
            v.downstream_gaps,
            if v.corroborated { "  [corroborated]" } else { "" }
        );
    }
    let culprit = engine.culprit().expect("a corroborated culprit must exist");
    assert_eq!(culprit.link, guilty, "the engine must localize the injected fault");
    println!("culprit: {} — matches the injected fault", culprit.link);

    // Top-k victim flows with error bounds.
    println!("\ntop victim flows (loss/congestion weight, Space-Saving k=32 per shard):");
    for e in engine.top_flows(8) {
        println!(
            "  {:>15}:{:<5} -> {:>15}:{:<5}  count {:>4} (true weight >= {})",
            e.flow.src,
            e.flow.sport,
            e.flow.dst,
            e.flow.dport,
            e.count,
            e.guaranteed()
        );
    }

    // SLA breach windows.
    let breaches = engine.finish_breaches();
    println!("\nSLA breach windows ({} total, showing up to 5):", breaches.len());
    for b in breaches.iter().take(5) {
        println!(
            "  device {:>2}: [{:>8} ns, {:>8} ns)  drops {:>4}, peak latency {:>3} us",
            b.device, b.from_ns, b.to_ns, b.drops, b.peak_latency_us
        );
    }
    assert!(!breaches.is_empty(), "5% loss must breach the zero-loss SLA");

    // The extended ledger identity, end to end — every spilled event was
    // applied exactly once, so ingested covers the full history and the
    // fleet delivery identity's `buffered` term has drained to zero.
    let ledger = engine.ledger();
    ledger.assert_balanced();
    assert_eq!(ledger.ingested, deliveries.len() as u64);
    println!(
        "\nanalytics ledger: ingested {} == aggregated {} + sketch_absorbed {} + shed {}",
        ledger.ingested, ledger.aggregated, ledger.sketch_absorbed, ledger.shed_analytics
    );
    println!(
        "delivery identity: {} delivered == {} stored + {} buffered (spill drained)",
        deliveries.len(),
        collector.len(),
        collector.buffered()
    );
    println!("pipeline demo passed.");
}
