//! Silent drop hunt: a decaying transmitter randomly corrupts frames on
//! one fabric link. The upstream switch sees nothing wrong; the
//! downstream MAC silently discards the corrupted frames. This is the
//! failure class that takes operators the longest to locate (paper Fig. 3:
//! ~161 minutes on average). NetSeer's inter-switch detection pinpoints
//! the link and recovers every victim flow's 5-tuple.
//!
//! Run with: `cargo run --release --example silent_drop_hunt`

use netseer_repro::fet_netsim::routing::install_ecmp_routes;
use netseer_repro::fet_netsim::time::{fmt_ns, MILLIS};
use netseer_repro::fet_netsim::topology::{build_fat_tree, FatTreeParams};
use netseer_repro::fet_netsim::Simulator;
use netseer_repro::fet_packet::EventType;
use netseer_repro::fet_workloads::generator::{generate_traffic, TrafficParams};
use netseer_repro::netseer::deploy::{collect_events, deploy, monitor_of, DeployOptions};
use netseer_repro::netseer::Query;
use std::collections::BTreeSet;

fn main() {
    let mut sim = Simulator::new();
    let ft = build_fat_tree(&mut sim, &FatTreeParams::default());
    install_ecmp_routes(&mut sim);
    deploy(&mut sim, &DeployOptions::default());

    // Steady production-like traffic.
    let tp = TrafficParams {
        utilization: 0.5,
        duration_ns: 40 * MILLIS,
        max_flows: 2_000,
        ..Default::default()
    };
    generate_traffic(&mut sim, &ft, &netseer_repro::fet_workloads::distributions::DCTCP, &tp);

    // The bad optic: agg0_1's link toward core (port 0), 0.5% corruption,
    // starting at t = 10 ms.
    let agg = ft.aggs[0][1];
    sim.schedule_control(10 * MILLIS, move |s| {
        s.link_direction_mut(agg, 0).unwrap().faults.corrupt_prob = 0.005;
    });

    sim.run_until(60 * MILLIS);

    // Ground truth vs what NetSeer reported.
    let gt_victims = sim.gt.flow_events(EventType::InterSwitchDrop);
    let store = collect_events(&mut sim);
    let reported = store.flow_events(EventType::InterSwitchDrop);
    println!(
        "silent corruption victims: {} flows (ground truth), {} reported by NetSeer",
        gt_victims.len(),
        reported.len()
    );
    let missed: BTreeSet<_> = gt_victims.difference(&reported).collect();
    println!("missed: {}", missed.len());

    // Localization: every inter-switch drop event names the upstream
    // device — group by device to find the bad link's end.
    let all = store.query(&Query::any().ty(EventType::InterSwitchDrop));
    let mut per_device: Vec<(u32, usize)> = Vec::new();
    for e in &all {
        match per_device.iter_mut().find(|(d, _)| *d == e.device) {
            Some((_, n)) => *n += 1,
            None => per_device.push((e.device, 1)),
        }
    }
    per_device.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\ninter-switch drop reports per upstream device:");
    for (dev, n) in &per_device {
        println!("  {:<8} {n} events", sim.switch(*dev).name);
    }
    assert_eq!(per_device[0].0, agg, "the faulty link's upstream must lead");
    println!(
        "\n=> the fault is on a link leaving '{}' — first report at {} \
         after onset (paper: hours with counters alone).",
        sim.switch(agg).name,
        fmt_ns(all.iter().map(|e| e.time_ns).min().unwrap_or(0).saturating_sub(10 * MILLIS)),
    );

    // The ring buffers never reported a wrong packet: every reported
    // victim is a true victim.
    let false_positives: BTreeSet<_> = reported.difference(&gt_victims).collect();
    println!(
        "false positives: {} (ring lookups: {:?} hits/misses on the bad port)",
        false_positives.len(),
        monitor_of(&sim, agg).tagger_stats(0).map(|(_, h, m)| (h, m)),
    );
    assert!(false_positives.is_empty());
}
