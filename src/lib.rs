//! Umbrella crate for the NetSeer reproduction workspace.
//!
//! This crate only re-exports the workspace members so that the top-level
//! `examples/` and `tests/` can use every subsystem through one dependency.
//! The real functionality lives in the member crates:
//!
//! * [`fet_packet`] — typed packet views and NetSeer wire formats
//! * [`fet_wire`] — panic-free NetFlow v5/v9/IPFIX ingestion
//! * [`fet_pdp`] — programmable-data-plane pipeline emulator
//! * [`fet_netsim`] — discrete-event network simulator
//! * [`netseer`] — the flow-event-telemetry system itself
//! * [`fet_analytics`] — streaming analytics and root-cause localization
//! * [`fet_export`] — Prometheus/OTel-shaped telemetry egress
//! * [`fet_baselines`] — SNMP / sampling / Pingmesh / EverFlow / NetSight
//! * [`fet_workloads`] — traffic distributions and fault scenarios

pub use fet_analytics;
pub use fet_baselines;
pub use fet_export;
pub use fet_netsim;
pub use fet_packet;
pub use fet_pdp;
pub use fet_wire;
pub use fet_workloads;
pub use netseer;
